"""Copy-on-write state engine shared by every app stack.

The simulator's states are JSON-ish trees (dicts, lists, sets, tuples
and atoms).  Before this module existed, every transactional read,
storage round trip and checkpoint ``copy.deepcopy``-ed whole state
trees; because state grows with the run, the simulator was quadratic
in run length.  The engine replaces those O(state) copies with O(1)
views and O(dirty) installs:

``CowState`` / ``CowList``
    Lazy copy-on-write views over a frozen *base* container.  Reading
    hands back nested values wrapped in further views; the base is
    never mutated through a view, so creating one is O(1) regardless
    of state size.  A mutation is recorded in the view's private
    overlay (copying only the touched node), which is what makes a
    read's "private copy" semantics hold without copying anything up
    front.

``materialize(value)``
    Collapses a view (or a plain tree containing views) into plain
    containers.  Untouched sub-trees are returned *by reference* to
    the engine-owned base — structural sharing — while every plain
    container the caller could still reach is rebuilt fresh, so the
    result is isolated from later mutations of the source.  Cost is
    O(touched part), not O(state).

``clone(value)``
    A fully detached deep clone specialised for plain-data trees.  It
    does the same job ``copy.deepcopy`` did in the checkpoint path at
    a fraction of the constant cost (no memo dict, no type dispatch
    tables), and is only used where true physical isolation is
    required (checkpoint snapshots of in-place-mutated worker state).

The engine's contract ("frozen base") for state authors:

* State handed out by the engine (transactional reads, storage reads)
  is a ``CowState``.  Mutate it freely — through the view — and hand
  it back (``txn_write``, ``write_state``); mutations never leak into
  committed/persisted state until installed.
* Once a state tree has been installed (committed, persisted), it is
  frozen: the engine shares installed sub-trees structurally, so code
  must never mutate a container it obtained from an *installed* plain
  state in place.  Views enforce this mechanically; raw access to
  e.g. ``participant.committed_state`` is read-only by contract.
* Values must be plain data: dict/list/tuple/set/str/int/float/bool/
  bytes/None.  Unknown object types are treated as atoms and shared.

The operator-facing version of this contract lives in
``docs/architecture.md`` ("The CowState contract").
"""

from __future__ import annotations

import typing
from collections.abc import MutableMapping, MutableSequence

_DELETED = object()
"""Overlay marker: the key exists in the base but was deleted."""

_MISSING = object()
"""Internal sentinel distinguishing "absent" from a stored ``None``."""


def _tuple_aliases_mutable(value: tuple) -> bool:
    """True when a tuple (transitively) contains a mutable container.

    Such a tuple cannot be shared through a view: the caller could
    reach the base's dict/list/set through it and mutate committed
    state in place, so it must be copied like a set.
    """
    for item in value:
        kind = type(item)
        if kind is dict or kind is list or kind is set:
            return True
        if kind is tuple and _tuple_aliases_mutable(item):
            return True
    return False


def _wrap(value):
    """An isolated view (or copy) of a base value, or the atom itself."""
    kind = type(value)
    if kind is dict:
        return CowState(value)
    if kind is list:
        return CowList(value)
    if kind is set:
        # Sets cannot be proxied cheaply; hand out a copy.  Callers
        # treat the copy as part of their private view, so it must be
        # cached (and conservatively counted as a change) upstream.
        return set(value)
    if kind is tuple and _tuple_aliases_mutable(value):
        # A tuple holding mutable containers would alias the base;
        # clone it (and count it as a change, like a set) instead.
        return clone(value)
    return value


class CowState(MutableMapping):
    """A copy-on-write dict view over a frozen base mapping.

    Reads pass through to the base, wrapping nested containers in
    further views so that *any* mutation reachable from this view is
    recorded in an overlay instead of touching the base.  Creating a
    view is O(1); its memory footprint is O(keys actually touched).
    """

    __slots__ = ("_base", "_written", "_wrapped")

    def __init__(self, base: typing.Mapping | None = None) -> None:
        self._base: typing.Mapping = {} if base is None else base
        #: Explicit writes/deletes: key -> value or _DELETED.
        self._written: dict = {}
        #: Cached views of base values (keys not in _written).
        self._wrapped: dict = {}

    # -- reads ----------------------------------------------------------
    def __getitem__(self, key):
        written = self._written
        if written:
            value = written.get(key, _MISSING)
            if value is not _MISSING:
                if value is _DELETED:
                    raise KeyError(key)
                return value
        wrapped = self._wrapped
        if wrapped:
            value = wrapped.get(key, _MISSING)
            if value is not _MISSING:
                return value
        value = self._base[key]
        kind = type(value)
        if kind is dict:
            view = CowState(value)
            wrapped[key] = view
            return view
        if kind is list:
            view = CowList(value)
            wrapped[key] = view
            return view
        if kind is set:
            # A set copy cannot report whether it was mutated, so
            # record it as a (conservative) write.
            view = set(value)
            written[key] = view
            return view
        if kind is tuple and _tuple_aliases_mutable(value):
            # Same treatment for tuples holding mutable containers.
            view = clone(value)
            written[key] = view
            return view
        return value

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def items(self):
        """Iterate (key, value) pairs; nested containers come as views.

        Semantically identical to the inherited ``ItemsView`` but
        without the per-key hash lookups of ``for k in self: self[k]``.
        """
        written = self._written
        wrapped = self._wrapped
        for key, value in self._base.items():
            if key in written:
                value = written[key]
                if value is _DELETED:
                    continue
                yield key, value
            elif key in wrapped:
                yield key, wrapped[key]
            else:
                kind = type(value)
                if kind is dict:
                    value = wrapped[key] = CowState(value)
                elif kind is list:
                    value = wrapped[key] = CowList(value)
                elif kind is set:
                    value = written[key] = set(value)
                elif kind is tuple and _tuple_aliases_mutable(value):
                    value = written[key] = clone(value)
                yield key, value
        base = self._base
        for key, value in list(written.items()):
            if key not in base and value is not _DELETED:
                yield key, value

    def values(self):
        for _, value in self.items():
            yield value

    def keys(self):
        """Key view; C-level when no key was written or deleted.

        ``dict(view)`` / ``{**view}`` fetch ``keys()`` and then index
        each key, so handing back the frozen base's own key view (valid
        while the overlay holds no key changes) skips a Python-level
        generator resumption per key.
        """
        if not self._written:
            return self._base.keys()
        return super().keys()

    def __contains__(self, key) -> bool:
        if key in self._written:
            return self._written[key] is not _DELETED
        return key in self._base

    def __iter__(self):
        written = self._written
        base = self._base
        for key in base:
            if key in written and written[key] is _DELETED:
                continue
            yield key
        for key in written:
            if key not in base and written[key] is not _DELETED:
                yield key

    def __len__(self) -> int:
        count = len(self._base)
        for key, value in self._written.items():
            if value is _DELETED:
                count -= 1
            elif key not in self._base:
                count += 1
        return count

    def copy(self) -> dict:
        """A plain-dict shallow copy of the view (values still views)."""
        return dict(self)

    # -- writes ---------------------------------------------------------
    def __setitem__(self, key, value) -> None:
        self._written[key] = value
        self._wrapped.pop(key, None)

    def __delitem__(self, key) -> None:
        written = self._written
        if key in written:
            if written[key] is _DELETED:
                raise KeyError(key)
            if key in self._base:
                written[key] = _DELETED
            else:
                del written[key]
        elif key in self._base:
            written[key] = _DELETED
        else:
            raise KeyError(key)
        self._wrapped.pop(key, None)

    # -- engine internals ----------------------------------------------
    @property
    def dirty(self) -> bool:
        """True when the view differs (or may differ) from its base."""
        if self._written:
            return True
        for view in self._wrapped.values():
            if view.dirty:
                return True
        return False

    def _materialize(self):
        if not self.dirty:
            return self._base
        written = self._written
        wrapped = self._wrapped
        base = self._base
        out = {}
        for key in base:
            if key in written:
                value = written[key]
                if value is _DELETED:
                    continue
                out[key] = materialize(value)
            elif key in wrapped:
                out[key] = wrapped[key]._materialize()
            else:
                out[key] = base[key]
        for key, value in written.items():
            if key not in base and value is not _DELETED:
                out[key] = materialize(value)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CowState({dict(self)!r})"


class CowList(MutableSequence):
    """A copy-on-write list view over a frozen base list.

    The base is copied ("thawed") into a private element list the
    first time a mutable element is read or any mutation happens;
    until then reads index straight into the base.
    """

    __slots__ = ("_base", "_items", "_mutated")

    def __init__(self, base: list | None = None) -> None:
        self._base: list = [] if base is None else base
        self._items: list | None = None
        self._mutated = False

    def _thaw(self) -> list:
        if self._items is None:
            items = []
            for value in self._base:
                view = _wrap(value)
                if view is not value and type(value) in (set, tuple):
                    self._mutated = True  # copies can't track mutation
                items.append(view)
            self._items = items
        return self._items

    # -- reads ----------------------------------------------------------
    def __getitem__(self, index):
        if self._items is not None:
            return self._items[index]
        if isinstance(index, slice):
            return list(self._thaw()[index])
        value = self._base[index]
        kind = type(value)
        if (kind is dict or kind is list or kind is set
                or (kind is tuple and _tuple_aliases_mutable(value))):
            return self._thaw()[index]
        return value

    def __len__(self) -> int:
        items = self._items
        return len(items if items is not None else self._base)

    def __iter__(self):
        """Iterate elements; avoids thawing all-atom bases.

        The inherited ``MutableSequence.__iter__`` indexes one element
        at a time through :meth:`__getitem__`; this walks the base (or
        the thawed element list) directly.
        """
        if self._items is None:
            base = self._base
            for value in base:
                kind = type(value)
                if (kind is dict or kind is list or kind is set
                        or (kind is tuple
                            and _tuple_aliases_mutable(value))):
                    break
            else:
                yield from base
                return
            self._thaw()
        yield from self._items

    def __eq__(self, other) -> bool:
        if isinstance(other, CowList):
            other = list(other)
        if not isinstance(other, list):
            return NotImplemented
        return list(self) == other

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None

    def copy(self) -> list:
        """A plain-list shallow copy of the view (values still views)."""
        return list(self)

    # -- writes ---------------------------------------------------------
    def __setitem__(self, index, value) -> None:
        self._thaw()[index] = value
        self._mutated = True

    def __delitem__(self, index) -> None:
        del self._thaw()[index]
        self._mutated = True

    def insert(self, index, value) -> None:
        self._thaw().insert(index, value)
        self._mutated = True

    def sort(self, *, key=None, reverse: bool = False) -> None:
        self._thaw().sort(key=key, reverse=reverse)
        self._mutated = True

    # -- engine internals ----------------------------------------------
    @property
    def dirty(self) -> bool:
        if self._mutated:
            return True
        items = self._items
        if items is None:
            return False
        for value in items:
            if type(value) in (CowState, CowList) and value.dirty:
                return True
        return False

    def _materialize(self):
        if not self.dirty:
            return self._base
        return [materialize(value) for value in self._items]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CowList({list(self)!r})"


def peek(mapping, key, default=None):
    """Raw read of ``mapping[key]`` without creating a view.

    READ-ONLY: the result may be an engine-owned frozen container;
    mutating it corrupts committed state.  Use only in pure read paths
    (scans, aggregations) and copy anything handed onwards.
    """
    if type(mapping) is CowState:
        written = mapping._written
        if written:
            value = written.get(key, _MISSING)
            if value is not _MISSING:
                return default if value is _DELETED else value
        value = mapping._wrapped.get(key, _MISSING)
        if value is not _MISSING:
            return value
        return mapping._base.get(key, default)
    return mapping.get(key, default)


def scan_items(mapping):
    """Iterate (key, value) pairs of a mapping without creating views.

    Untouched entries of a :class:`CowState` are yielded straight from
    the frozen base — no wrapper allocation, no caching — which makes
    whole-state read-only scans as cheap as iterating a plain dict.
    Entries touched through the view come from its overlay, so the scan
    still observes the view's own (staged) mutations.

    READ-ONLY: see :func:`peek` — never mutate a yielded value.
    """
    if type(mapping) is not CowState:
        yield from mapping.items()
        return
    written = mapping._written
    wrapped = mapping._wrapped
    base = mapping._base
    if not written and not wrapped:
        yield from base.items()
        return
    for key, value in base.items():
        if key in written:
            value = written[key]
            if value is _DELETED:
                continue
            yield key, value
        elif key in wrapped:
            yield key, wrapped[key]
        else:
            yield key, value
    for key, value in written.items():
        if key not in base and value is not _DELETED:
            yield key, value


def scan_values(mapping):
    """Iterate a mapping's values without creating views (read-only)."""
    if type(mapping) is not CowState:
        yield from mapping.values()
        return
    if not mapping._written and not mapping._wrapped:
        yield from mapping._base.values()
        return
    for _, value in scan_items(mapping):
        yield value


def materialize(value):
    """Collapse ``value`` into plain containers, sharing clean bases.

    Views that were never mutated collapse to their (frozen) base by
    reference; every plain container is rebuilt, so the caller cannot
    reach any mutable part of the result through the source value.
    The output is safe to install as committed/persisted state.
    """
    kind = type(value)
    if kind is CowState or kind is CowList:
        return value._materialize()
    if kind is dict:
        return {key: materialize(item) for key, item in value.items()}
    if kind is list:
        return [materialize(item) for item in value]
    if kind is tuple:
        return tuple(materialize(item) for item in value)
    if kind is set:
        return set(value)
    return value


def clone(value):
    """A fully detached deep clone of a plain-data tree (or view).

    Unlike :func:`materialize` the result shares *nothing* mutable
    with its input — required where the source is mutated in place
    afterwards (dataflow worker state between checkpoints).
    """
    kind = type(value)
    if kind is dict:
        return {key: clone(item) for key, item in value.items()}
    if kind is list:
        return [clone(item) for item in value]
    if kind is CowState or kind is CowList:
        return clone(value._materialize())
    if kind is tuple:
        return tuple(clone(item) for item in value)
    if kind is set:
        return set(value)
    return value
