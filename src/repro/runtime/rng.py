"""Named, reproducible random-number streams.

Every source of randomness in the simulator pulls from a named stream
derived from the master seed.  Deriving streams by name (rather than
sharing one generator) keeps components statistically independent and
means adding a new random consumer does not shift the random sequence
seen by existing components.
"""

from __future__ import annotations

import hashlib
import random


class RngStream(random.Random):
    """A ``random.Random`` tagged with the name it was derived from."""

    def __init__(self, name: str, seed: int) -> None:
        super().__init__(seed)
        self.name = name
        self.derived_seed = seed

    def __repr__(self) -> str:
        return f"<RngStream {self.name!r} seed={self.derived_seed}>"


class SeedSequenceFactory:
    """Derives independent seeds from a master seed and stream names."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, RngStream] = {}

    def derive(self, name: str) -> int:
        """Derive a 64-bit seed for ``name`` from the master seed."""
        digest = hashlib.sha256(
            f"{self.master_seed}/{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> RngStream:
        """Return the (cached) stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = RngStream(name, self.derive(name))
            self._streams[name] = stream
        return stream
