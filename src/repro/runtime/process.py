"""Generator-based simulation processes.

A process wraps a Python generator.  The generator yields
:class:`~repro.runtime.events.Event` objects; whenever a yielded event
fires, the kernel resumes the generator with the event's value (or raises
the event's exception into it).  The process itself is also an event: it
fires with the generator's return value when the generator finishes, so
processes can wait on each other.
"""

from __future__ import annotations

import typing

from repro.runtime.events import Event, PENDING

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.environment import Environment


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> object:
        return self.args[0] if self.args else None


class Process(Event):
    """A running simulation process driving a generator.

    The process is an :class:`Event` that fires when the generator
    terminates — successfully with its return value, or with the
    exception that escaped it.
    """

    __slots__ = ("_generator", "_send", "_throw", "_target", "name")

    def __init__(self, env: "Environment",
                 generator: typing.Generator[Event, object, object],
                 name: str | None = None) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Bound methods cached once: _resume runs for every event the
        # process waits on, so per-resume attribute chains add up.
        self._send = generator.send
        self._throw = generator.throw
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process via an immediately-scheduled init event.
        # Pooled: dispatched exactly once and never retained.
        init = env.acquire_event()
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init)

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point."""
        if not self.is_alive:
            raise RuntimeError(f"{self.name} has terminated; cannot interrupt")
        # Detach from the event currently waited upon, then schedule an
        # immediate resumption that throws the interrupt.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event = self.env.acquire_event()
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=0)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                result = self._send(event._value)
            else:
                # The event failed: raise its exception inside the process.
                event.defuse()
                result = self._throw(
                    typing.cast(BaseException, event.value))
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            env.schedule(self)
            self._target = None
            env._active_process = None
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            env.schedule(self)
            self._target = None
            env._active_process = None
            return
        finally:
            env._active_process = None

        if not isinstance(result, Event):
            error = RuntimeError(
                f"process {self.name!r} yielded {result!r}, "
                f"which is not an Event")
            self._kill(error)
            return
        callbacks = result.callbacks
        if callbacks is None:
            # Already processed: resume immediately (next scheduler step)
            # via a pooled proxy — _target stays the real result event.
            immediate = env.acquire_event()
            immediate._ok = result._ok
            immediate._value = result._value
            if not result._ok:
                result.defuse()
                immediate._defused = True
            immediate.callbacks.append(self._resume)
            env.schedule(immediate)
            self._target = result
        else:
            callbacks.append(self._resume)
            self._target = result

    def _kill(self, exc: BaseException) -> None:
        try:
            self._generator.throw(exc)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
        except BaseException as inner:
            self._ok = False
            self._value = inner
        self.env.schedule(self)
        self._target = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"
