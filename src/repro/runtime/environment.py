"""The simulation environment: virtual clock plus event queue.

:class:`Environment` owns simulated time.  Events are scheduled onto a
binary heap keyed by ``(time, priority, sequence)``; the sequence number
makes the ordering total and therefore the whole simulation
deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import typing

from repro.runtime.events import AllOf, AnyOf, Event, Timeout
from repro.runtime.process import Interrupt, Process
from repro.runtime.rng import SeedSequenceFactory

__all__ = ["Environment", "Interrupt", "SimulationError"]

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(Exception):
    """An unhandled failure surfaced by the simulation kernel."""


class Environment:
    """Discrete-event simulation environment.

    Parameters
    ----------
    seed:
        Master seed for all random streams derived via :meth:`rng`.
        Two environments constructed with the same seed and running the
        same model produce identical traces.
    """

    #: Scheduling priority for ordinary events.
    PRIORITY_NORMAL = 1

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        self._seeds = SeedSequenceFactory(seed)
        self.seed = seed
        #: Events processed so far — the kernel's unit of work, used by
        #: the hot-path benchmark to report events per wall-second.
        self.events_processed = 0

    # ------------------------------------------------------------------
    # time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        self._seq = seq = self._seq + 1
        _heappush(self._queue, (self._now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event in the queue."""
        if not self._queue:
            raise RuntimeError("no scheduled events")
        self._now, _, _, event = _heappop(self._queue)
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if not event._ok and not event._defused:
            exc = typing.cast(BaseException, event._value)
            raise SimulationError(
                f"unhandled failure in {event!r}") from exc

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time) or an :class:`Event` (run until
        it fires, returning its value).
        """
        stop_event: Event | None = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            # Running until an event counts as "handling" its failure:
            # the exception is re-raised below instead of at step().
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(
                    lambda event: event.defuse() if not event.ok else None)
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} lies in the past (now={self._now})")

        queue = self._queue
        step = self.step
        while queue:
            if stop_event is not None and stop_event.callbacks is None:
                break
            if queue[0][0] > stop_time:
                self._now = stop_time
                break
            step()

        if stop_event is not None:
            if not stop_event.triggered:
                return None
            if not stop_event.ok:
                stop_event.defuse()
                raise typing.cast(BaseException, stop_event._value)
            return stop_event.value
        if until is not None and self._now < stop_time and not self._queue:
            self._now = stop_time
        return None

    # ------------------------------------------------------------------
    # factory helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event owned by this environment."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator[Event, object, object],
                name: str | None = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def rng(self, name: str):
        """Return a named, independently-seeded random stream.

        Streams are derived deterministically from the environment seed
        and the stream name, so adding a new consumer of randomness does
        not perturb existing streams.
        """
        return self._seeds.stream(name)
