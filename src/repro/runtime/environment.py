"""The simulation environment: virtual clock plus event queue.

:class:`Environment` owns simulated time.  Events are scheduled onto a
binary heap keyed by ``(time, priority, sequence)``; the sequence number
makes the ordering total and therefore the whole simulation
deterministic for a given seed.

Two hot-path structures sit in front of the heap without changing that
total order (see ``docs/performance.md``):

* a *same-tick bucket* — zero-delay, normal-priority schedules go to a
  FIFO deque instead of the heap, because they can only ever fire at the
  current time; the dispatch loop interleaves bucket and heap strictly
  by ``(time, priority, sequence)``;
* an *event free-list* — short-lived kernel events (message transit,
  process bootstrap) are :class:`~repro.runtime.events.PooledEvent`
  instances recycled after their callbacks run.
"""

from __future__ import annotations

import collections
import heapq
import typing

from repro.runtime.events import (
    PENDING,
    AllOf,
    AnyOf,
    Event,
    PooledEvent,
    Timeout,
)
from repro.runtime.process import Interrupt, Process
from repro.runtime.rng import SeedSequenceFactory

__all__ = ["Environment", "Interrupt", "SimulationError"]

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Upper bound on the event free-list; beyond this, released events are
#: simply dropped for the garbage collector.
_POOL_MAX = 1024


class SimulationError(Exception):
    """An unhandled failure surfaced by the simulation kernel."""


class Environment:
    """Discrete-event simulation environment.

    Parameters
    ----------
    seed:
        Master seed for all random streams derived via :meth:`rng`.
        Two environments constructed with the same seed and running the
        same model produce identical traces.
    """

    #: Scheduling priority for ordinary events.
    PRIORITY_NORMAL = 1

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        #: Same-tick fast path: ``(seq, event)`` pairs for zero-delay,
        #: normal-priority schedules.  Entries can only fire at the
        #: current time, so FIFO order *is* sequence order and no heap
        #: sifting is needed.
        self._bucket: collections.deque[tuple[int, Event]] = (
            collections.deque())
        self._seq = 0
        self._active_process: Process | None = None
        self._seeds = SeedSequenceFactory(seed)
        self.seed = seed
        #: Events processed so far — the kernel's unit of work, used by
        #: the hot-path benchmark to report events per wall-second.
        self.events_processed = 0
        self._pool: list[PooledEvent] = []
        #: Free-list telemetry for the kernel micro-benchmark.
        self.pool_acquires = 0
        self.pool_hits = 0

    # ------------------------------------------------------------------
    # time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        self._seq = seq = self._seq + 1
        if delay == 0.0 and priority == 1:
            self._bucket.append((seq, event))
        else:
            _heappush(self._queue, (self._now + delay, priority, seq, event))

    def acquire_event(self) -> PooledEvent:
        """Check a pending event out of the kernel free-list.

        Pool contract: the caller must schedule the event exactly once
        and must not retain a reference past its dispatch — the kernel
        resets and reuses the object as soon as its callbacks have run.
        For anything waited on across steps use :meth:`event` instead.
        """
        self.pool_acquires += 1
        pool = self._pool
        if pool:
            self.pool_hits += 1
            return pool.pop()
        return PooledEvent(self)

    def call_after(self, delay: float,
                   callback: typing.Callable[[Event], None]) -> None:
        """Run ``callback(event)`` after ``delay`` seconds of sim time.

        Replaces the ``env.timeout(d).callbacks.append(cb)`` idiom on
        the message send/reply/broker-deliver hot paths with a pooled
        event, so steady-state delivery allocates nothing.
        """
        self.pool_acquires += 1
        pool = self._pool
        if pool:
            self.pool_hits += 1
            event = pool.pop()
        else:
            event = PooledEvent(self)
        event._value = None
        event.callbacks.append(callback)  # type: ignore[union-attr]
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._bucket.append((seq, event))
        else:
            _heappush(self._queue, (self._now + delay, 1, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        # A non-empty bucket always holds events due *now*; heap entries
        # are never earlier than now, so now is the minimum.
        if self._bucket:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event in the queue."""
        bucket = self._bucket
        queue = self._queue
        if bucket:
            # The heap head precedes the bucket head only when it fires
            # at the current tick with higher priority or an earlier
            # sequence number (possible for a delayed event maturing
            # exactly now, or a priority-0 interrupt).
            head = queue[0] if queue else None
            if (head is not None and head[0] == self._now
                    and (head[1] < 1
                         or (head[1] == 1 and head[2] < bucket[0][0]))):
                self._now, _, _, event = _heappop(queue)
            else:
                _, event = bucket.popleft()
        elif queue:
            self._now, _, _, event = _heappop(queue)
        else:
            raise RuntimeError("no scheduled events")
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks or ():
            callback(event)
        if not event._ok and not event._defused:
            exc = typing.cast(BaseException, event._value)
            raise SimulationError(
                f"unhandled failure in {event!r}") from exc
        if event.__class__ is PooledEvent and len(self._pool) < _POOL_MAX:
            event._ok = True
            event._defused = False
            event._value = PENDING
            callbacks.clear()  # type: ignore[union-attr]
            event.callbacks = callbacks
            self._pool.append(event)  # type: ignore[arg-type]

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time) or an :class:`Event` (run until
        it fires, returning its value).
        """
        stop_event: Event | None = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            # Running until an event counts as "handling" its failure:
            # the exception is re-raised below instead of at dispatch.
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(
                    lambda event: event.defuse() if not event.ok else None)
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} lies in the past (now={self._now})")

        # The dispatch body is intentionally inlined three times below
        # (bucket, lone non-normal-priority pop, batched drain): this
        # loop is the hottest code in the repository and a shared helper
        # costs a call frame per event.  ``step()`` above keeps the
        # reference semantics.
        queue = self._queue
        bucket = self._bucket
        pool = self._pool
        pop_bucket = bucket.popleft
        processed = 0
        try:
            while True:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                if bucket:
                    head = queue[0] if queue else None
                    if (head is not None and head[0] == self._now
                            and (head[1] < 1
                                 or (head[1] == 1
                                     and head[2] < bucket[0][0]))):
                        self._now, _, _, event = _heappop(queue)
                    else:
                        _, event = pop_bucket()
                    processed += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks or ():
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = typing.cast(BaseException, event._value)
                        raise SimulationError(
                            f"unhandled failure in {event!r}") from exc
                    if (event.__class__ is PooledEvent
                            and len(pool) < _POOL_MAX):
                        event._ok = True
                        event._defused = False
                        event._value = PENDING
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
                    continue
                if not queue:
                    break
                head = queue[0]
                time = head[0]
                if time > stop_time:
                    self._now = stop_time
                    break
                self._now = time
                if head[1] != 1:
                    # Non-normal priority (process interrupts): dispatch
                    # singly so normal-priority events scheduled by its
                    # callbacks order correctly behind remaining peers.
                    _, _, _, event = _heappop(queue)
                    processed += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks or ():
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = typing.cast(BaseException, event._value)
                        raise SimulationError(
                            f"unhandled failure in {event!r}") from exc
                    if (event.__class__ is PooledEvent
                            and len(pool) < _POOL_MAX):
                        event._ok = True
                        event._defused = False
                        event._value = PENDING
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
                    continue
                # Batched drain: pop every heap entry sharing
                # (time, PRIORITY_NORMAL) without re-checking stop_time
                # (new same-tick schedules land in the bucket, and the
                # batch's time already passed the check above).  The
                # drain yields back to the outer loop as soon as a
                # bucket entry, a priority change (e.g. an interrupt
                # scheduled by a callback) or the stop event could alter
                # what must run next.
                while True:
                    _, _, _, event = _heappop(queue)
                    processed += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks or ():
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = typing.cast(BaseException, event._value)
                        raise SimulationError(
                            f"unhandled failure in {event!r}") from exc
                    if (event.__class__ is PooledEvent
                            and len(pool) < _POOL_MAX):
                        event._ok = True
                        event._defused = False
                        event._value = PENDING
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
                    if bucket:
                        break
                    if (stop_event is not None
                            and stop_event.callbacks is None):
                        break
                    if not queue:
                        break
                    head = queue[0]
                    if head[0] != time or head[1] != 1:
                        break
        finally:
            self.events_processed += processed

        if stop_event is not None:
            if not stop_event.triggered:
                return None
            if not stop_event.ok:
                stop_event.defuse()
                raise typing.cast(BaseException, stop_event._value)
            return stop_event.value
        if (until is not None and self._now < stop_time
                and not self._queue and not self._bucket):
            self._now = stop_time
        return None

    # ------------------------------------------------------------------
    # factory helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event owned by this environment."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator[Event, object, object],
                name: str | None = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def rng(self, name: str):
        """Return a named, independently-seeded random stream.

        Streams are derived deterministically from the environment seed
        and the stream name, so adding a new consumer of randomness does
        not perturb existing streams.
        """
        return self._seeds.stream(name)
