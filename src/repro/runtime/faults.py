"""Timed fault injection driven from the simulation clock.

A :class:`FaultSchedule` is a declarative list of :class:`FaultEvent`
actions — method names invoked on a target object (typically an actor
cluster: ``crash_silo``, ``drain_silo``, ``add_silo``) at fixed
simulated times.  The schedule is kernel-level on purpose: it knows
nothing about clusters, so any subsystem with a mutation API can be
fault-injected the same way, and scenario definitions stay data.

Every firing is recorded in :attr:`FaultSchedule.log` whether or not it
could be applied (a target may not exist — e.g. an app without an actor
cluster — or may not expose the action); the analysis layer correlates
this log with the per-second throughput/error timelines to compute
availability windows and recovery times.

Typical use (what the fault scenarios in ``core/scenarios.py`` do)::

    schedule = FaultSchedule([
        FaultEvent(at=3.0, action="crash_silo", target="silo-1"),
        FaultEvent(at=5.0, action="add_silo"),
    ])
    schedule.install(env, app.cluster)   # fires on the sim clock
    ...
    schedule.log                         # what fired, what applied

``docs/scenarios.md`` documents the shipped fault schedules and
``docs/metrics.md`` the availability report computed from the log.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.environment import Environment
    from repro.runtime.process import Process


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One timed action: call ``target_object.action(*args)`` at ``at``
    seconds (relative to the schedule's installation time)."""

    at: float
    action: str
    #: Positional argument (e.g. a silo name); omitted when None.
    target: str | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if not self.action:
            raise ValueError("fault action must be a method name")

    def time_scaled(self, factor: float) -> "FaultEvent":
        return dataclasses.replace(self, at=self.at * factor)


class FaultSchedule:
    """An ordered set of timed fault events plus their firing log."""

    def __init__(self, events: typing.Iterable[FaultEvent]) -> None:
        self.events = sorted(events, key=lambda event: event.at)
        #: One dict per firing: time (absolute), at (relative), action,
        #: target, applied, detail.
        self.log: list[dict] = []

    def __len__(self) -> int:
        return len(self.events)

    def time_scaled(self, factor: float) -> "FaultSchedule":
        """A copy with every event time stretched by ``factor``."""
        if factor <= 0:
            raise ValueError("time scale factor must be > 0")
        return FaultSchedule(event.time_scaled(factor)
                             for event in self.events)

    def install(self, env: "Environment", target: object) -> "Process":
        """Start the injector process: fire each event at its time.

        ``target`` is the object whose methods the events name (pass
        None to record the schedule as skipped — used when an app has
        no fault-injectable runtime).  Returns the injector process.
        """
        return env.process(self._run(env, target), name="fault-injector")

    def _run(self, env: "Environment", target: object):
        start = env.now
        for event in self.events:
            fire_at = start + event.at
            if fire_at > env.now:
                yield env.timeout(fire_at - env.now)
            self.log.append(self._fire(env, target, event))

    def _fire(self, env: "Environment", target: object,
              event: FaultEvent) -> dict:
        record = {"time": env.now, "at": event.at, "action": event.action,
                  "target": event.target, "applied": False, "detail": ""}
        action = getattr(target, event.action, None)
        if target is None or not callable(action):
            record["detail"] = "target does not support this action"
            return record
        try:
            if event.target is None:
                result = action()
            else:
                result = action(event.target)
        except Exception as error:  # noqa: BLE001 - logged, not fatal
            record["detail"] = f"{type(error).__name__}: {error}"
            return record
        record["applied"] = True
        record["detail"] = repr(result)
        return record
