"""Timed fault injection driven from the simulation clock.

A :class:`FaultSchedule` is a declarative list of :class:`FaultEvent`
actions — method names invoked on a target object (typically an actor
cluster: ``crash_silo``, ``drain_silo``, ``add_silo``) at fixed
simulated times.  The schedule is kernel-level on purpose: it knows
nothing about clusters, so any subsystem with a mutation API can be
fault-injected the same way, and scenario definitions stay data.

Every firing is recorded in :attr:`FaultSchedule.log` whether or not it
could be applied (a target may not exist — e.g. an app without an actor
cluster — or may not expose the action); the analysis layer correlates
this log with the per-second throughput/error timelines to compute
availability windows and recovery times.

The stringly ``action``/``target`` pair is now a thin parsing shim
over the typed command objects in :mod:`repro.control.actions`
(:class:`~repro.control.actions.AddSilo` & co.):
:attr:`FaultEvent.command` parses the strings once, and firing
dispatches through the same :func:`repro.control.actions.execute` path
the autoscaler uses.  Installing with ``control=`` (a
:class:`~repro.control.plane.ControlPlane`) additionally mirrors every
firing into the plane's audited action log, so scheduled faults and
autoscaler decisions read as one ordered membership history.

Typical use (what the fault scenarios in ``core/scenarios.py`` do)::

    schedule = FaultSchedule([
        FaultEvent(at=3.0, action="crash_silo", target="silo-1"),
        FaultEvent(at=5.0, action="add_silo"),
    ])
    schedule.install(env, app.cluster)   # fires on the sim clock
    ...
    schedule.log                         # what fired, what applied

``docs/scenarios.md`` documents the shipped fault schedules and
``docs/metrics.md`` the availability report computed from the log.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.control.actions import ControlAction
    from repro.control.plane import ControlPlane
    from repro.runtime.environment import Environment
    from repro.runtime.process import Process


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One timed action: call ``target_object.action(*args)`` at ``at``
    seconds (relative to the schedule's installation time)."""

    at: float
    action: str
    #: Positional argument (e.g. a silo name); omitted when None.
    target: str | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if not self.action:
            raise ValueError("fault action must be a method name")

    @property
    def command(self) -> "ControlAction":
        """The typed command this event's strings parse into."""
        # Function-level import: the kernel stays importable without
        # the control package (which imports core modules that import
        # this one).
        from repro.control.actions import parse_action

        return parse_action(self.action, self.target)

    def time_scaled(self, factor: float) -> "FaultEvent":
        return dataclasses.replace(self, at=self.at * factor)


class FaultSchedule:
    """An ordered set of timed fault events plus their firing log."""

    def __init__(self, events: typing.Iterable[FaultEvent]) -> None:
        self.events = sorted(events, key=lambda event: event.at)
        #: One dict per firing: time (absolute), at (relative), action,
        #: target, applied, detail.
        self.log: list[dict] = []

    def __len__(self) -> int:
        return len(self.events)

    def time_scaled(self, factor: float) -> "FaultSchedule":
        """A copy with every event time stretched by ``factor``."""
        if factor <= 0:
            raise ValueError("time scale factor must be > 0")
        return FaultSchedule(event.time_scaled(factor)
                             for event in self.events)

    def install(self, env: "Environment", target: object,
                control: "ControlPlane | None" = None) -> "Process":
        """Start the injector process: fire each event at its time.

        ``target`` is the object whose methods the events name (pass
        None to record the schedule as skipped — used when an app has
        no fault-injectable runtime).  With ``control`` every firing is
        also appended to the control plane's shared action log, merging
        scheduled faults into the same audited membership history the
        autoscaler writes.  Returns the injector process.
        """
        return env.process(self._run(env, target, control),
                           name="fault-injector")

    def _run(self, env: "Environment", target: object,
             control: "ControlPlane | None" = None):
        start = env.now
        for event in self.events:
            fire_at = start + event.at
            if fire_at > env.now:
                yield env.timeout(fire_at - env.now)
            record = self._fire(env, target, event)
            self.log.append(record)
            if control is not None:
                control.record(record)

    def _fire(self, env: "Environment", target: object,
              event: FaultEvent) -> dict:
        from repro.control.actions import execute

        fired = execute(target, event.command, env.now, source="fault")
        # Same record as ever, with the relative firing time restored
        # next to the absolute one (and the dispatch source appended).
        return dict(time=fired.pop("time"), at=event.at, **fired)
