"""Capacity-limited resources for modelling CPU cores and similar.

A :class:`Resource` has a fixed number of slots.  Processes request a
slot, hold it while doing simulated work, and release it.  When all
slots are busy, requests queue FIFO — this queueing is what produces
realistic saturation behaviour (latency rising as offered load
approaches capacity) in the benchmark results.
"""

from __future__ import annotations

import collections
import typing

from repro.runtime.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.environment import Environment


class ResourceRequest(Event):
    """Event that fires when the requested slot is granted."""

    __slots__ = ("resource", "granted")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.granted = False

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op once granted)."""
        if not self.granted:
            try:
                self.resource._waiting.remove(self)
            except ValueError:
                pass


class Resource:
    """A FIFO resource with ``capacity`` identical slots."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: collections.deque[ResourceRequest] = collections.deque()
        # Aggregate accounting, used to compute utilisation in reports.
        self._busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def utilisation(self, elapsed: float | None = None) -> float:
        """Average fraction of capacity busy since the start of the run."""
        self._account()
        horizon = elapsed if elapsed is not None else self.env.now
        if horizon <= 0:
            return 0.0
        return self._busy_time / (horizon * self.capacity)

    def _grant(self, request: ResourceRequest) -> None:
        """Hand ``request`` a slot (bookkeeping shared by all grants)."""
        self._account()
        self._in_use += 1
        request.granted = True

    def request(self) -> ResourceRequest:
        """Request a slot; the returned event fires when granted."""
        request = ResourceRequest(self)
        if self._in_use < self.capacity:
            self._grant(request)
            request.succeed()
        else:
            self._waiting.append(request)
        return request

    def _release_slot(self) -> None:
        """Free one slot and grant queued waiters (shared bookkeeping)."""
        self._account()
        self._in_use -= 1
        while self._waiting and self._in_use < self.capacity:
            waiter = self._waiting.popleft()
            self._grant(waiter)
            waiter.succeed()

    def release(self, request: ResourceRequest) -> None:
        """Release a previously granted slot."""
        if not request.granted:
            raise RuntimeError("releasing a request that was never granted")
        self._release_slot()

    def use(self, duration: float):
        """Process helper: acquire a slot, hold it ``duration``, release.

        Usage inside a process generator::

            yield from resource.use(0.002)

        When a slot is free the grant is synchronous — no grant event
        (and no :class:`ResourceRequest` at all) is created, the hold
        timeout starts immediately.  Contended requests queue FIFO
        exactly as before.
        """
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            try:
                yield self.env.timeout(duration)
            finally:
                self._release_slot()
        else:
            request = self.request()
            yield request
            try:
                yield self.env.timeout(duration)
            finally:
                self.release(request)
