"""Deterministic discrete-event simulation (DES) kernel.

Everything in this repository — the actor runtime, the transactional
layer, the dataflow runtime, the stores and the workload driver — runs on
this kernel.  It provides a virtual clock, an event queue, generator-based
processes (in the style of SimPy), capacity-limited resources for
modelling CPU cores, and seeded random-number streams so that every
simulation run is reproducible bit-for-bit.
"""

from repro.runtime.environment import Environment, Interrupt, SimulationError
from repro.runtime.events import AllOf, AnyOf, Event, Timeout
from repro.runtime.faults import FaultEvent, FaultSchedule
from repro.runtime.process import Process
from repro.runtime.resources import Resource, ResourceRequest
from repro.runtime.rng import RngStream, SeedSequenceFactory

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "FaultEvent",
    "FaultSchedule",
    "Interrupt",
    "Process",
    "Resource",
    "ResourceRequest",
    "RngStream",
    "SeedSequenceFactory",
    "SimulationError",
    "Timeout",
]
