"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.
Events move through three states: *pending* (created, not yet triggered),
*triggered* (scheduled to fire at some simulation time) and *processed*
(callbacks have run).  Processes wait on events by ``yield``-ing them.
"""

from __future__ import annotations

import typing
from heapq import heappush as _heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.environment import Environment

PENDING = object()
"""Sentinel for an event value that has not been set yet."""


class Event:
    """A one-shot occurrence in simulated time.

    Processes wait on an event by yielding it.  The event owner calls
    :meth:`succeed` or :meth:`fail` to trigger it; the kernel then resumes
    every waiting process at the current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[typing.Callable[["Event"], None]] | None = []
        self._value: object = PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event fired successfully (valid after trigger)."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's value; raises if the event has not been triggered."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self): triggering is always zero-delay at
        # normal priority, i.e. a straight same-tick bucket append.
        env = self.env
        env._seq = seq = env._seq + 1
        env._bucket.append((seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` raised at their yield
        point.  If no process ever waits on a failed event the kernel
        surfaces the exception at the end of the run (unless defused).
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        # Inlined env.schedule(self) — see succeed().
        env = self.env
        env._seq = seq = env._seq + 1
        env._bucket.append((seq, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class PooledEvent(Event):
    """A kernel-recycled event (see ``Environment.acquire_event``).

    The dispatch loop identifies pooled events by exact class and
    returns them to the environment's free-list right after their
    callbacks run, resetting ``callbacks``/``_value``/``_ok``/
    ``_defused`` to the pending state.  Consequently a pooled event must
    never be retained past its dispatch — in particular it must not be
    yielded from a process or stored in a :class:`Condition`, both of
    which read ``value``/``processed`` later.
    """

    __slots__ = ()


class Timeout(Event):
    """An event that fires after a fixed delay of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ and env.schedule — timeouts are the
        # kernel's most frequently created event; one call frame per
        # yield matters.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        if delay == 0.0:
            env._bucket.append((seq, self))
        else:
            _heappush(env._queue, (env._now + delay, 1, seq, self))


class ConditionValue:
    """Mapping of event -> value for the events that fired in a condition."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> object:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> typing.Iterator[Event]:
        return iter(self.events)

    def todict(self) -> dict[Event, object]:
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a combination of events (see :class:`AllOf`, :class:`AnyOf`).

    The condition fires as soon as ``evaluate(events, fired_count)``
    returns True, or fails as soon as any constituent event fails.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env: "Environment",
                 evaluate: typing.Callable[[list[Event], int], bool],
                 events: typing.Iterable[Event]) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        # Evaluate immediately in case the condition is trivially met
        # (e.g. AllOf over an empty list).
        if self._evaluate(self._events, 0) and not self._events:
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if self.triggered:
                break  # already decided: do not subscribe to the rest
            if event.processed:
                self._check(event)
            elif event.callbacks is not None:
                event.callbacks.append(self._check)

    def _collect_values(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            # Only events that have actually fired (been processed) count;
            # a Timeout is "triggered" at creation but fires later.
            if event.processed and event.ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event.ok:
            event.defuse()
            self.fail(typing.cast(BaseException, event.value))
            self._detach()
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())
            self._detach()

    def _detach(self) -> None:
        """Unsubscribe from constituents that have not fired yet.

        Without this, a decided condition (e.g. an ``AnyOf`` whose
        winner fired) stays registered on every losing event; a
        long-lived loser then pins the condition — and through it the
        whole event list — for its own lifetime.
        """
        check = self._check
        for event in self._events:
            callbacks = event.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(check)
                except ValueError:
                    pass


class AllOf(Condition):
    """Condition that fires when *all* constituent events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment",
                 events: typing.Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= len(events),
                         events)
        if not self._events and not self.triggered:
            self.succeed(ConditionValue())


class AnyOf(Condition):
    """Condition that fires when *any* constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment",
                 events: typing.Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= 1 or
                         not events, events)
        if not self._events and not self.triggered:
            self.succeed(ConditionValue())
