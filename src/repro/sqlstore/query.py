"""Tiny predicate combinators for querying MVCC tables.

These deliberately mirror the shape of a SQL ``WHERE`` clause without
parsing SQL: each combinator returns a :class:`Predicate` that can be
tested against a row-data mapping, and reports the (column, value) pair
it pins down exactly — which lets the engine use a secondary index.
"""

from __future__ import annotations

import typing

RowData = typing.Mapping[str, object]


class Predicate:
    """A testable row condition, possibly index-assisted."""

    def __init__(self, test: typing.Callable[[RowData], bool],
                 equality: tuple[str, object] | None = None,
                 description: str = "?") -> None:
        self._test = test
        #: (column, value) when the predicate implies column == value.
        self.equality = equality
        self.description = description

    def __call__(self, row: RowData) -> bool:
        return self._test(row)

    def __and__(self, other: "Predicate") -> "Predicate":
        return and_(self, other)

    def __repr__(self) -> str:
        return f"<Predicate {self.description}>"


def eq(column: str, value: object) -> Predicate:
    """``column == value`` (index-assisted when an index exists)."""
    return Predicate(lambda row: row.get(column) == value,
                     equality=(column, value),
                     description=f"{column} == {value!r}")


def _compare(column: str, value, op, symbol: str) -> Predicate:
    def test(row: RowData) -> bool:
        actual = row.get(column)
        if actual is None:
            return False
        return op(actual, value)
    return Predicate(test, description=f"{column} {symbol} {value!r}")


def lt(column: str, value) -> Predicate:
    return _compare(column, value, lambda a, b: a < b, "<")


def le(column: str, value) -> Predicate:
    return _compare(column, value, lambda a, b: a <= b, "<=")


def gt(column: str, value) -> Predicate:
    return _compare(column, value, lambda a, b: a > b, ">")


def ge(column: str, value) -> Predicate:
    return _compare(column, value, lambda a, b: a >= b, ">=")


def in_(column: str, values: typing.Iterable[object]) -> Predicate:
    """``column IN (values)``; index-assisted for single-value sets."""
    candidates = set(values)
    equality = None
    if len(candidates) == 1:
        equality = (column, next(iter(candidates)))
    return Predicate(lambda row: row.get(column) in candidates,
                     equality=equality,
                     description=f"{column} IN {sorted(map(repr, candidates))}")


def not_(predicate: Predicate) -> Predicate:
    """Negation (never index-assisted)."""
    return Predicate(lambda row: not predicate(row),
                     description=f"NOT ({predicate.description})")


def or_(*predicates: Predicate) -> Predicate:
    """Disjunction (never index-assisted)."""
    return Predicate(
        lambda row: any(predicate(row) for predicate in predicates),
        description=" OR ".join(p.description for p in predicates))


def and_(*predicates: Predicate) -> Predicate:
    """Conjunction; inherits the first index-usable equality, if any."""
    equality = None
    for predicate in predicates:
        if predicate.equality is not None:
            equality = predicate.equality
            break
    return Predicate(
        lambda row: all(predicate(row) for predicate in predicates),
        equality=equality,
        description=" AND ".join(p.description for p in predicates))
