"""MVCC storage engine with snapshot isolation.

The repository's stand-in for PostgreSQL: the paper's *Customized
Orleans* implementation offloads consistent querying (the seller
dashboard's two queries must observe the same snapshot) to a relational
store.  This engine provides multi-version storage, snapshot-isolated
transactions with first-committer-wins conflict detection, secondary
indexes and a small predicate query layer.
"""

from repro.sqlstore.engine import (
    MVCCEngine,
    SerializationError,
    Snapshot,
    Transaction,
)
from repro.sqlstore.query import (
    Predicate,
    and_,
    eq,
    ge,
    gt,
    in_,
    le,
    lt,
    not_,
    or_,
)
from repro.sqlstore.table import Row, Table, UniqueViolation

__all__ = [
    "MVCCEngine",
    "Predicate",
    "Row",
    "SerializationError",
    "Snapshot",
    "Table",
    "Transaction",
    "UniqueViolation",
    "and_",
    "eq",
    "ge",
    "gt",
    "in_",
    "le",
    "lt",
    "not_",
    "or_",
]
