"""Tables, rows and version chains for the MVCC engine."""

from __future__ import annotations

import dataclasses
import typing

INFINITY = float("inf")


class UniqueViolation(Exception):
    """Insert of a primary key that already has a visible version."""


@dataclasses.dataclass
class Version:
    """One version of a row.

    A version is visible to a snapshot taken at time ``ts`` when
    ``begin_ts <= ts < end_ts``.  ``end_ts`` is infinity while the
    version is current.
    """

    data: dict[str, object] | None  # None encodes a deletion marker
    begin_ts: float
    end_ts: float = INFINITY
    txid: int = 0

    def visible_at(self, ts: float) -> bool:
        return self.begin_ts <= ts < self.end_ts


@dataclasses.dataclass(frozen=True)
class Row:
    """An immutable row snapshot handed back to queries."""

    key: object
    data: typing.Mapping[str, object]

    def __getitem__(self, column: str) -> object:
        return self.data[column]

    def get(self, column: str, default: object = None) -> object:
        return self.data.get(column, default)


class Table:
    """A table: primary-key -> version chain, plus secondary indexes."""

    def __init__(self, name: str, columns: typing.Sequence[str],
                 primary_key: str) -> None:
        if primary_key not in columns:
            raise ValueError(
                f"primary key {primary_key!r} not in columns {columns!r}")
        self.name = name
        self.columns = tuple(columns)
        self.primary_key = primary_key
        self._chains: dict[object, list[Version]] = {}
        self._indexes: dict[str, dict[object, set[object]]] = {}
        #: Scans answered from a secondary index (observability/tests).
        self.index_hits = 0

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        if column not in self.columns:
            raise ValueError(f"no column {column!r} in table {self.name!r}")
        if column in self._indexes:
            return
        index: dict[object, set[object]] = {}
        for key, chain in self._chains.items():
            # Every version's value, not just the current one: older
            # snapshots may still see a value the row has since left.
            for version in chain:
                if version.data is not None:
                    index.setdefault(version.data.get(column),
                                     set()).add(key)
        self._indexes[column] = index

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    # ------------------------------------------------------------------
    # version-chain access (engine internal)
    # ------------------------------------------------------------------
    def chain(self, key: object) -> list[Version]:
        return self._chains.get(key, [])

    def latest(self, key: object) -> Version | None:
        chain = self._chains.get(key)
        return chain[-1] if chain else None

    def visible(self, key: object, ts: float) -> dict[str, object] | None:
        """The row data visible at snapshot ``ts`` (None if absent)."""
        for version in reversed(self.chain(key)):
            if version.visible_at(ts):
                return version.data
        return None

    def install(self, key: object, data: dict[str, object] | None,
                ts: float, txid: int) -> None:
        """Install a new current version at commit time ``ts``."""
        chain = self._chains.setdefault(key, [])
        old_data = None
        if chain:
            chain[-1].end_ts = ts
            old_data = chain[-1].data
        chain.append(Version(data=data, begin_ts=ts, txid=txid))
        self._reindex(key, old_data, data)

    def _reindex(self, key: object, old: dict[str, object] | None,
                 new: dict[str, object] | None) -> None:
        # Additive: a key is never removed from a bucket, so a bucket
        # is a *superset* of the keys whose visible version matches at
        # any timestamp.  Scans re-check visibility and the predicate,
        # so a stale entry costs one lookup, never a wrong result —
        # whereas removing on update would make older snapshots miss
        # rows whose indexed value changed after their timestamp.
        if new is None:
            return
        for column, index in self._indexes.items():
            index.setdefault(new.get(column), set()).add(key)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def keys_at(self, ts: float) -> typing.Iterator[object]:
        for key in self._chains:
            if self.visible(key, ts) is not None:
                yield key

    def index_lookup(self, column: str, value: object) -> set[object]:
        """Candidate keys for which *some* version matches ``value``
        (callers must recheck visibility + predicate at their
        snapshot; the bucket may contain stale entries)."""
        index = self._indexes.get(column)
        if index is None:
            raise KeyError(f"no index on {self.name}.{column}")
        self.index_hits += 1
        return set(index.get(value, ()))

    def __len__(self) -> int:
        """Number of keys with a live current version."""
        return sum(1 for chain in self._chains.values()
                   if chain and chain[-1].data is not None)
