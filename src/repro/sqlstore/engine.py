"""The MVCC engine: snapshots, SI transactions, conflict detection."""

from __future__ import annotations

import itertools
import typing

from repro.sqlstore.query import Predicate
from repro.sqlstore.table import Row, Table, UniqueViolation


class SerializationError(Exception):
    """First-committer-wins conflict: another transaction committed a
    newer version of a row this transaction wrote."""


def _order_rows(rows: list[Row], order_by: str | None,
                descending: bool) -> None:
    """Sort rows in place: by column (missing-first) or primary key."""
    if order_by is not None:
        rows.sort(key=lambda row: (row.get(order_by) is not None,
                                   row.get(order_by), str(row.key)),
                  reverse=descending)
    else:
        rows.sort(key=lambda row: str(row.key))


class Snapshot:
    """A read-only view of the database as of a single timestamp.

    Both seller-dashboard queries run against one :class:`Snapshot`,
    which is exactly the consistency criterion the paper prescribes.
    """

    def __init__(self, engine: "MVCCEngine", ts: float) -> None:
        self.engine = engine
        self.ts = ts

    def read(self, table_name: str, key: object) -> Row | None:
        table = self.engine.table(table_name)
        data = table.visible(key, self.ts)
        if data is None:
            return None
        return Row(key=key, data=dict(data))

    def scan(self, table_name: str,
             predicate: Predicate | None = None,
             order_by: str | None = None,
             descending: bool = False,
             limit: int | None = None) -> list[Row]:
        """All rows visible at this snapshot matching ``predicate``.

        Uses a secondary index when the predicate pins an indexed column
        to a single value; otherwise a full scan.  ``order_by`` sorts by
        a column (rows missing the column sort first); without it, rows
        are ordered by primary key for determinism.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        table = self.engine.table(table_name)
        candidates: typing.Iterable[object]
        if (predicate is not None and predicate.equality is not None
                and predicate.equality[0] in table.indexed_columns):
            candidates = table.index_lookup(*predicate.equality)
        else:
            candidates = list(table.keys_at(self.ts))
        rows = []
        for key in candidates:
            data = table.visible(key, self.ts)
            if data is None:
                continue
            if predicate is None or predicate(data):
                rows.append(Row(key=key, data=dict(data)))
        _order_rows(rows, order_by, descending)
        if limit is not None:
            rows = rows[:limit]
        return rows

    def aggregate(self, table_name: str, column: str,
                  predicate: Predicate | None = None,
                  function: str = "sum"):
        """SUM/COUNT/AVG/MIN/MAX over matching rows at this snapshot."""
        rows = self.scan(table_name, predicate)
        values = [row[column] for row in rows if row.get(column) is not None]
        if function == "count":
            return len(rows)
        if not values:
            return None if function in ("min", "max", "avg") else 0
        if function == "sum":
            return sum(values)
        if function == "avg":
            return sum(values) / len(values)
        if function == "min":
            return min(values)
        if function == "max":
            return max(values)
        raise ValueError(f"unknown aggregate {function!r}")


class Transaction:
    """A snapshot-isolated read-write transaction.

    Reads see the begin snapshot; writes are buffered and installed
    atomically at commit.  Write-write conflicts with transactions that
    committed after this one began raise :class:`SerializationError`
    (first-committer-wins).
    """

    def __init__(self, engine: "MVCCEngine", txid: int, ts: float) -> None:
        self.engine = engine
        self.txid = txid
        self.begin_ts = ts
        self.snapshot = Snapshot(engine, ts)
        # (table, key) -> new data (None = delete)
        self._writes: dict[tuple[str, object], dict[str, object] | None] = {}
        self._inserted: set[tuple[str, object]] = set()
        self.status = "active"

    # ------------------------------------------------------------------
    # reads (own writes visible)
    # ------------------------------------------------------------------
    def read(self, table_name: str, key: object) -> Row | None:
        if (table_name, key) in self._writes:
            data = self._writes[(table_name, key)]
            return None if data is None else Row(key=key, data=dict(data))
        return self.snapshot.read(table_name, key)

    def scan(self, table_name: str,
             predicate: Predicate | None = None,
             order_by: str | None = None,
             descending: bool = False,
             limit: int | None = None) -> list[Row]:
        """Snapshot scan merged with this transaction's own writes.

        Index-assisted exactly like :meth:`Snapshot.scan` (a predicate
        pinning an indexed column to one value walks the index rather
        than the whole table); ``limit`` applies *after* the merge so
        own writes cannot be displaced by committed rows.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        rows = {row.key: row
                for row in self.snapshot.scan(table_name, predicate)}
        for (tname, key), data in self._writes.items():
            if tname != table_name:
                continue
            if data is None:
                rows.pop(key, None)
            elif predicate is None or predicate(data):
                rows[key] = Row(key=key, data=dict(data))
            else:
                rows.pop(key, None)
        merged = list(rows.values())
        _order_rows(merged, order_by, descending)
        if limit is not None:
            merged = merged[:limit]
        return merged

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _require_active(self) -> None:
        if self.status != "active":
            raise RuntimeError(f"transaction {self.txid} is {self.status}")

    def insert(self, table_name: str, data: dict[str, object]) -> None:
        self._require_active()
        table = self.engine.table(table_name)
        key = data.get(table.primary_key)
        if key is None:
            raise ValueError(f"insert into {table_name} missing primary key")
        if self.read(table_name, key) is not None:
            raise UniqueViolation(f"{table_name}[{key!r}] already exists")
        self._writes[(table_name, key)] = dict(data)
        self._inserted.add((table_name, key))

    def update(self, table_name: str, key: object,
               changes: dict[str, object]) -> bool:
        self._require_active()
        current = self.read(table_name, key)
        if current is None:
            return False
        data = dict(current.data)
        data.update(changes)
        self._writes[(table_name, key)] = data
        return True

    def upsert(self, table_name: str, data: dict[str, object]) -> None:
        self._require_active()
        table = self.engine.table(table_name)
        key = data[table.primary_key]
        if not self.update(table_name, key, dict(data)):
            self.insert(table_name, data)

    def delete(self, table_name: str, key: object) -> bool:
        self._require_active()
        if self.read(table_name, key) is None:
            return False
        self._writes[(table_name, key)] = None
        return True

    # ------------------------------------------------------------------
    # commit / abort
    # ------------------------------------------------------------------
    def commit(self) -> float:
        """Validate and install all writes atomically; returns commit ts."""
        self._require_active()
        # First-committer-wins validation: if any written key has a
        # version installed after our snapshot, abort.
        for (table_name, key) in self._writes:
            latest = self.engine.table(table_name).latest(key)
            if latest is not None and latest.begin_ts > self.begin_ts:
                self.status = "aborted"
                raise SerializationError(
                    f"tx {self.txid}: write-write conflict on "
                    f"{table_name}[{key!r}]")
        commit_ts = self.engine._next_ts()
        for (table_name, key), data in self._writes.items():
            self.engine.table(table_name).install(
                key, data, commit_ts, self.txid)
        self.status = "committed"
        self.engine._committed += 1
        return commit_ts

    def abort(self) -> None:
        self._require_active()
        self.status = "aborted"
        self._writes.clear()


class MVCCEngine:
    """Multi-version storage engine with snapshot-isolated transactions.

    Timestamps are logical (a monotone counter), so the engine is fully
    deterministic and independent of the simulation clock; callers charge
    simulated latency separately.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._clock = itertools.count(1)
        self._txids = itertools.count(1)
        self._last_ts = 0.0
        self._committed = 0

    def _next_ts(self) -> float:
        self._last_ts = float(next(self._clock))
        return self._last_ts

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: typing.Sequence[str],
                     primary_key: str) -> Table:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, columns, primary_key)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise KeyError(f"no table {name!r}")
        return table

    @property
    def tables(self) -> dict[str, Table]:
        return dict(self._tables)

    @property
    def committed_count(self) -> int:
        return self._committed

    # ------------------------------------------------------------------
    # transactions & snapshots
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        """Start a snapshot-isolated transaction."""
        return Transaction(self, next(self._txids), self._last_ts)

    def snapshot(self) -> Snapshot:
        """A read-only snapshot of the current committed state."""
        return Snapshot(self, self._last_ts)

    def autocommit(self, table_name: str, data: dict[str, object]) -> None:
        """Single-row upsert in its own transaction (retried on conflict)."""
        while True:
            txn = self.begin()
            txn.upsert(table_name, data)
            try:
                txn.commit()
                return
            except SerializationError:  # pragma: no cover - single writer
                continue
