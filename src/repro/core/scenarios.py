"""The named scenario suite: declarative open-loop workload shapes.

Each :class:`Scenario` composes a :class:`WorkloadConfig` (scale, skew,
transaction mix) with an arrival schedule and optional hotspot window
into one reproducible experiment a single name away::

    python -m repro.cli scenario flash-sale --app orleans-eventual

Scenarios deliberately stress different axes of the four platforms:

``baseline``            steady Poisson traffic well under capacity.
``flash-sale``          a temporary arrival burst plus a Zipf-skew
                        spike on a handful of hot products.
``heavy-writer``        seller-write-dominated mix (price updates and
                        deletes) at a steady rate.
``burst-then-quiesce``  a hard burst followed by near-silence, probing
                        queue drain and recovery.
``delete-churn``        sustained product deletes with a deep reserve
                        pool, stressing delete compensation paths.
``overload-ramp``       arrival rate ramping linearly past capacity to
                        expose the saturation knee.
``silo-crash``          a silo fail-stops mid-window: volatile grain
                        state is lost, in-flight calls fail, and the
                        availability timeline shows the outage and the
                        recovery.
``scale-out-under-load``  two joins land on a small hot cluster while
                        arrivals keep coming: grain migration under
                        load.
``rolling-restart``     every original silo is drained and replaced in
                        sequence — the zero-downtime deployment test.
``return-storm``        delivery-heavy mix with a steady stream of
                        return requests: the compensation saga under
                        light message loss.
``payment-flaky``       15% of payments decline: the payment-failure
                        abort path (release stock, cancel the order)
                        on every checkout-carrying stack.
``duplicate-ingest``    external-platform orders where a third of the
                        submits race a duplicate: the idempotent front
                        door and the exactly-once audit.
``million-keys``        a million-product catalogue generated lazily
                        on first touch under a per-silo activation
                        budget: memory tracks the touched set, not
                        the configured world.
``diurnal``             a compressed day of sinusoidal traffic against
                        an SLO-driven autoscaler: capacity follows the
                        wave up and back down.
``autoscale-flash-sale``  the flash-sale burst landing on a small
                        elastic cluster: the autoscaler must scale out
                        fast enough to restore the p95 SLO and scale
                        back in once the sale ends.

Rates are expressed relative to ``base_rate`` so one ``--rate-scale``
knob moves a whole scenario up or down without changing its shape.
Fault times, like the hotspot window, are relative to run start
(warm-up included) and stretch with ``--duration-scale``; autoscaler
cadence and cooldowns stretch the same way (the SLO itself does not).

Scenario runs should go through
:func:`repro.control.run_scenario` — it performs the canonical
environment/app/driver assembly — rather than hand-building drivers.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.control.autoscaler import AutoscalerConfig, SLOTarget
from repro.core.driver.arrivals import (
    ArrivalProcess,
    ConstantRate,
    PhasedArrivals,
    PoissonArrivals,
    RampArrivals,
    SinusoidArrivals,
)
from repro.core.driver.open_loop import (
    HotspotSpec,
    OpenLoopConfig,
    OpenLoopDriver,
)
from repro.core.workload.config import TransactionMix, WorkloadConfig
from repro.runtime.faults import FaultEvent, FaultSchedule

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.base import MarketplaceApp
    from repro.runtime import Environment

#: Scenario workloads share a modest marketplace so CLI runs finish in
#: seconds; scale axes live in the arrival schedule, not the dataset.
_SCALE = dict(sellers=6, customers=64, products_per_seller=8)

#: Silos and cores-per-silo used when neither the scenario nor the
#: caller pins a cluster shape (mirrors the AppConfig defaults).
_DEFAULT_CLUSTER_SHAPE = 4


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, declarative open-loop experiment."""

    name: str
    description: str
    #: Builds the workload (fresh per run — configs are mutable).
    workload: typing.Callable[[], WorkloadConfig]
    #: Builds the arrival schedule from the scaled base rate.
    arrivals: typing.Callable[[float], ArrivalProcess]
    #: Nominal arrivals/second the shape is expressed against.
    base_rate: float = 150.0
    warmup: float = 1.0
    duration: float = 5.0
    drain: float = 2.0
    max_in_flight: int = 32
    queue_capacity: int | None = None
    #: Hotspot window relative to run start, or None.
    hotspot: typing.Callable[[], HotspotSpec] | None = None
    #: Timed membership faults (times relative to run start), or None.
    faults: typing.Callable[[], FaultSchedule] | None = None
    #: SLO-driven elasticity controller for the run, or None.
    autoscaler: typing.Callable[[], AutoscalerConfig] | None = None
    #: Cluster shape the scenario is designed for; the CLI and benches
    #: use these as the app defaults (None = leave the app default).
    cluster_silos: int | None = None
    cluster_cores: int | None = None
    #: Payment approval rate the scenario runs the app with.
    approval_rate: float = 1.0
    #: Message-loss probability the scenario runs the app with.
    drop_probability: float = 0.0
    #: Per-silo activation budget (per-worker address budget on the
    #: dataflow stack); None = unbounded residency.
    activation_limit: int | None = None

    @property
    def effective_silos(self) -> int:
        """Silo count to run with when the caller has no override."""
        return self.cluster_silos if self.cluster_silos is not None \
            else _DEFAULT_CLUSTER_SHAPE

    @property
    def effective_cores(self) -> int:
        """Cores per silo to run with absent a caller override."""
        return self.cluster_cores if self.cluster_cores is not None \
            else _DEFAULT_CLUSTER_SHAPE

    def build_config(self, rate_scale: float = 1.0,
                     duration_scale: float = 1.0) -> OpenLoopConfig:
        """Instantiate the schedule; ``duration_scale`` stretches the
        whole time axis (window, warm-up, drain, phase/ramp durations
        and the hotspot window alike) so the scenario's shape — and
        the drain's headroom for clearing the end-of-window backlog —
        is preserved at any scale."""
        if rate_scale <= 0 or duration_scale <= 0:
            raise ValueError("scales must be > 0")
        arrivals = self.arrivals(self.base_rate)
        if rate_scale != 1.0:
            arrivals = arrivals.scaled(rate_scale)
        if duration_scale != 1.0:
            arrivals = arrivals.time_scaled(duration_scale)
        hotspot = self.hotspot() if self.hotspot else None
        if hotspot is not None and duration_scale != 1.0:
            hotspot = HotspotSpec(
                start=hotspot.start * duration_scale,
                end=hotspot.end * duration_scale,
                top_ranks=hotspot.top_ranks,
                probability=hotspot.probability)
        faults = self.faults() if self.faults else None
        if faults is not None and duration_scale != 1.0:
            faults = faults.time_scaled(duration_scale)
        autoscaler = self.autoscaler() if self.autoscaler else None
        if autoscaler is not None and duration_scale != 1.0:
            autoscaler = autoscaler.time_scaled(duration_scale)
        return OpenLoopConfig(
            arrivals=arrivals,
            warmup=self.warmup * duration_scale,
            duration=self.duration * duration_scale,
            drain=self.drain * duration_scale,
            max_in_flight=self.max_in_flight,
            queue_capacity=self.queue_capacity,
            hotspot=hotspot,
            faults=faults,
            autoscaler=autoscaler)

    def build_driver(self, env: "Environment", app: "MarketplaceApp",
                     rate_scale: float = 1.0,
                     duration_scale: float = 1.0,
                     data_seed: int = 0) -> OpenLoopDriver:
        """A ready-to-run :class:`OpenLoopDriver` for this scenario:
        fresh workload + scaled schedule against ``app``, dataset
        seeded with ``data_seed``."""
        return OpenLoopDriver(
            env, app, self.workload(),
            self.build_config(rate_scale, duration_scale),
            data_seed=data_seed)


def _default_workload(**overrides) -> typing.Callable[[], WorkloadConfig]:
    def build() -> WorkloadConfig:
        return WorkloadConfig(**{**_SCALE, **overrides})
    return build


def _flash_sale_arrivals(rate: float) -> PhasedArrivals:
    # calm -> 4x spike -> calm; the spike lines up with the hotspot.
    return PhasedArrivals([
        (2.0, PoissonArrivals(rate)),
        (2.0, PoissonArrivals(rate * 4.0)),
        (2.0, PoissonArrivals(rate)),
    ])


def _burst_quiesce_arrivals(rate: float) -> PhasedArrivals:
    return PhasedArrivals([
        (1.5, PoissonArrivals(rate * 5.0)),
        (4.5, PoissonArrivals(rate * 0.1)),
    ])


SCENARIOS: dict[str, Scenario] = {}


def _register(scenario: Scenario) -> None:
    SCENARIOS[scenario.name] = scenario


_register(Scenario(
    name="baseline",
    description="Steady Poisson arrivals well under capacity; the "
                "reference point the stress scenarios compare against.",
    workload=_default_workload(),
    arrivals=PoissonArrivals,
))

_register(Scenario(
    name="flash-sale",
    description="A 2-second arrival burst at 4x the base rate while "
                "product popularity spikes onto the top three ranks — "
                "the classic hotspot that separates lock-based, "
                "dataflow and eventual designs.",
    workload=_default_workload(zipf_s=1.0),
    arrivals=_flash_sale_arrivals,
    duration=6.0,
    warmup=0.5,
    # Small enough that the 4x spike outruns the pool and queues.
    max_in_flight=6,
    # The arrival schedule starts at run start (warm-up included), so
    # the 4x phase covers sim-seconds [2.0, 4.0); the hotspot window
    # matches it exactly.
    hotspot=lambda: HotspotSpec(start=2.0, end=4.0, top_ranks=3,
                                probability=0.7),
))

_register(Scenario(
    name="heavy-writer",
    description="Seller-write-dominated mix: price updates and deletes "
                "outweigh checkouts, stressing replication fan-out and "
                "write contention.",
    workload=_default_workload(mix=TransactionMix(
        checkout=30.0, price_update=40.0, product_delete=8.0,
        update_delivery=7.0, dashboard=15.0)),
    arrivals=ConstantRate,
    base_rate=120.0,
))

_register(Scenario(
    name="burst-then-quiesce",
    description="A hard 5x burst followed by near-silence: probes how "
                "deep the queue gets and how fast it drains once load "
                "drops.",
    workload=_default_workload(),
    arrivals=_burst_quiesce_arrivals,
    duration=6.0,
    warmup=0.5,
    max_in_flight=6,
))

_register(Scenario(
    name="delete-churn",
    description="Sustained product deletes backed by a deep reserve "
                "pool: exercises delete compensation and tombstone "
                "handling without distorting the key distribution.",
    workload=_default_workload(
        reserve_fraction=2.0,
        mix=TransactionMix(checkout=45.0, price_update=10.0,
                           product_delete=25.0, update_delivery=5.0,
                           dashboard=15.0)),
    arrivals=PoissonArrivals,
    base_rate=100.0,
))

_register(Scenario(
    name="overload-ramp",
    description="Arrival rate ramping linearly from 0.5x to 5x the "
                "base rate: the queueing-delay curve locates the "
                "saturation knee.",
    workload=_default_workload(),
    arrivals=lambda rate: RampArrivals(rate * 0.5, rate * 5.0,
                                       ramp_duration=6.0),
    duration=6.0,
    drain=3.0,
    # Deliberately tiny: the ramp must cross the pool's capacity.
    max_in_flight=4,
))


_register(Scenario(
    name="silo-crash",
    description="One of four silos fail-stops mid-window: queued calls "
                "are re-placed, in-flight calls fail, volatile grain "
                "state is lost, and the availability timeline shows "
                "the outage depth and the recovery time.",
    workload=_default_workload(),
    arrivals=PoissonArrivals,
    duration=6.0,
    warmup=1.0,
    # Crash lands at measured second 2, leaving two clean pre-fault
    # seconds to baseline the recovery against.
    faults=lambda: FaultSchedule([
        FaultEvent(at=3.0, action="crash_silo", target="silo-1"),
    ]),
))

_register(Scenario(
    name="scale-out-under-load",
    description="A two-silo cluster takes sustained load while two "
                "silos join mid-window: placement shifts, activations "
                "migrate to the new owners, and capacity grows without "
                "stopping traffic.",
    workload=_default_workload(),
    arrivals=ConstantRate,
    base_rate=250.0,
    duration=6.0,
    warmup=1.0,
    max_in_flight=12,
    cluster_silos=2,
    cluster_cores=2,
    faults=lambda: FaultSchedule([
        FaultEvent(at=3.0, action="add_silo"),
        FaultEvent(at=4.0, action="add_silo"),
    ]),
))

_register(Scenario(
    name="rolling-restart",
    description="Every original silo is drained (state handed off "
                "cleanly) and replaced by a fresh join, one at a time "
                "under live traffic — the zero-downtime deployment "
                "drill.",
    workload=_default_workload(),
    arrivals=PoissonArrivals,
    duration=8.0,
    warmup=1.0,
    # First drain at measured second 2, leaving a pre-fault baseline;
    # each replacement joins half a second after its drain begins.
    faults=lambda: FaultSchedule([
        FaultEvent(at=3.0, action="drain_silo", target="silo-0"),
        FaultEvent(at=3.5, action="add_silo"),
        FaultEvent(at=4.5, action="drain_silo", target="silo-1"),
        FaultEvent(at=5.0, action="add_silo"),
        FaultEvent(at=6.0, action="drain_silo", target="silo-2"),
        FaultEvent(at=6.5, action="add_silo"),
        FaultEvent(at=7.5, action="drain_silo", target="silo-3"),
        FaultEvent(at=8.0, action="add_silo"),
    ]),
))


_register(Scenario(
    name="return-storm",
    description="Delivery-heavy traffic with a steady stream of return "
                "requests under light message loss: every completed "
                "order is a refund candidate, so the compensation saga "
                "(refund + restock + ledger reversal) runs constantly "
                "— atomic stacks keep C1, the eventual stack strands "
                "returns mid-saga.",
    workload=_default_workload(mix=TransactionMix(
        checkout=35.0, price_update=5.0, product_delete=1.0,
        update_delivery=24.0, dashboard=10.0, request_return=25.0)),
    arrivals=PoissonArrivals,
    base_rate=120.0,
    drop_probability=0.01,
))

_register(Scenario(
    name="payment-flaky",
    description="15% of payment authorizations decline: every stack "
                "must run the payment-failure abort (release stock, "
                "fail then cancel the order) without leaking "
                "reservations or spend.",
    workload=_default_workload(),
    arrivals=PoissonArrivals,
    base_rate=120.0,
    approval_rate=0.85,
))

_register(Scenario(
    name="duplicate-ingest",
    description="External-platform orders dominate and a third of the "
                "submits race an identical duplicate under heavy "
                "message loss: the idempotent front door must create "
                "each (platform, shop, order-no) exactly once — the "
                "C6 audit proves it on the transactional stacks and "
                "counts the orphaned/duplicated registrations the "
                "at-least-once retry leaves behind on the eventual "
                "one.",
    workload=_default_workload(
        duplicate_submit_probability=0.35,
        mix=TransactionMix(
            checkout=25.0, price_update=5.0, product_delete=1.0,
            update_delivery=14.0, dashboard=15.0,
            submit_external=40.0)),
    arrivals=PoissonArrivals,
    base_rate=120.0,
    drop_probability=0.10,
))


_register(Scenario(
    name="million-keys",
    description="A million-product catalogue (1000 sellers x 1000 "
                "products, 100k customers) generated lazily on first "
                "touch, with a 2000-activation per-silo budget: the "
                "driver's Zipf tail only ever materialises the keys it "
                "samples, and the working-set sweep pages idle grains "
                "out, so memory tracks the *touched* set, not the "
                "configured world.",
    workload=_default_workload(
        sellers=1000, products_per_seller=1000, customers=100_000,
        lazy_dataset=True),
    arrivals=PoissonArrivals,
    duration=4.0,
    warmup=0.5,
    drain=1.5,
    activation_limit=2000,
))


_register(Scenario(
    name="diurnal",
    description="A compressed day of traffic — arrival rate swinging "
                "sinusoidally from 0.35x to 1.65x the base, trough at "
                "both ends, crest at midday — against an SLO-driven "
                "autoscaler on a two-silo cluster of single-core "
                "silos: capacity should follow the wave out and back "
                "in while the p95 queue-delay SLO holds.",
    workload=_default_workload(),
    arrivals=lambda rate: SinusoidArrivals(rate, amplitude=0.7,
                                           period=10.0, phase=0.75),
    base_rate=340.0,
    duration=10.0,
    warmup=0.5,
    drain=2.0,
    max_in_flight=48,
    # Single-core silos put the crest past the starting capacity, so
    # the knee — and the controller's reaction to it — is the story.
    cluster_silos=2,
    cluster_cores=1,
    autoscaler=lambda: AutoscalerConfig(
        slo=SLOTarget(queue_delay_p95=0.050, error_rate=0.05),
        interval=0.25, window=1.0,
        min_silos=2, max_silos=5,
        breach_ticks=2, clear_ticks=4,
        cooldown_up=0.75, cooldown_down=1.25,
        rate_per_silo=250.0),
))

_register(Scenario(
    name="autoscale-flash-sale",
    description="The flash-sale burst landing on a two-silo elastic "
                "cluster instead of a fixed four-silo one: calm "
                "traffic, a 2.4x spike, then a quiet afternoon.  The "
                "autoscaler must detect the p95 breach, scale out "
                "fast enough to restore the SLO, and scale back in "
                "afterwards — spending fewer silo-seconds than fixed "
                "provisioning would.",
    workload=_default_workload(),
    arrivals=lambda rate: PhasedArrivals([
        (1.5, PoissonArrivals(rate)),
        (2.0, PoissonArrivals(rate * 2.4)),
        (4.5, PoissonArrivals(rate * 0.6)),
    ]),
    base_rate=250.0,
    duration=7.5,
    warmup=0.5,
    drain=2.5,
    max_in_flight=48,
    cluster_silos=2,
    cluster_cores=1,
    autoscaler=lambda: AutoscalerConfig(
        slo=SLOTarget(queue_delay_p95=0.050, error_rate=0.05),
        interval=0.25, window=1.0,
        min_silos=2, max_silos=4,
        breach_ticks=2, clear_ticks=4,
        cooldown_up=0.75, cooldown_down=1.25,
        rate_per_silo=250.0),
))


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; "
                       f"known: {known}") from None
