"""Benchmark core: workload definition, drivers and criteria.

This package is the paper's primary contribution: the Online Marketplace
workload (data generation, key distributions, transaction mix), the
benchmark drivers (closed-loop and open-loop/rate-controlled), the
named scenario suite and the data management criteria auditors.
"""

from repro.core.criteria import CriteriaReport, audit_app
from repro.core.driver.arrivals import (
    ArrivalProcess,
    ConstantRate,
    PhasedArrivals,
    PoissonArrivals,
    RampArrivals,
    SinusoidArrivals,
)
from repro.core.driver.driver import BenchmarkDriver, DriverConfig
from repro.core.driver.issuer import TransactionIssuer
from repro.core.driver.metrics import (
    LatencyRecorder,
    RunMetrics,
    StreamingHistogram,
)
from repro.core.matrix import (
    CellResult,
    MatrixCell,
    MatrixProgress,
    MatrixResult,
    MatrixSpec,
    run_cell,
    run_matrix,
)
from repro.core.driver.open_loop import (
    HotspotSpec,
    OpenLoopConfig,
    OpenLoopDriver,
)
from repro.core.scenarios import SCENARIOS, Scenario, get_scenario
from repro.core.workload.config import TransactionMix, WorkloadConfig
from repro.core.workload.dataset import Dataset
from repro.core.workload.generator import generate_dataset

__all__ = [
    "ArrivalProcess",
    "BenchmarkDriver",
    "CellResult",
    "ConstantRate",
    "CriteriaReport",
    "Dataset",
    "DriverConfig",
    "HotspotSpec",
    "LatencyRecorder",
    "MatrixCell",
    "MatrixProgress",
    "MatrixResult",
    "MatrixSpec",
    "OpenLoopConfig",
    "OpenLoopDriver",
    "PhasedArrivals",
    "PoissonArrivals",
    "RampArrivals",
    "RunMetrics",
    "SCENARIOS",
    "Scenario",
    "SinusoidArrivals",
    "StreamingHistogram",
    "TransactionIssuer",
    "TransactionMix",
    "WorkloadConfig",
    "audit_app",
    "generate_dataset",
    "get_scenario",
    "run_cell",
    "run_matrix",
]
