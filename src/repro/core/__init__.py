"""Benchmark core: workload definition, driver and criteria.

This package is the paper's primary contribution: the Online Marketplace
workload (data generation, key distributions, transaction mix), the
benchmark driver (ingestion, warm-up, submission, statistics, cleanup)
and the data management criteria auditors.
"""

from repro.core.workload.config import TransactionMix, WorkloadConfig
from repro.core.workload.dataset import Dataset
from repro.core.workload.generator import generate_dataset
from repro.core.driver.driver import BenchmarkDriver, DriverConfig
from repro.core.driver.metrics import LatencyRecorder, RunMetrics
from repro.core.criteria import CriteriaReport, audit_app

__all__ = [
    "BenchmarkDriver",
    "CriteriaReport",
    "Dataset",
    "DriverConfig",
    "LatencyRecorder",
    "RunMetrics",
    "TransactionMix",
    "WorkloadConfig",
    "audit_app",
    "generate_dataset",
]
