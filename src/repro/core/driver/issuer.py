"""Shared transaction-issuing logic for both driver styles.

The five business transactions — cart build-up + checkout, price
update, product delete, update delivery, seller dashboard — used to
live as ``_do_*`` methods on the closed-loop driver.  They are factored
out here so the closed-loop :class:`~repro.core.driver.driver.
BenchmarkDriver` and the open-loop :class:`~repro.core.driver.
open_loop.OpenLoopDriver` issue transactions through one code path:
same input leasing, same delete compensation, same online consistency
observations (C2/C4), same skip accounting.
"""

from __future__ import annotations

import itertools
import typing

from repro.core.workload.config import WorkloadConfig
from repro.core.workload.dataset import Dataset
from repro.core.workload.distributions import (
    HotspotSampler,
    ProductKeyRegistry,
    ZipfSampler,
)
from repro.core.workload.inputs import InputCoordinator
from repro.marketplace.constants import PaymentMethod

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.base import MarketplaceApp
    from repro.core.driver.metrics import LatencyRecorder
    from repro.runtime import Environment

#: The operations a driver may ask the issuer to perform.
OPERATIONS = ("checkout", "price_update", "product_delete",
              "update_delivery", "dashboard")

#: Transaction-mix name -> the operation name the app reports results
#: under (and therefore the key the recorder's histograms use).  The
#: open-loop driver records queueing delay with these keys so queue
#: wait and service latency land on the same rows.
RESULT_OPERATION = {
    "checkout": "checkout",
    "price_update": "update_price",
    "product_delete": "delete_product",
    "update_delivery": "update_delivery",
    "dashboard": "dashboard",
}


class IssuerStateView:
    """Mixin exposing a driver's issuer state under the attribute names
    the criteria auditors and tests historically used on the driver."""

    issuer: "TransactionIssuer"

    @property
    def registry(self):
        return self.issuer.registry

    @property
    def coordinator(self):
        return self.issuer.coordinator

    @property
    def sampler(self):
        return self.issuer.sampler

    @property
    def skipped(self) -> dict[str, int]:
        return self.issuer.skipped

    @property
    def observations(self) -> dict[str, int]:
        return self.issuer.observations

    @property
    def acked_versions(self) -> dict[str, int]:
        return self.issuer.acked_versions

    @property
    def acked_deletes(self) -> set[str]:
        return self.issuer.acked_deletes


class TransactionIssuer:
    """Issues business transactions against one app.

    Owns the workload state shared by all driver styles: the product
    key registry (stable Zipf ranks with delete compensation), the
    input coordinator (exclusive customer/product leases), the
    transaction-mix sampler and the consistency observations the
    criteria auditors consume.
    """

    def __init__(self, env: "Environment", app: "MarketplaceApp",
                 workload: WorkloadConfig, dataset: Dataset,
                 recorder: "LatencyRecorder") -> None:
        self.env = env
        self.app = app
        self.workload = workload
        self.dataset = dataset
        self.recorder = recorder
        initial = [(product.seller_id, product.product_id)
                   for product in dataset.products]
        reserve = [(product.seller_id, product.product_id)
                   for product in dataset.reserve_products]
        self.registry = ProductKeyRegistry(initial, reserve)
        self.sampler = HotspotSampler(
            ZipfSampler(len(self.registry), workload.zipf_s,
                        env.rng("driver-keys")),
            env.rng("driver-hotspot"))
        self.coordinator = InputCoordinator(
            dataset.customer_ids, self.registry, self.sampler,
            env.rng("driver-inputs"))
        self._mix = workload.mix.normalised()
        self._rng = env.rng("driver-mix")
        self._order_ids = itertools.count(1)
        #: Samples taken at or before this simulated time are recorded.
        self.record_until = float("inf")
        self.skipped = {"empty_cart": 0, "no_lease": 0, "no_reserve": 0}
        # Online consistency observations consumed by the criteria
        # auditors: acknowledged product versions vs. versions actually
        # read into carts, and dashboard query-pair consistency.
        self.acked_versions: dict[str, int] = {}
        self.acked_deletes: set[str] = set()
        self.observations = {"adds_checked": 0, "stale_adds": 0,
                             "dashboards_checked": 0,
                             "dashboard_mismatches": 0}

    # ------------------------------------------------------------------
    # operation selection & dispatch
    # ------------------------------------------------------------------
    def choose_operation(self) -> str:
        point = self._rng.random()
        cumulative = 0.0
        for operation, weight in self._mix.items():
            cumulative += weight
            if point < cumulative:
                return operation
        return "checkout"

    def issue(self, operation: str, record: bool = True):
        """Run one business transaction (a process helper).

        ``record=False`` suppresses metric samples for this one
        transaction (the open-loop driver gates by *arrival* time, a
        decision only the caller can make).  Returns True when the
        transaction's headline app call — the one whose result is
        recorded under ``RESULT_OPERATION[operation]`` — was made,
        False when it was skipped (input lease miss, reserve pool dry,
        empty cart): skipped transactions must not contribute
        queue-delay/response samples, or those histograms would
        disagree with the operation's outcome counts.
        """
        handler = getattr(self, f"do_{operation}")
        return (yield from handler(record))

    def _record(self, result, started: float, record: bool) -> None:
        if record and self.env.now <= self.record_until:
            self.recorder.record(result.operation, result.status,
                                 self.env.now - started,
                                 at=self.env.now)

    # ------------------------------------------------------------------
    # the five business transactions
    # ------------------------------------------------------------------
    def do_checkout(self, record: bool = True):
        """A series of cart operations followed by the checkout call."""
        customer_id = self.coordinator.lease_customer()
        if customer_id is None:
            self.skipped["no_lease"] += 1
            yield self.env.timeout(0.001)
            return False
        try:
            n_items = self._rng.randint(self.workload.min_cart_items,
                                        self.workload.max_cart_items)
            added = 0
            for _ in range(n_items):
                seller_id, product_id = self.coordinator.sample_product()
                quantity = self._rng.randint(self.workload.min_quantity,
                                             self.workload.max_quantity)
                voucher = 0
                if self._rng.random() < self.workload.voucher_probability:
                    voucher = self._rng.randint(
                        1, self.workload.min_price_cents)
                key = f"{seller_id}/{product_id}"
                # Snapshot the acknowledged state *before* the add: only
                # updates acked before the read started can be required
                # of it (causal/read-your-writes semantics).
                acked_version = self.acked_versions.get(key)
                acked_delete = key in self.acked_deletes
                started = self.env.now
                result = yield from self.app.add_item(
                    customer_id, seller_id, product_id, quantity, voucher)
                self._record(result, started, record)
                if result.ok:
                    added += 1
                    self._observe_add(result, acked_version, acked_delete)
            if added == 0:
                # The add attempts were recorded under add_item, but
                # no checkout call happened — the checkout row must
                # get no queue/response sample for this transaction.
                self.skipped["empty_cart"] += 1
                return False
            order_id = f"o{customer_id}-{next(self._order_ids)}"
            method = self._rng.choice(PaymentMethod.ALL)
            started = self.env.now
            result = yield from self.app.checkout(customer_id, order_id,
                                                  method)
            self._record(result, started, record)
            return True
        finally:
            self.coordinator.release_customer(customer_id)

    def do_price_update(self, record: bool = True):
        lease = self.coordinator.lease_product()
        if lease is None:
            self.skipped["no_lease"] += 1
            yield self.env.timeout(0.001)
            return False
        _, (seller_id, product_id) = lease
        try:
            price = self._rng.randint(self.workload.min_price_cents,
                                      self.workload.max_price_cents)
            started = self.env.now
            result = yield from self.app.update_price(seller_id,
                                                      product_id, price)
            self._record(result, started, record)
            if result.ok:
                key = f"{seller_id}/{product_id}"
                self.acked_versions[key] = result.payload["version"]
            return True
        finally:
            self.coordinator.release_product((seller_id, product_id))

    def do_product_delete(self, record: bool = True):
        lease = self.coordinator.lease_product()
        if lease is None:
            self.skipped["no_lease"] += 1
            yield self.env.timeout(0.001)
            return False
        rank, (seller_id, product_id) = lease
        try:
            # Rebind the rank to a replacement *before* the app call:
            # claiming the reserve first closes the race where two
            # workers both pass a reserve check, both delete, and the
            # loser leaves a dead product in the sampling population.
            compensation = self.registry.delete_at(rank)
            if compensation is None:
                self.skipped["no_reserve"] += 1
                return False
            started = self.env.now
            result = yield from self.app.delete_product(seller_id,
                                                        product_id)
            self._record(result, started, record)
            if result.ok:
                key = f"{seller_id}/{product_id}"
                self.acked_versions[key] = result.payload["version"]
                self.acked_deletes.add(key)
            return True
        finally:
            self.coordinator.release_product((seller_id, product_id))

    def do_update_delivery(self, record: bool = True):
        started = self.env.now
        result = yield from self.app.update_delivery()
        self._record(result, started, record)
        return True

    def do_dashboard(self, record: bool = True):
        seller_id = self._rng.choice(self.dataset.seller_ids)
        started = self.env.now
        result = yield from self.app.dashboard(seller_id)
        self._record(result, started, record)
        if result.ok:
            self.observations["dashboards_checked"] += 1
            if (result.payload["amount_cents"]
                    != result.payload["entries_total_cents"]):
                self.observations["dashboard_mismatches"] += 1
        return True

    def _observe_add(self, result, acked_version: int | None,
                     acked_delete: bool) -> None:
        """Check the replicated price against acknowledged updates.

        A successful add whose price version is older than the last
        update *acknowledged before the add started* — or any
        successful add of a product whose deletion was acknowledged
        before the add started — violates the causal (read-your-writes)
        replication criterion.
        """
        self.observations["adds_checked"] += 1
        stale = (acked_version is not None
                 and result.payload["price_version"] < acked_version)
        if stale or acked_delete:
            self.observations["stale_adds"] += 1
