"""Shared transaction-issuing logic for both driver styles.

The five business transactions — cart build-up + checkout, price
update, product delete, update delivery, seller dashboard — used to
live as ``_do_*`` methods on the closed-loop driver.  They are factored
out here so the closed-loop :class:`~repro.core.driver.driver.
BenchmarkDriver` and the open-loop :class:`~repro.core.driver.
open_loop.OpenLoopDriver` issue transactions through one code path:
same input leasing, same delete compensation, same online consistency
observations (C2/C4), same skip accounting.
"""

from __future__ import annotations

import collections
import itertools
import typing

from repro.core.workload.config import WorkloadConfig
from repro.core.workload.dataset import Dataset
from repro.core.workload.distributions import (
    HotspotSampler,
    make_rank_sampler,
)
from repro.core.workload.inputs import InputCoordinator
from repro.marketplace.constants import PaymentMethod

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.base import MarketplaceApp
    from repro.core.driver.metrics import LatencyRecorder
    from repro.runtime import Environment

#: The operations a driver may ask the issuer to perform.  New
#: operations are appended (mix iteration order feeds the one-draw
#: operation sampler, so insertion order is part of RNG determinism).
OPERATIONS = ("checkout", "price_update", "product_delete",
              "update_delivery", "dashboard", "submit_external",
              "request_return")

#: Transaction-mix name -> the operation name the app reports results
#: under (and therefore the key the recorder's histograms use).  The
#: open-loop driver records queueing delay with these keys so queue
#: wait and service latency land on the same rows.
RESULT_OPERATION = {
    "checkout": "checkout",
    "price_update": "update_price",
    "product_delete": "delete_product",
    "update_delivery": "update_delivery",
    "dashboard": "dashboard",
    "submit_external": "submit_external",
    "request_return": "request_return",
}


class IssuerStateView:
    """Mixin exposing a driver's issuer state under the attribute names
    the criteria auditors and tests historically used on the driver."""

    issuer: "TransactionIssuer"

    @property
    def registry(self):
        return self.issuer.registry

    @property
    def coordinator(self):
        return self.issuer.coordinator

    @property
    def sampler(self):
        return self.issuer.sampler

    @property
    def skipped(self) -> dict[str, int]:
        return self.issuer.skipped

    @property
    def observations(self) -> dict[str, int]:
        return self.issuer.observations

    @property
    def acked_versions(self) -> dict[str, int]:
        return self.issuer.acked_versions

    @property
    def acked_deletes(self) -> set[str]:
        return self.issuer.acked_deletes


class TransactionIssuer:
    """Issues business transactions against one app.

    Owns the workload state shared by all driver styles: the product
    key registry (stable Zipf ranks with delete compensation), the
    input coordinator (exclusive customer/product leases), the
    transaction-mix sampler and the consistency observations the
    criteria auditors consume.
    """

    def __init__(self, env: "Environment", app: "MarketplaceApp",
                 workload: WorkloadConfig, dataset: Dataset,
                 recorder: "LatencyRecorder") -> None:
        self.env = env
        self.app = app
        self.workload = workload
        self.dataset = dataset
        self.recorder = recorder
        # The dataset knows its own registry shape: eager datasets build
        # the materialised rank list, lazy ones a virtual registry over
        # the arithmetic keyspace.  Small keyspaces keep the exact CDF
        # sampler (bit-stable legacy draws); huge ones get O(1) memory.
        self.registry = dataset.make_registry()
        self.sampler = HotspotSampler(
            make_rank_sampler(len(self.registry), workload.zipf_s,
                              env.rng("driver-keys")),
            env.rng("driver-hotspot"))
        self.coordinator = InputCoordinator(
            dataset.customer_ids, self.registry, self.sampler,
            env.rng("driver-inputs"))
        self._mix = workload.mix.normalised()
        self._rng = env.rng("driver-mix")
        self._order_ids = itertools.count(1)
        self._ext_order_ids = itertools.count(1)
        #: Checked-out orders eligible for a return request (oldest
        #: first — they have had the longest time to complete).
        self.return_pool: collections.deque[tuple[int, str]] = \
            collections.deque()
        #: Samples taken at or before this simulated time are recorded.
        self.record_until = float("inf")
        #: Optional control-plane signal feed (a ``SignalWindow``); the
        #: open-loop driver installs one so the autoscaler can see
        #: completion outcomes ungated by the measurement window.
        self.tap = None
        self.skipped = {"empty_cart": 0, "no_lease": 0, "no_reserve": 0,
                        "no_order": 0}
        # Online consistency observations consumed by the criteria
        # auditors: acknowledged product versions vs. versions actually
        # read into carts, and dashboard query-pair consistency.
        self.acked_versions: dict[str, int] = {}
        self.acked_deletes: set[str] = set()
        self.observations = {"adds_checked": 0, "stale_adds": 0,
                             "dashboards_checked": 0,
                             "dashboard_mismatches": 0,
                             "ext_submits": 0, "ext_duplicate_submits": 0,
                             "ext_idempotent_hits": 0,
                             "returns_requested": 0,
                             "returns_completed": 0}

    # ------------------------------------------------------------------
    # operation selection & dispatch
    # ------------------------------------------------------------------
    def choose_operation(self) -> str:
        point = self._rng.random()
        cumulative = 0.0
        for operation, weight in self._mix.items():
            cumulative += weight
            if point < cumulative:
                return operation
        return "checkout"

    def issue(self, operation: str, record: bool = True):
        """Run one business transaction (a process helper).

        ``record=False`` suppresses metric samples for this one
        transaction (the open-loop driver gates by *arrival* time, a
        decision only the caller can make).  Returns True when the
        transaction's headline app call — the one whose result is
        recorded under ``RESULT_OPERATION[operation]`` — was made,
        False when it was skipped (input lease miss, reserve pool dry,
        empty cart): skipped transactions must not contribute
        queue-delay/response samples, or those histograms would
        disagree with the operation's outcome counts.
        """
        handler = getattr(self, f"do_{operation}")
        return (yield from handler(record))

    def _record(self, result, started: float, record: bool) -> None:
        if self.tap is not None:
            # Control signals are ungated: the controller must see
            # load during warm-up and drain, which the metrics window
            # deliberately excludes.  Pure bookkeeping, no RNG.
            self.tap.observe_outcome(self.env.now, result.status)
        if record and self.env.now <= self.record_until:
            self.recorder.record(result.operation, result.status,
                                 self.env.now - started,
                                 at=self.env.now)

    # ------------------------------------------------------------------
    # the five business transactions
    # ------------------------------------------------------------------
    def do_checkout(self, record: bool = True):
        """A series of cart operations followed by the checkout call."""
        customer_id = self.coordinator.lease_customer()
        if customer_id is None:
            self.skipped["no_lease"] += 1
            yield self.env.timeout(0.001)
            return False
        self.app.touch_customer(customer_id)
        try:
            n_items = self._rng.randint(self.workload.min_cart_items,
                                        self.workload.max_cart_items)
            added = 0
            for _ in range(n_items):
                seller_id, product_id = self.coordinator.sample_product()
                self.app.touch_product(seller_id, product_id)
                quantity = self._rng.randint(self.workload.min_quantity,
                                             self.workload.max_quantity)
                voucher = 0
                if self._rng.random() < self.workload.voucher_probability:
                    voucher = self._rng.randint(
                        1, self.workload.min_price_cents)
                key = f"{seller_id}/{product_id}"
                # Snapshot the acknowledged state *before* the add: only
                # updates acked before the read started can be required
                # of it (causal/read-your-writes semantics).
                acked_version = self.acked_versions.get(key)
                acked_delete = key in self.acked_deletes
                started = self.env.now
                result = yield from self.app.add_item(
                    customer_id, seller_id, product_id, quantity, voucher)
                self._record(result, started, record)
                if result.ok:
                    added += 1
                    self._observe_add(result, acked_version, acked_delete)
            if added == 0:
                # The add attempts were recorded under add_item, but
                # no checkout call happened — the checkout row must
                # get no queue/response sample for this transaction.
                self.skipped["empty_cart"] += 1
                return False
            order_id = f"o{customer_id}-{next(self._order_ids)}"
            method = self._rng.choice(PaymentMethod.ALL)
            started = self.env.now
            result = yield from self.app.checkout(customer_id, order_id,
                                                  method)
            self._record(result, started, record)
            if result.ok:
                self.return_pool.append((customer_id, order_id))
            return True
        finally:
            self.coordinator.release_customer(customer_id)

    def do_price_update(self, record: bool = True):
        lease = self.coordinator.lease_product()
        if lease is None:
            self.skipped["no_lease"] += 1
            yield self.env.timeout(0.001)
            return False
        _, (seller_id, product_id) = lease
        self.app.touch_product(seller_id, product_id)
        try:
            price = self._rng.randint(self.workload.min_price_cents,
                                      self.workload.max_price_cents)
            started = self.env.now
            result = yield from self.app.update_price(seller_id,
                                                      product_id, price)
            self._record(result, started, record)
            if result.ok:
                key = f"{seller_id}/{product_id}"
                self.acked_versions[key] = result.payload["version"]
            return True
        finally:
            self.coordinator.release_product((seller_id, product_id))

    def do_product_delete(self, record: bool = True):
        lease = self.coordinator.lease_product()
        if lease is None:
            self.skipped["no_lease"] += 1
            yield self.env.timeout(0.001)
            return False
        rank, (seller_id, product_id) = lease
        self.app.touch_product(seller_id, product_id)
        try:
            # Rebind the rank to a replacement *before* the app call:
            # claiming the reserve first closes the race where two
            # workers both pass a reserve check, both delete, and the
            # loser leaves a dead product in the sampling population.
            compensation = self.registry.delete_at(rank)
            if compensation is None:
                self.skipped["no_reserve"] += 1
                return False
            started = self.env.now
            result = yield from self.app.delete_product(seller_id,
                                                        product_id)
            self._record(result, started, record)
            if result.ok:
                key = f"{seller_id}/{product_id}"
                self.acked_versions[key] = result.payload["version"]
                self.acked_deletes.add(key)
            return True
        finally:
            self.coordinator.release_product((seller_id, product_id))

    def do_update_delivery(self, record: bool = True):
        started = self.env.now
        result = yield from self.app.update_delivery()
        self._record(result, started, record)
        return True

    def do_dashboard(self, record: bool = True):
        seller_id = self._rng.choice(self.dataset.seller_ids)
        self.app.touch_seller(seller_id)
        started = self.env.now
        result = yield from self.app.dashboard(seller_id)
        self._record(result, started, record)
        if result.ok:
            self.observations["dashboards_checked"] += 1
            if (result.payload["amount_cents"]
                    != result.payload["entries_total_cents"]):
                self.observations["dashboard_mismatches"] += 1
        return True

    def do_submit_external(self, record: bool = True):
        """Ingest one external-platform order; sometimes submit the
        same ``(platform, shop, ext_order_no)`` twice concurrently to
        probe the idempotent front door."""
        platform = f"p{self._rng.randint(1, self.workload.external_platforms)}"
        shop_id = self._rng.randint(1, self.workload.external_shops)
        ext_order_no = f"E{next(self._ext_order_ids):06d}"
        customer_id = self._rng.choice(self.dataset.customer_ids)
        self.app.touch_customer(customer_id)
        n_items = self._rng.randint(1, 2)
        items = []
        seen: set[tuple[int, int]] = set()
        for _ in range(n_items):
            seller_id, product_id = self.coordinator.sample_product()
            self.app.touch_product(seller_id, product_id)
            if (seller_id, product_id) in seen:
                continue
            seen.add((seller_id, product_id))
            items.append({
                "seller_id": seller_id, "product_id": product_id,
                "quantity": self._rng.randint(self.workload.min_quantity,
                                              self.workload.max_quantity),
                "unit_price_cents": self._rng.randint(
                    self.workload.min_price_cents,
                    self.workload.max_price_cents)})
        duplicate = (self._rng.random()
                     < self.workload.duplicate_submit_probability)
        started = self.env.now
        self.observations["ext_submits"] += 1
        if duplicate:
            # Two racing submits of the same key — exactly one may
            # create the order; the other must resolve to it.
            self.observations["ext_duplicate_submits"] += 1
            first = self.env.process(self.app.submit_external(
                platform, shop_id, ext_order_no, customer_id, items))
            second = self.env.process(self.app.submit_external(
                platform, shop_id, ext_order_no, customer_id, items))
            yield self.env.all_of([first, second])
            results = [first.value, second.value]
            result = results[0]
        else:
            result = yield from self.app.submit_external(
                platform, shop_id, ext_order_no, customer_id, items)
            results = [result]
        self._record(result, started, record)
        for outcome in results:
            if outcome.ok and outcome.payload.get("idempotent"):
                self.observations["ext_idempotent_hits"] += 1
        return True

    def do_request_return(self, record: bool = True):
        """Request a return for the oldest checked-out order."""
        if not self.return_pool:
            self.skipped["no_order"] += 1
            yield self.env.timeout(0.001)
            return False
        customer_id, order_id = self.return_pool.popleft()
        started = self.env.now
        self.observations["returns_requested"] += 1
        result = yield from self.app.request_return(customer_id, order_id)
        self._record(result, started, record)
        if result.ok:
            self.observations["returns_completed"] += 1
        elif result.status == "rejected" \
                and result.payload.get("reason") == "not_completed":
            # Not delivered yet: recycle it for a later attempt.
            self.return_pool.append((customer_id, order_id))
        return True

    def _observe_add(self, result, acked_version: int | None,
                     acked_delete: bool) -> None:
        """Check the replicated price against acknowledged updates.

        A successful add whose price version is older than the last
        update *acknowledged before the add started* — or any
        successful add of a product whose deletion was acknowledged
        before the add started — violates the causal (read-your-writes)
        replication criterion.
        """
        self.observations["adds_checked"] += 1
        stale = (acked_version is not None
                 and result.payload["price_version"] < acked_version)
        if stale or acked_delete:
            self.observations["stale_adds"] += 1
