"""The benchmark driver: experiment lifecycle and statistics."""

from repro.core.driver.driver import BenchmarkDriver, DriverConfig
from repro.core.driver.metrics import LatencyRecorder, OpStats, RunMetrics

__all__ = [
    "BenchmarkDriver",
    "DriverConfig",
    "LatencyRecorder",
    "OpStats",
    "RunMetrics",
]
