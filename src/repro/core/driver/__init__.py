"""The benchmark drivers: experiment lifecycle and statistics."""

from repro.core.driver.arrivals import (
    ArrivalProcess,
    ConstantRate,
    PhasedArrivals,
    PoissonArrivals,
    RampArrivals,
)
from repro.core.driver.driver import BenchmarkDriver, DriverConfig
from repro.core.driver.issuer import TransactionIssuer
from repro.core.driver.metrics import (
    LatencyRecorder,
    OpStats,
    RunMetrics,
    StreamingHistogram,
)
from repro.core.driver.open_loop import (
    HotspotSpec,
    OpenLoopConfig,
    OpenLoopDriver,
)

__all__ = [
    "ArrivalProcess",
    "BenchmarkDriver",
    "ConstantRate",
    "DriverConfig",
    "HotspotSpec",
    "LatencyRecorder",
    "OpStats",
    "OpenLoopConfig",
    "OpenLoopDriver",
    "PhasedArrivals",
    "PoissonArrivals",
    "RampArrivals",
    "RunMetrics",
    "StreamingHistogram",
    "TransactionIssuer",
]
