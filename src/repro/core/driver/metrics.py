"""Latency/throughput collection for benchmark runs.

Latencies are accumulated in :class:`StreamingHistogram` instances —
fixed-bucket, log-scale, O(1) memory per operation — instead of raw
Python lists, so the recorder never becomes the bottleneck of a long
or high-rate (open-loop) run.  Count, mean, min and max are exact;
percentiles are approximate within one bucket's relative width (the
default geometric growth of 4% bounds the error at about ±2%).

For tests that assert exact interpolated percentiles the recorder can
be constructed with ``raw_samples=True``, which additionally keeps the
raw sample lists and computes percentiles from them.
"""

from __future__ import annotations

import dataclasses
import math

from repro.analysis.stats import describe


class StreamingHistogram:
    """Fixed-bucket log-scale histogram of non-negative samples.

    Bucket ``i`` covers ``[min_value * growth**i, min_value *
    growth**(i+1))``; values below ``min_value`` land in bucket 0 and
    values beyond the last bucket clamp into it.  Percentile estimates
    return the geometric midpoint of the selected bucket, clamped to
    the exact observed ``[min, max]`` range, so single-valued samples
    report exactly that value.
    """

    def __init__(self, min_value: float = 1e-6, growth: float = 1.04,
                 buckets: int = 600) -> None:
        if min_value <= 0:
            raise ValueError("min_value must be > 0")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts = [0] * buckets
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def __len__(self) -> int:
        return self.count

    def _index(self, value: float) -> int:
        if value < self.min_value:
            return 0
        index = int(math.log(value / self.min_value) / self._log_growth)
        return min(index, len(self._counts) - 1)

    def add(self, value: float) -> None:
        """Record one sample (negative values are clamped to zero)."""
        value = max(0.0, value)
        self._counts[self._index(value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` (same bucket geometry) into this histogram."""
        if (other.min_value != self.min_value
                or other.growth != self.growth
                or len(other._counts) != len(self._counts)):
            raise ValueError("histogram geometries differ")
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _bucket_value(self, index: int) -> float:
        lower = self.min_value * self.growth ** index
        return lower * math.sqrt(self.growth)  # geometric midpoint

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (0..100)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = math.ceil(q / 100 * self.count)
        target = max(1, min(target, self.count))
        cumulative = 0
        for index, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= target:
                return min(max(self._bucket_value(index), self.min),
                           self.max)
        return self.max  # pragma: no cover - cumulative covers count

    def describe(self) -> dict[str, float]:
        """count/mean/p50/p95/p99/min/max, shaped like ``stats.describe``."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": self.min,
            "max": self.max,
        }


class LatencyRecorder:
    """Collects per-operation latencies and outcomes inside the
    measurement window (warm-up samples are discarded).

    Besides service latency the recorder keeps two optional channels
    used by the open-loop driver: per-operation *queueing delay* (time
    an arrival waited for a dispatch slot) and *response time* (queue
    wait + service time, i.e. what a client would experience).  It also
    accumulates a per-second timeline of successful completions so the
    analysis layer can show saturation knees.
    """

    def __init__(self, raw_samples: bool = False) -> None:
        self.raw_samples = raw_samples
        self.histograms: dict[str, StreamingHistogram] = {}
        self.queue_delays: dict[str, StreamingHistogram] = {}
        self.responses: dict[str, StreamingHistogram] = {}
        self.latencies: dict[str, list[float]] = {}
        self.outcomes: dict[str, dict[str, int]] = {}
        #: Timeline buckets are whole seconds *since this origin* (the
        #: driver sets it to the measurement start so edge buckets are
        #: not partial seconds): second -> successful completions.
        self.timeline_origin = 0.0
        self.timeline: dict[int, int] = {}
        #: second -> failed/aborted completions; together with
        #: ``timeline`` this is the per-second availability series the
        #: fault scenarios report on.
        self.error_timeline: dict[int, int] = {}
        self.enabled = False

    def _histogram(self, table: dict[str, StreamingHistogram],
                   operation: str) -> StreamingHistogram:
        histogram = table.get(operation)
        if histogram is None:
            histogram = table[operation] = StreamingHistogram()
        return histogram

    def record(self, operation: str, status: str, latency: float,
               at: float | None = None) -> None:
        if not self.enabled:
            return
        self._histogram(self.histograms, operation).add(latency)
        if self.raw_samples:
            self.latencies.setdefault(operation, []).append(latency)
        per_status = self.outcomes.setdefault(operation, {})
        per_status[status] = per_status.get(status, 0) + 1
        if at is not None:
            second = int(at - self.timeline_origin)
            if status == "ok":
                self.timeline[second] = self.timeline.get(second, 0) + 1
            elif status in ("failed", "aborted"):
                self.error_timeline[second] = \
                    self.error_timeline.get(second, 0) + 1

    def record_queue_delay(self, operation: str, delay: float) -> None:
        if not self.enabled:
            return
        self._histogram(self.queue_delays, operation).add(delay)

    def record_response(self, operation: str, latency: float) -> None:
        if not self.enabled:
            return
        self._histogram(self.responses, operation).add(latency)

    def count(self, operation: str, status: str | None = None) -> int:
        per_status = self.outcomes.get(operation, {})
        if status is None:
            return sum(per_status.values())
        return per_status.get(status, 0)

    def total(self, status: str | None = None) -> int:
        return sum(self.count(operation, status)
                   for operation in self.outcomes)

    def operations(self) -> list[str]:
        return sorted(self.outcomes)

    def describe_latency(self, operation: str) -> dict[str, float]:
        """Latency summary; exact when raw samples are kept."""
        if self.raw_samples:
            return describe(self.latencies.get(operation, []))
        histogram = self.histograms.get(operation)
        if histogram is None:
            return StreamingHistogram().describe()
        return histogram.describe()


@dataclasses.dataclass
class OpStats:
    """Summary statistics for one operation type."""

    operation: str
    count: int
    ok: int
    rejected: int
    failed: int
    throughput: float
    latency: dict[str, float]
    #: Open-loop only: time arrivals waited for a dispatch slot.
    queue_delay: dict[str, float] | None = None
    #: Open-loop only: queue wait + service time.
    response: dict[str, float] | None = None

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def queue_columns(self) -> dict[str, float]:
        """Rounded queue-delay table cells (0.0 when none recorded)."""
        queue = self.queue_delay or {}
        return {"queue_p50_ms": round(queue.get("p50", 0.0) * 1000, 3),
                "queue_p99_ms": round(queue.get("p99", 0.0) * 1000, 3)}


@dataclasses.dataclass
class RunMetrics:
    """The full result of one benchmark run."""

    app: str
    workers: int
    duration: float
    ops: dict[str, OpStats]
    runtime: dict = dataclasses.field(default_factory=dict)
    #: Per-second successful completions: sorted (second, count) pairs.
    timeline: list[tuple[int, int]] = dataclasses.field(
        default_factory=list)
    #: Per-second failed/aborted completions: sorted (second, count)
    #: pairs (the error-rate series of the availability report).
    error_timeline: list[tuple[int, int]] = dataclasses.field(
        default_factory=list)
    #: Open-loop counters (arrivals, shed, max in-flight, ...); empty
    #: for closed-loop runs.
    open_loop: dict = dataclasses.field(default_factory=dict)

    @property
    def total_throughput(self) -> float:
        """Successful business transactions per simulated second."""
        return sum(op.ok for op in self.ops.values()) / self.duration

    @property
    def goodput_checkout(self) -> float:
        checkout = self.ops.get("checkout")
        return checkout.ok / self.duration if checkout else 0.0

    @property
    def peak_rate(self) -> float:
        """Highest per-second completion count on the timeline."""
        return float(max((count for _, count in self.timeline),
                         default=0))

    def latency_of(self, operation: str, which: str = "p50") -> float:
        op = self.ops.get(operation)
        return op.latency.get(which, 0.0) if op else 0.0

    def queue_delay_of(self, operation: str,
                       which: str = "p50") -> float:
        op = self.ops.get(operation)
        if op is None or op.queue_delay is None:
            return 0.0
        return op.queue_delay.get(which, 0.0)

    @classmethod
    def from_recorder(cls, app: str, workers: int, duration: float,
                      recorder: LatencyRecorder,
                      runtime: dict | None = None,
                      open_loop: dict | None = None) -> "RunMetrics":
        ops = {}
        for operation in recorder.operations():
            queue = recorder.queue_delays.get(operation)
            response = recorder.responses.get(operation)
            ops[operation] = OpStats(
                operation=operation,
                count=recorder.count(operation),
                ok=recorder.count(operation, "ok"),
                rejected=recorder.count(operation, "rejected"),
                failed=(recorder.count(operation, "failed")
                        + recorder.count(operation, "aborted")),
                throughput=recorder.count(operation, "ok") / duration,
                latency=recorder.describe_latency(operation),
                queue_delay=queue.describe() if queue else None,
                response=response.describe() if response else None)
        return cls(app=app, workers=workers, duration=duration, ops=ops,
                   runtime=runtime or {},
                   timeline=sorted(recorder.timeline.items()),
                   error_timeline=sorted(recorder.error_timeline.items()),
                   open_loop=open_loop or {})

    @property
    def has_queue_delays(self) -> bool:
        return any(op.queue_delay is not None
                   for op in self.ops.values())

    def summary_rows(self) -> list[dict]:
        """Rows suitable for printing as a results table.

        When any operation carries queueing data the queue columns
        appear on *every* row (0.0 where absent), so column-inferring
        renderers that look only at the first row keep them.
        """
        with_queue = self.has_queue_delays
        rows = []
        for operation, op in sorted(self.ops.items()):
            row = {
                "app": self.app, "operation": operation,
                "ok": op.ok, "rejected": op.rejected,
                "failed": op.failed,
                "tps": round(op.throughput, 1),
                "p50_ms": round(op.latency["p50"] * 1000, 3),
                "p95_ms": round(op.latency["p95"] * 1000, 3),
                "p99_ms": round(op.latency["p99"] * 1000, 3),
            }
            if with_queue:
                row.update(op.queue_columns())
            rows.append(row)
        return rows
