"""Latency/throughput collection for benchmark runs."""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.stats import describe


class LatencyRecorder:
    """Collects per-operation latencies and outcomes inside the
    measurement window (warm-up samples are discarded)."""

    def __init__(self) -> None:
        self.latencies: dict[str, list[float]] = {}
        self.outcomes: dict[str, dict[str, int]] = {}
        self.enabled = False

    def record(self, operation: str, status: str, latency: float) -> None:
        if not self.enabled:
            return
        self.latencies.setdefault(operation, []).append(latency)
        per_status = self.outcomes.setdefault(operation, {})
        per_status[status] = per_status.get(status, 0) + 1

    def count(self, operation: str, status: str | None = None) -> int:
        per_status = self.outcomes.get(operation, {})
        if status is None:
            return sum(per_status.values())
        return per_status.get(status, 0)

    def total(self, status: str | None = None) -> int:
        return sum(self.count(operation, status)
                   for operation in self.outcomes)

    def operations(self) -> list[str]:
        return sorted(self.outcomes)


@dataclasses.dataclass
class OpStats:
    """Summary statistics for one operation type."""

    operation: str
    count: int
    ok: int
    rejected: int
    failed: int
    throughput: float
    latency: dict[str, float]

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class RunMetrics:
    """The full result of one benchmark run."""

    app: str
    workers: int
    duration: float
    ops: dict[str, OpStats]
    runtime: dict = dataclasses.field(default_factory=dict)

    @property
    def total_throughput(self) -> float:
        """Successful business transactions per simulated second."""
        return sum(op.ok for op in self.ops.values()) / self.duration

    @property
    def goodput_checkout(self) -> float:
        checkout = self.ops.get("checkout")
        return checkout.ok / self.duration if checkout else 0.0

    def latency_of(self, operation: str, which: str = "p50") -> float:
        op = self.ops.get(operation)
        return op.latency.get(which, 0.0) if op else 0.0

    @classmethod
    def from_recorder(cls, app: str, workers: int, duration: float,
                      recorder: LatencyRecorder,
                      runtime: dict | None = None) -> "RunMetrics":
        ops = {}
        for operation in recorder.operations():
            latencies = recorder.latencies.get(operation, [])
            ops[operation] = OpStats(
                operation=operation,
                count=recorder.count(operation),
                ok=recorder.count(operation, "ok"),
                rejected=recorder.count(operation, "rejected"),
                failed=(recorder.count(operation, "failed")
                        + recorder.count(operation, "aborted")),
                throughput=recorder.count(operation, "ok") / duration,
                latency=describe(latencies))
        return cls(app=app, workers=workers, duration=duration, ops=ops,
                   runtime=runtime or {})

    def summary_rows(self) -> list[dict]:
        """Rows suitable for printing as a results table."""
        rows = []
        for operation, op in sorted(self.ops.items()):
            rows.append({
                "app": self.app, "operation": operation,
                "ok": op.ok, "rejected": op.rejected,
                "failed": op.failed,
                "tps": round(op.throughput, 1),
                "p50_ms": round(op.latency["p50"] * 1000, 3),
                "p95_ms": round(op.latency["p95"] * 1000, 3),
                "p99_ms": round(op.latency["p99"] * 1000, 3),
            })
        return rows
