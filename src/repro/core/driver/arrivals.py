"""Arrival processes for open-loop (rate-controlled) load generation.

A closed-loop driver can only offer as much load as its workers can
sustain; overload, bursts and flash sales need an *open-loop* schedule
where transactions arrive at externally generated times regardless of
how fast the system answers.  An :class:`ArrivalProcess` turns a seeded
RNG into a monotone stream of absolute arrival timestamps; the
:class:`~repro.core.driver.open_loop.OpenLoopDriver` replays them on
the simulated clock.

All processes are deterministic for a given RNG state, so experiment
traces are reproducible end to end.
"""

from __future__ import annotations

import math
import random
import typing


class ArrivalProcess:
    """Generates absolute arrival times inside ``[start, until)``."""

    def mean_rate(self) -> float:
        """Average arrivals per second (informational)."""
        raise NotImplementedError

    def arrival_times(self, rng: random.Random, start: float,
                      until: float) -> typing.Iterator[float]:
        raise NotImplementedError

    def scaled(self, factor: float) -> "ArrivalProcess":
        """A copy of this process with all rates multiplied."""
        raise NotImplementedError

    def time_scaled(self, factor: float) -> "ArrivalProcess":
        """A copy with the time axis stretched by ``factor`` (phase and
        ramp durations multiply; rates are unchanged), so shrinking an
        experiment window keeps the workload's *shape*."""
        return self


class ConstantRate(ArrivalProcess):
    """Deterministic arrivals every ``1 / rate`` seconds."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = rate

    def mean_rate(self) -> float:
        return self.rate

    def arrival_times(self, rng: random.Random, start: float,
                      until: float) -> typing.Iterator[float]:
        # Multiplicative spacing: repeated addition of 1/rate drifts
        # (0.1 * 10 < 1.0 in floats) and leaks arrivals past `until`.
        gap = 1.0 / self.rate
        index = 1
        while True:
            at = start + index * gap
            if at >= until:
                return
            yield at
            index += 1

    def scaled(self, factor: float) -> "ConstantRate":
        return ConstantRate(self.rate * factor)


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival gaps."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = rate

    def mean_rate(self) -> float:
        return self.rate

    def arrival_times(self, rng: random.Random, start: float,
                      until: float) -> typing.Iterator[float]:
        at = start + rng.expovariate(self.rate)
        while at < until:
            yield at
            at += rng.expovariate(self.rate)

    def scaled(self, factor: float) -> "PoissonArrivals":
        return PoissonArrivals(self.rate * factor)


class PhasedArrivals(ArrivalProcess):
    """A sequence of (duration, sub-process) phases played back to back.

    This is how bursty shapes are composed: a flash sale is a normal
    phase, a high-rate phase, and a normal phase again; burst-then-
    quiesce is a high-rate phase followed by a trickle.  The final
    phase is repeated if the requested window outlasts the schedule.
    """

    def __init__(self, phases: typing.Sequence[
            tuple[float, ArrivalProcess]]) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        for duration, _ in phases:
            if duration <= 0:
                raise ValueError("phase durations must be > 0")
        self.phases = list(phases)

    def mean_rate(self) -> float:
        total = sum(duration for duration, _ in self.phases)
        weighted = sum(duration * process.mean_rate()
                       for duration, process in self.phases)
        return weighted / total

    def total_duration(self) -> float:
        return sum(duration for duration, _ in self.phases)

    def arrival_times(self, rng: random.Random, start: float,
                      until: float) -> typing.Iterator[float]:
        at = start
        index = 0
        while at < until:
            duration, process = self.phases[min(index,
                                                len(self.phases) - 1)]
            phase_end = min(at + duration, until)
            yield from process.arrival_times(rng, at, phase_end)
            at = phase_end
            index += 1

    def scaled(self, factor: float) -> "PhasedArrivals":
        return PhasedArrivals([(duration, process.scaled(factor))
                               for duration, process in self.phases])

    def time_scaled(self, factor: float) -> "PhasedArrivals":
        return PhasedArrivals([(duration * factor,
                                process.time_scaled(factor))
                               for duration, process in self.phases])


class RampArrivals(ArrivalProcess):
    """Arrival rate ramping linearly from ``start_rate`` to ``end_rate``.

    Gaps are drawn from the instantaneous rate (exponential when
    ``poisson``, deterministic otherwise), approximating a
    non-homogeneous process; past ``ramp_duration`` the end rate holds.
    Used by the overload-ramp scenario to locate the saturation knee.
    """

    def __init__(self, start_rate: float, end_rate: float,
                 ramp_duration: float, poisson: bool = True) -> None:
        if start_rate <= 0 or end_rate <= 0:
            raise ValueError("rates must be > 0")
        if ramp_duration <= 0:
            raise ValueError("ramp_duration must be > 0")
        self.start_rate = start_rate
        self.end_rate = end_rate
        self.ramp_duration = ramp_duration
        self.poisson = poisson

    def mean_rate(self) -> float:
        return (self.start_rate + self.end_rate) / 2

    def rate_at(self, elapsed: float) -> float:
        fraction = min(max(elapsed / self.ramp_duration, 0.0), 1.0)
        return (self.start_rate
                + (self.end_rate - self.start_rate) * fraction)

    def arrival_times(self, rng: random.Random, start: float,
                      until: float) -> typing.Iterator[float]:
        at = start
        while True:
            rate = self.rate_at(at - start)
            gap = rng.expovariate(rate) if self.poisson else 1.0 / rate
            at += gap
            if at >= until:
                return
            yield at

    def scaled(self, factor: float) -> "RampArrivals":
        return RampArrivals(self.start_rate * factor,
                            self.end_rate * factor,
                            self.ramp_duration, self.poisson)

    def time_scaled(self, factor: float) -> "RampArrivals":
        return RampArrivals(self.start_rate, self.end_rate,
                            self.ramp_duration * factor, self.poisson)


class SinusoidArrivals(ArrivalProcess):
    """Arrival rate oscillating sinusoidally around ``base_rate``.

    ``rate(t) = base_rate * (1 + amplitude * sin(2*pi*t / period))``,
    with gaps drawn from the instantaneous rate like
    :class:`RampArrivals`.  One period is a compressed day: traffic
    swells to ``(1+amplitude)`` times the base and ebbs to
    ``(1-amplitude)`` — the diurnal shape elasticity controllers are
    sized against.  ``phase`` (fraction of a period) shifts where in
    the cycle the run starts.
    """

    def __init__(self, base_rate: float, amplitude: float = 0.6,
                 period: float = 8.0, phase: float = 0.0,
                 poisson: bool = True) -> None:
        if base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        if not 0 < amplitude < 1:
            raise ValueError("amplitude must be in (0, 1) so the rate "
                             "stays positive")
        if period <= 0:
            raise ValueError("period must be > 0")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.phase = phase
        self.poisson = poisson

    def mean_rate(self) -> float:
        return self.base_rate

    def rate_at(self, elapsed: float) -> float:
        angle = 2 * math.pi * (elapsed / self.period + self.phase)
        return self.base_rate * (1 + self.amplitude * math.sin(angle))

    def arrival_times(self, rng: random.Random, start: float,
                      until: float) -> typing.Iterator[float]:
        at = start
        while True:
            rate = self.rate_at(at - start)
            gap = rng.expovariate(rate) if self.poisson else 1.0 / rate
            at += gap
            if at >= until:
                return
            yield at

    def scaled(self, factor: float) -> "SinusoidArrivals":
        return SinusoidArrivals(self.base_rate * factor, self.amplitude,
                                self.period, self.phase, self.poisson)

    def time_scaled(self, factor: float) -> "SinusoidArrivals":
        return SinusoidArrivals(self.base_rate, self.amplitude,
                                self.period * factor, self.phase,
                                self.poisson)
