"""The benchmark driver: data generation, ingestion, warm-up,
closed-loop workload submission, statistics collection and cleanup.

The driver mirrors the lifecycle the paper describes for its .NET
driver.  Workers are closed-loop: each submits one business transaction,
waits for the result, records it, then picks the next transaction by
the configured mix.  Transaction inputs are leased through the
:class:`InputCoordinator` so concurrent workers never race on the same
cart or the same product's seller operations.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.core.driver.metrics import LatencyRecorder, RunMetrics
from repro.core.workload.config import WorkloadConfig
from repro.core.workload.dataset import Dataset
from repro.core.workload.distributions import (
    ProductKeyRegistry,
    ZipfSampler,
)
from repro.core.workload.generator import generate_dataset
from repro.core.workload.inputs import InputCoordinator
from repro.marketplace.constants import PaymentMethod

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.base import MarketplaceApp
    from repro.runtime import Environment


@dataclasses.dataclass
class DriverConfig:
    """Experiment-control parameters."""

    workers: int = 32
    #: Simulated seconds of warm-up (not measured).
    warmup: float = 1.0
    #: Simulated seconds of the measured window.
    duration: float = 5.0
    #: Extra simulated seconds to let asynchronous effects quiesce
    #: before auditing.
    drain: float = 2.0
    #: Think time between a worker's transactions.
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.warmup < 0 or self.duration <= 0 or self.drain < 0:
            raise ValueError("invalid timing parameters")


class BenchmarkDriver:
    """Drives one app through one experiment."""

    def __init__(self, env: "Environment", app: "MarketplaceApp",
                 workload: WorkloadConfig | None = None,
                 config: DriverConfig | None = None,
                 dataset: Dataset | None = None,
                 data_seed: int = 0) -> None:
        self.env = env
        self.app = app
        self.workload = workload or WorkloadConfig()
        self.config = config or DriverConfig()
        self.dataset = dataset or generate_dataset(self.workload,
                                                   seed=data_seed)
        initial = [(product.seller_id, product.product_id)
                   for product in self.dataset.products]
        reserve = [(product.seller_id, product.product_id)
                   for product in self.dataset.reserve_products]
        self.registry = ProductKeyRegistry(initial, reserve)
        self.sampler = ZipfSampler(len(self.registry),
                                   self.workload.zipf_s,
                                   env.rng("driver-keys"))
        self.coordinator = InputCoordinator(
            self.dataset.customer_ids, self.registry, self.sampler,
            env.rng("driver-inputs"))
        self.recorder = LatencyRecorder()
        self._mix = self.workload.mix.normalised()
        self._rng = env.rng("driver-mix")
        self._order_ids = itertools.count(1)
        self._deadline = 0.0
        self._ingested = False
        self.skipped = {"empty_cart": 0, "no_lease": 0, "no_reserve": 0}
        # Online consistency observations consumed by the criteria
        # auditors: acknowledged product versions vs. versions actually
        # read into carts, and dashboard query-pair consistency.
        self.acked_versions: dict[str, int] = {}
        self.acked_deletes: set[str] = set()
        self.observations = {"adds_checked": 0, "stale_adds": 0,
                             "dashboards_checked": 0,
                             "dashboard_mismatches": 0}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        """Execute the full experiment lifecycle; returns the metrics.

        Ingestion -> warm-up -> measured window -> drain (quiesce).
        The simulation environment is run *by this call*.
        """
        if not self._ingested:
            self.app.ingest(self.dataset)
            self._ingested = True
        measure_start = self.env.now + self.config.warmup
        self._deadline = measure_start + self.config.duration
        for index in range(self.config.workers):
            self.env.process(self._worker(index), name=f"worker-{index}")
        self.env.process(self._metrics_gate(measure_start), name="gate")
        self.env.run(until=self._deadline + self.config.drain)
        return RunMetrics.from_recorder(
            self.app.name, self.config.workers, self.config.duration,
            self.recorder, runtime=self.app.runtime_stats())

    def _metrics_gate(self, measure_start: float):
        if self.config.warmup > 0:
            yield self.env.timeout(self.config.warmup)
        self.recorder.enabled = True

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker(self, index: int):
        while self.env.now < self._deadline:
            operation = self._choose_operation()
            handler = getattr(self, f"_do_{operation}")
            yield from handler()
            if self.config.think_time > 0:
                yield self.env.timeout(self.config.think_time)

    def _choose_operation(self) -> str:
        point = self._rng.random()
        cumulative = 0.0
        for operation, weight in self._mix.items():
            cumulative += weight
            if point < cumulative:
                return operation
        return "checkout"

    def _record(self, result, started: float) -> None:
        if self.env.now <= self._deadline:
            self.recorder.record(result.operation, result.status,
                                 self.env.now - started)

    # ------------------------------------------------------------------
    # the five business transactions
    # ------------------------------------------------------------------
    def _do_checkout(self):
        """A series of cart operations followed by the checkout call."""
        customer_id = self.coordinator.lease_customer()
        if customer_id is None:
            self.skipped["no_lease"] += 1
            yield self.env.timeout(0.001)
            return
        try:
            n_items = self._rng.randint(self.workload.min_cart_items,
                                        self.workload.max_cart_items)
            added = 0
            for _ in range(n_items):
                seller_id, product_id = self.coordinator.sample_product()
                quantity = self._rng.randint(self.workload.min_quantity,
                                             self.workload.max_quantity)
                voucher = 0
                if self._rng.random() < self.workload.voucher_probability:
                    voucher = self._rng.randint(
                        1, self.workload.min_price_cents)
                key = f"{seller_id}/{product_id}"
                # Snapshot the acknowledged state *before* the add: only
                # updates acked before the read started can be required
                # of it (causal/read-your-writes semantics).
                acked_version = self.acked_versions.get(key)
                acked_delete = key in self.acked_deletes
                started = self.env.now
                result = yield from self.app.add_item(
                    customer_id, seller_id, product_id, quantity, voucher)
                self._record(result, started)
                if result.ok:
                    added += 1
                    self._observe_add(result, acked_version, acked_delete)
            if added == 0:
                self.skipped["empty_cart"] += 1
                return
            order_id = f"o{customer_id}-{next(self._order_ids)}"
            method = self._rng.choice(PaymentMethod.ALL)
            started = self.env.now
            result = yield from self.app.checkout(customer_id, order_id,
                                                  method)
            self._record(result, started)
        finally:
            self.coordinator.release_customer(customer_id)

    def _do_price_update(self):
        lease = self.coordinator.lease_product()
        if lease is None:
            self.skipped["no_lease"] += 1
            yield self.env.timeout(0.001)
            return
        rank, (seller_id, product_id) = lease
        try:
            price = self._rng.randint(self.workload.min_price_cents,
                                      self.workload.max_price_cents)
            started = self.env.now
            result = yield from self.app.update_price(seller_id,
                                                      product_id, price)
            self._record(result, started)
            if result.ok:
                key = f"{seller_id}/{product_id}"
                self.acked_versions[key] = result.payload["version"]
        finally:
            self.coordinator.release_product((seller_id, product_id))

    def _do_product_delete(self):
        lease = self.coordinator.lease_product()
        if lease is None:
            self.skipped["no_lease"] += 1
            yield self.env.timeout(0.001)
            return
        rank, (seller_id, product_id) = lease
        try:
            # Rebind the rank to a replacement *before* the app call:
            # claiming the reserve first closes the race where two
            # workers both pass a reserve check, both delete, and the
            # loser leaves a dead product in the sampling population.
            compensation = self.registry.delete_at(rank)
            if compensation is None:
                self.skipped["no_reserve"] += 1
                return
            started = self.env.now
            result = yield from self.app.delete_product(seller_id,
                                                        product_id)
            self._record(result, started)
            if result.ok:
                key = f"{seller_id}/{product_id}"
                self.acked_versions[key] = result.payload["version"]
                self.acked_deletes.add(key)
        finally:
            self.coordinator.release_product((seller_id, product_id))

    def _do_update_delivery(self):
        started = self.env.now
        result = yield from self.app.update_delivery()
        self._record(result, started)

    def _do_dashboard(self):
        seller_id = self._rng.choice(self.dataset.seller_ids)
        started = self.env.now
        result = yield from self.app.dashboard(seller_id)
        self._record(result, started)
        if result.ok:
            self.observations["dashboards_checked"] += 1
            if (result.payload["amount_cents"]
                    != result.payload["entries_total_cents"]):
                self.observations["dashboard_mismatches"] += 1

    def _observe_add(self, result, acked_version: int | None,
                     acked_delete: bool) -> None:
        """Check the replicated price against acknowledged updates.

        A successful add whose price version is older than the last
        update *acknowledged before the add started* — or any
        successful add of a product whose deletion was acknowledged
        before the add started — violates the causal (read-your-writes)
        replication criterion.
        """
        self.observations["adds_checked"] += 1
        stale = (acked_version is not None
                 and result.payload["price_version"] < acked_version)
        if stale or acked_delete:
            self.observations["stale_adds"] += 1
