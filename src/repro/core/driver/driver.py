"""The closed-loop benchmark driver: data generation, ingestion,
warm-up, workload submission, statistics collection and cleanup.

The driver mirrors the lifecycle the paper describes for its .NET
driver.  Workers are closed-loop: each submits one business transaction,
waits for the result, records it, then picks the next transaction by
the configured mix.  The transactions themselves are issued through the
shared :class:`~repro.core.driver.issuer.TransactionIssuer`, the code
path it has in common with the open-loop driver.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.driver.issuer import IssuerStateView, TransactionIssuer
from repro.core.driver.metrics import LatencyRecorder, RunMetrics
from repro.core.workload.config import WorkloadConfig
from repro.core.workload.dataset import Dataset
from repro.core.workload.generator import generate_dataset

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.base import MarketplaceApp
    from repro.runtime import Environment


@dataclasses.dataclass
class DriverConfig:
    """Experiment-control parameters."""

    workers: int = 32
    #: Simulated seconds of warm-up (not measured).
    warmup: float = 1.0
    #: Simulated seconds of the measured window.
    duration: float = 5.0
    #: Extra simulated seconds to let asynchronous effects quiesce
    #: before auditing.
    drain: float = 2.0
    #: Think time between a worker's transactions.
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.warmup < 0 or self.duration <= 0 or self.drain < 0:
            raise ValueError("invalid timing parameters")


class BenchmarkDriver(IssuerStateView):
    """Drives one app through one closed-loop experiment."""

    def __init__(self, env: "Environment", app: "MarketplaceApp",
                 workload: WorkloadConfig | None = None,
                 config: DriverConfig | None = None,
                 dataset: Dataset | None = None,
                 data_seed: int = 0) -> None:
        self.env = env
        self.app = app
        self.workload = workload or WorkloadConfig()
        self.config = config or DriverConfig()
        self.dataset = dataset or generate_dataset(self.workload,
                                                   seed=data_seed)
        self.recorder = LatencyRecorder()
        self.issuer = TransactionIssuer(env, app, self.workload,
                                        self.dataset, self.recorder)
        self._deadline = 0.0
        self._ingested = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        """Execute the full experiment lifecycle; returns the metrics.

        Ingestion -> warm-up -> measured window -> drain (quiesce).
        The simulation environment is run *by this call*.
        """
        if not self._ingested:
            self.app.ingest(self.dataset)
            self._ingested = True
        measure_start = self.env.now + self.config.warmup
        self._deadline = measure_start + self.config.duration
        self.issuer.record_until = self._deadline
        self.recorder.timeline_origin = measure_start
        for index in range(self.config.workers):
            self.env.process(self._worker(index), name=f"worker-{index}")
        self.env.process(self._metrics_gate(), name="gate")
        self.env.run(until=self._deadline + self.config.drain)
        return RunMetrics.from_recorder(
            self.app.name, self.config.workers, self.config.duration,
            self.recorder, runtime=self.app.runtime_stats())

    def _metrics_gate(self):
        if self.config.warmup > 0:
            yield self.env.timeout(self.config.warmup)
        self.recorder.enabled = True

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker(self, index: int):
        while self.env.now < self._deadline:
            operation = self.issuer.choose_operation()
            yield from self.issuer.issue(operation)
            if self.config.think_time > 0:
                yield self.env.timeout(self.config.think_time)
