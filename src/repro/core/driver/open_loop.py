"""The open-loop benchmark driver: arrival-rate-controlled load.

Unlike the closed-loop driver, whose offered load is bounded by how
fast its workers get answers, the open-loop driver replays an
externally generated arrival schedule: every arrival enters a FIFO
queue and a bounded pool of dispatchers (modelling client connections)
issues the transactions.  Under overload the queue — not the system —
absorbs the excess, so the driver observes and reports *queueing
delay* (arrival to dispatch) separately from *service latency*
(dispatch to completion); their sum is the client-visible response
time.  This is the load shape needed for flash-sale, burst and
overload-ramp scenarios, where closed-loop coordination would hide
the very saturation being measured (coordinated omission).

Metrics are attributed by **arrival time**: a transaction arriving
inside the measured window is recorded on every channel (outcome,
service latency, queue delay, response) even when it completes during
the drain — dropping those late finishers would censor exactly the
worst-delayed transactions an overload experiment exists to observe.
The drain must therefore be long enough for the backlog to clear;
``final_queue`` in the open-loop stats reports any remainder.

``docs/metrics.md`` documents the metric semantics (histograms,
channels, timelines) in operator terms; ``docs/scenarios.md`` catalogues
the named arrival shapes built on this driver.
"""

from __future__ import annotations

import collections
import dataclasses
import math
import typing

from repro.core.driver.arrivals import ArrivalProcess
from repro.core.driver.issuer import (
    RESULT_OPERATION,
    IssuerStateView,
    TransactionIssuer,
)
from repro.core.driver.metrics import LatencyRecorder, RunMetrics
from repro.core.workload.config import WorkloadConfig
from repro.core.workload.dataset import Dataset
from repro.core.workload.generator import generate_dataset

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.base import MarketplaceApp
    from repro.control.autoscaler import Autoscaler, AutoscalerConfig
    from repro.control.plane import ControlPlane
    from repro.control.signals import SignalWindow
    from repro.runtime import Environment
    from repro.runtime.faults import FaultSchedule


@dataclasses.dataclass
class HotspotSpec:
    """A temporary skew spike: during ``[start, end)`` (relative to the
    start of the run) product sampling routes to the ``top_ranks`` most
    popular ranks with the given probability."""

    start: float
    end: float
    top_ranks: int = 3
    probability: float = 0.7

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("need 0 <= start < end")
        if self.top_ranks < 1:
            raise ValueError("need at least one hot rank")
        if not 0 < self.probability <= 1:
            raise ValueError("probability must be in (0, 1]")


@dataclasses.dataclass
class OpenLoopConfig:
    """Experiment-control parameters for rate-controlled load."""

    arrivals: ArrivalProcess
    #: Simulated seconds of warm-up (arrivals happen, not measured).
    warmup: float = 1.0
    #: Simulated seconds of the measured window.
    duration: float = 5.0
    #: Extra simulated seconds to let asynchronous effects quiesce.
    drain: float = 2.0
    #: Dispatcher-pool size: transactions concurrently in flight.
    max_in_flight: int = 64
    #: Pending-arrival queue bound; ``None`` = unbounded, otherwise
    #: arrivals beyond the bound are shed (counted, not issued).
    queue_capacity: int | None = None
    #: Optional flash-sale style skew spike.
    hotspot: HotspotSpec | None = None
    #: Optional timed membership faults (crash/drain/join), times
    #: relative to run start like the hotspot window.  Applied to the
    #: app's actor cluster; apps without one log the events as skipped.
    faults: "FaultSchedule | None" = None
    #: Optional SLO-driven elasticity: with a config the driver builds
    #: a control plane over the app, feeds it live signals, and runs an
    #: :class:`~repro.control.autoscaler.Autoscaler` for the whole run.
    autoscaler: "AutoscalerConfig | None" = None

    def __post_init__(self) -> None:
        if self.warmup < 0 or self.duration <= 0 or self.drain < 0:
            raise ValueError("invalid timing parameters")
        if self.max_in_flight < 1:
            raise ValueError("need at least one dispatcher")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 or None")


class OpenLoopDriver(IssuerStateView):
    """Drives one app through one arrival-schedule experiment."""

    def __init__(self, env: "Environment", app: "MarketplaceApp",
                 workload: WorkloadConfig | None = None,
                 config: OpenLoopConfig | None = None,
                 dataset: Dataset | None = None,
                 data_seed: int = 0) -> None:
        if config is None:
            raise ValueError("OpenLoopConfig (arrival schedule) required")
        self.env = env
        self.app = app
        self.workload = workload or WorkloadConfig()
        self.config = config
        self.dataset = dataset or generate_dataset(self.workload,
                                                   seed=data_seed)
        self.recorder = LatencyRecorder()
        self.issuer = TransactionIssuer(env, app, self.workload,
                                        self.dataset, self.recorder)
        self._queue: collections.deque[tuple[float, str]] = \
            collections.deque()
        self._waiters: collections.deque = collections.deque()
        self._closed = False
        self._measure_start = 0.0
        self._deadline = 0.0
        self._in_flight = 0
        self._ingested = False
        #: Control-plane surface of this run (built in :meth:`run` when
        #: the config carries faults or an autoscaler).
        self.control: "ControlPlane | None" = None
        self.autoscaler: "Autoscaler | None" = None
        self._signals: "SignalWindow | None" = None
        self.stats = {"arrivals": 0, "dispatched": 0, "completed": 0,
                      "shed": 0, "max_in_flight": 0, "max_queue": 0}

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        """Execute the full experiment lifecycle; returns the metrics.

        Arrivals are generated over warm-up + measured window; the
        drain lets queued and in-flight transactions finish.
        """
        if not self._ingested:
            self.app.ingest(self.dataset)
            self._ingested = True
        start = self.env.now
        self._measure_start = start + self.config.warmup
        self._deadline = self._measure_start + self.config.duration
        # Per-arrival attribution: the dispatcher decides recording
        # from the arrival timestamp, so the issuer-side completion
        # gates stay open and the recorder is live from the start.
        self.issuer.record_until = float("inf")
        self.recorder.timeline_origin = self._measure_start
        self.recorder.enabled = True
        if self.config.faults is not None \
                or self.config.autoscaler is not None:
            # One control plane per run: the shared audit log for
            # scheduled faults and autoscaler actions, and the signal
            # surface the autoscaler samples.
            from repro.control.plane import control_plane_for
            from repro.control.signals import SignalWindow

            window = (SignalWindow(self.config.autoscaler.window)
                      if self.config.autoscaler is not None
                      else None)
            self.control = control_plane_for(self.env, self.app,
                                             driver=self, window=window)
        self.env.process(self._arrival_source(start), name="arrivals")
        for index in range(self.config.max_in_flight):
            self.env.process(self._dispatcher(), name=f"dispatch-{index}")
        if self.config.hotspot is not None:
            self.env.process(self._hotspot_controller(self.config.hotspot),
                             name="hotspot")
        if self.config.faults is not None:
            # Membership faults act on the app's actor cluster; apps
            # without one (e.g. the dataflow stack) log them as skipped
            # so the run — and its report — still completes.
            self.config.faults.install(self.env,
                                       getattr(self.app, "cluster", None),
                                       control=self.control)
        if self.config.autoscaler is not None:
            from repro.control.autoscaler import Autoscaler

            # Live signal taps: arrivals and queue delays from the
            # dispatch path, completion outcomes from the issuer —
            # ungated by the measurement window, free of RNG use.
            self._signals = self.control.window
            self.issuer.tap = self.control.window
            self.autoscaler = Autoscaler(self.control,
                                         self.config.autoscaler)
            self.autoscaler.install(
                self.env, until=self._deadline + self.config.drain)
        self.env.run(until=self._deadline + self.config.drain)
        # Actual, not nominal: phased/ramped schedules may repeat or
        # hold their last phase when the window outruns them.
        window = self.config.warmup + self.config.duration
        open_loop = dict(self.stats,
                         offered_rate=self.stats["arrivals"] / window,
                         final_queue=len(self._queue))
        if self.config.faults is not None:
            open_loop["fault_events"] = [
                dict(entry,
                     second=math.floor(entry["time"]
                                       - self._measure_start))
                for entry in self.config.faults.log]
        if self.autoscaler is not None:
            autoscale = self.config.autoscaler
            open_loop["control"] = {
                "slo": autoscale.slo.as_dict(),
                "enabled": autoscale.enabled,
                "interval": round(autoscale.interval, 6),
                "min_silos": autoscale.min_silos,
                "max_silos": autoscale.max_silos,
                "rate_per_silo": autoscale.rate_per_silo,
                "samples": list(self.autoscaler.samples),
                "actions": [dict(entry)
                            for entry in self.control.action_log],
            }
        return RunMetrics.from_recorder(
            self.app.name, self.config.max_in_flight,
            self.config.duration, self.recorder,
            runtime=self.app.runtime_stats(), open_loop=open_loop)

    def _hotspot_controller(self, spec: HotspotSpec):
        if spec.start > 0:
            yield self.env.timeout(spec.start)
        ranks = list(range(min(spec.top_ranks, self.sampler.n)))
        self.sampler.set_hotspot(ranks, spec.probability)
        yield self.env.timeout(spec.end - spec.start)
        self.sampler.clear_hotspot()

    # ------------------------------------------------------------------
    # arrivals and dispatch
    # ------------------------------------------------------------------
    def _arrival_source(self, start: float):
        end = start + self.config.warmup + self.config.duration
        rng = self.env.rng("open-loop-arrivals")
        previous = start
        for at in self.config.arrivals.arrival_times(rng, start, end):
            yield self.env.timeout(at - previous)
            previous = at
            self._on_arrival(at)
        self._closed = True
        while self._waiters:  # release idle dispatchers so they exit
            self._waiters.popleft().succeed()

    def _on_arrival(self, at: float) -> None:
        self.stats["arrivals"] += 1
        if self._signals is not None:
            self._signals.observe_arrival(at)
        capacity = self.config.queue_capacity
        if capacity is not None and len(self._queue) >= capacity:
            self.stats["shed"] += 1
            return
        self._queue.append((at, self.issuer.choose_operation()))
        self.stats["max_queue"] = max(self.stats["max_queue"],
                                      len(self._queue))
        if self._waiters:
            self._waiters.popleft().succeed()

    def _dispatcher(self):
        while True:
            while not self._queue:
                if self._closed:
                    return
                waiter = self.env.event()
                self._waiters.append(waiter)
                yield waiter
            arrived, operation = self._queue.popleft()
            queue_delay = self.env.now - arrived
            if self._signals is not None:
                self._signals.observe_queue_delay(self.env.now,
                                                  queue_delay)
            self._in_flight += 1
            self.stats["max_in_flight"] = max(
                self.stats["max_in_flight"], self._in_flight)
            self.stats["dispatched"] += 1
            # All channels gate on the arrival timestamp, so outcome,
            # service latency, queue wait and response describe one
            # population: transactions *arriving* inside the window.
            record = self._measure_start <= arrived <= self._deadline
            executed = yield from self.issuer.issue(operation,
                                                    record=record)
            self._in_flight -= 1
            self.stats["completed"] += 1
            # Queue wait and response use the app-facing operation
            # name so they land on the same rows as service latency.
            # Skipped transactions (lease miss, reserve dry) never
            # touched the app and contribute no samples.
            if executed and record:
                recorded = RESULT_OPERATION[operation]
                self.recorder.record_queue_delay(recorded, queue_delay)
                self.recorder.record_response(recorded,
                                              self.env.now - arrived)
