"""Data management criteria auditors.

The paper prescribes criteria "to allow for proper comparison across
data systems and platforms".  Five are audited here:

C1  All-or-nothing atomicity of business transactions (checkout).
C2  Causal (read-your-writes) replication of product data into carts.
C3  Referential integrity: stock items must refer to existing products.
C4  Snapshot consistency of the two seller-dashboard queries.
C5  Causal event ordering: payment events precede shipment events of
    the same order.
C6  Exactly-once external-order ingestion: every registered
    ``(platform, shop_id, ext_order_no)`` key maps to exactly one
    marketplace order (no duplicates, no orphaned registrations).

C2 and C4 are observed online by the driver; C1, C3, C5 and C6 are
audited post-hoc over the app's state views at quiescence.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.marketplace.constants import OrderStatus

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.base import MarketplaceApp
    from repro.core.driver.driver import BenchmarkDriver

CRITERIA = (
    "C1-atomicity",
    "C2-causal-replication",
    "C3-integrity",
    "C4-snapshot-dashboard",
    "C5-event-ordering",
    "C6-exactly-once-ingest",
)

#: Order statuses that imply the payment succeeded and the money is
#: still with the marketplace (a pending return has not been refunded
#: yet; RETURNED/REJECTED/DEFECT orders have — their totals no longer
#: count towards the customer's spend).
_PAID = (OrderStatus.PAYMENT_PROCESSED, OrderStatus.READY_FOR_SHIPMENT,
         OrderStatus.IN_TRANSIT, OrderStatus.DELIVERED,
         OrderStatus.COMPLETED, OrderStatus.RETURN_REQUESTED,
         OrderStatus.RETURN_IN_TRANSIT)

#: Non-final return states: a return saga that quiesced here stalled
#: half way (refund never landed) — an atomicity violation.
_RETURN_PENDING = (OrderStatus.RETURN_REQUESTED,
                   OrderStatus.RETURN_IN_TRANSIT)


@dataclasses.dataclass
class CriterionResult:
    name: str
    checked: int
    violations: int
    details: list[str] = dataclasses.field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.violations == 0

    def as_dict(self) -> dict:
        return {"name": self.name, "checked": self.checked,
                "violations": self.violations, "passed": self.passed}


@dataclasses.dataclass
class CriteriaReport:
    app: str
    results: dict[str, CriterionResult]

    @property
    def all_pass(self) -> bool:
        return all(result.passed for result in self.results.values())

    def row(self) -> dict:
        """One compliance-matrix row: criterion -> pass/fail."""
        row: dict[str, object] = {"app": self.app}
        for name in CRITERIA:
            result = self.results.get(name)
            row[name] = "pass" if result is None or result.passed \
                else f"FAIL({result.violations})"
        return row


def audit_app(app: "MarketplaceApp",
              driver: "BenchmarkDriver | None" = None,
              max_details: int = 5) -> CriteriaReport:
    """Audit one app (after a run has quiesced) against all criteria."""
    views = app.audit_views()
    results = {
        "C1-atomicity": _audit_atomicity(views, max_details),
        "C3-integrity": _audit_integrity(views, max_details),
        "C5-event-ordering": _audit_event_order(views, max_details),
        "C6-exactly-once-ingest": _audit_exactly_once(views, max_details),
    }
    if driver is not None:
        observations = driver.observations
        results["C2-causal-replication"] = CriterionResult(
            name="C2-causal-replication",
            checked=observations["adds_checked"],
            violations=observations["stale_adds"])
        results["C4-snapshot-dashboard"] = CriterionResult(
            name="C4-snapshot-dashboard",
            checked=observations["dashboards_checked"],
            violations=observations["dashboard_mismatches"])
    return CriteriaReport(app=app.name, results=results)


# ---------------------------------------------------------------------------
# C1: all-or-nothing atomicity
# ---------------------------------------------------------------------------
def _iter_orders(views: dict) -> typing.Iterator[tuple[str, dict]]:
    for state in views.get("orders", {}).values():
        for order_id, order in state.get("orders", {}).items():
            yield order_id, order


def _audit_atomicity(views: dict, max_details: int) -> CriterionResult:
    shipments: dict[str, dict] = {}
    for partition in views.get("shipments", {}).values():
        shipments.update(partition.get("shipments", {}))
    checked = 0
    violations = 0
    details: list[str] = []

    def violation(message: str) -> None:
        nonlocal violations
        violations += 1
        if len(details) < max_details:
            details.append(message)

    customer_paid_totals: dict[int, int] = {}
    for order_id, order in _iter_orders(views):
        checked += 1
        if order["status"] in _RETURN_PENDING:
            violation(f"order {order_id}: return saga stalled in "
                      f"{order['status']}")
        if order["status"] in _PAID:
            customer_paid_totals[order["customer_id"]] = (
                customer_paid_totals.get(order["customer_id"], 0)
                + order["total_cents"])
            shipment = shipments.get(order_id)
            if shipment is None:
                violation(f"paid order {order_id} has no shipment")
                continue
            expected = len({item["seller_id"] for item in order["items"]})
            if len(shipment["packages"]) != expected:
                violation(f"order {order_id}: {len(shipment['packages'])} "
                          f"packages, expected {expected}")

    # At quiescence no reservation may dangle: every reservation was
    # either confirmed (decrement) or cancelled.
    for key, stock in views.get("stock", {}).items():
        checked += 1
        if stock.get("qty_reserved", 0) != 0:
            violation(f"stock {key}: dangling reservation of "
                      f"{stock['qty_reserved']}")

    # Customer spend must equal the sum of their paid orders' totals.
    for key, customer in views.get("customers", {}).items():
        checked += 1
        expected = customer_paid_totals.get(customer["customer_id"], 0)
        if customer.get("spent_cents", 0) != expected:
            violation(f"customer {key}: spent {customer['spent_cents']}"
                      f" != paid order total {expected}")
    return CriterionResult("C1-atomicity", checked, violations, details)


# ---------------------------------------------------------------------------
# C3: referential integrity (stock -> product)
# ---------------------------------------------------------------------------
def _audit_integrity(views: dict, max_details: int) -> CriterionResult:
    products = views.get("products", {})
    checked = 0
    violations = 0
    details: list[str] = []
    for key, stock in views.get("stock", {}).items():
        checked += 1
        product = products.get(key)
        product_active = bool(product and product.get("active", False))
        stock_active = stock.get("active", True)
        if stock_active and not product_active:
            violations += 1
            if len(details) < max_details:
                details.append(
                    f"stock {key} active but product inactive/missing")
    return CriterionResult("C3-integrity", checked, violations, details)


# ---------------------------------------------------------------------------
# C5: causal event ordering (payment before shipment per order)
# ---------------------------------------------------------------------------
def _audit_event_order(views: dict, max_details: int) -> CriterionResult:
    #: first observation index of each (subscriber, order, kind)
    first_seen: dict[tuple[str, str, str], int] = {}
    for index, entry in enumerate(views.get("event_log", [])):
        ident = (entry["subscriber"], entry["order_id"], entry["kind"])
        first_seen.setdefault(ident, index)
    pairs: set[tuple[str, str]] = {
        (subscriber, order_id)
        for subscriber, order_id, _ in first_seen}
    checked = 0
    violations = 0
    details: list[str] = []
    for subscriber, order_id in sorted(pairs):
        payment = first_seen.get((subscriber, order_id,
                                  "payment_confirmed"))
        shipment = first_seen.get((subscriber, order_id,
                                   "shipment_notification"))
        if shipment is None:
            continue
        checked += 1
        if payment is None or payment > shipment:
            violations += 1
            if len(details) < max_details:
                details.append(
                    f"{subscriber}: order {order_id} shipment event "
                    f"before payment event")
    return CriterionResult("C5-event-ordering", checked, violations,
                           details)


# ---------------------------------------------------------------------------
# C6: exactly-once external-order ingestion
# ---------------------------------------------------------------------------
def _audit_exactly_once(views: dict, max_details: int) -> CriterionResult:
    """Every registered dedup key <-> exactly one marketplace order.

    A key with two orders means an at-least-once retry double-created
    (and double-decremented stock); a key with none is an orphaned
    registration that silently swallows every future submit; an
    external order without a registration escaped the front door.
    """
    orders_by_ext: dict[str, list[str]] = {}
    for order_id, order in _iter_orders(views):
        ext = order.get("ext")
        if ext is not None:
            orders_by_ext.setdefault(ext, []).append(order_id)
    checked = 0
    violations = 0
    details: list[str] = []

    def violation(message: str) -> None:
        nonlocal violations
        violations += 1
        if len(details) < max_details:
            details.append(message)

    registered: set[str] = set()
    for shard in views.get("ingestion", {}).values():
        for key in shard.get("entries", {}):
            registered.add(key)
            checked += 1
            matching = orders_by_ext.get(key, [])
            if len(matching) > 1:
                violation(f"key {key}: duplicate orders "
                          f"{sorted(matching)}")
            elif not matching:
                violation(f"key {key}: registered but no order exists")
    for key in sorted(set(orders_by_ext) - registered):
        checked += 1
        violation(f"key {key}: external order(s) without registration")
    return CriterionResult("C6-exactly-once-ingest", checked, violations,
                           details)
