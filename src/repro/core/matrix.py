"""The experiment matrix: spec, expansion and process-parallel runner.

The paper's contribution is a *comparison surface* — one marketplace
workload replayed across four platform stacks under identical
scenarios.  One cell of that surface is a single deterministic run:
``(scenario, app, seed, rate_scale)`` at a common ``duration_scale``.
This module turns the surface into data and machinery:

:class:`MatrixSpec`
    The declarative cross product (scenarios × apps × seeds ×
    rate-scales), validated against the scenario catalogue and the app
    registry, expanded by :meth:`MatrixSpec.cells` in a fixed,
    reproducible order.

:func:`run_cell`
    Executes one cell end to end (fresh :class:`Environment` seeded
    from the cell, scenario-pinned cluster shape, criteria audit,
    availability summary for fault scenarios) and returns a
    :class:`CellResult` whose ``payload`` is *canonical*: pure
    simulated-time data, no wall-clock, so the same cell always
    serialises to the same bytes (:attr:`CellResult.canonical_json`)
    no matter where or when it ran.

:func:`run_matrix`
    Fans cells across worker processes.  Runs are deterministic and
    share nothing, so the matrix is embarrassingly parallel: each cell
    gets its own short-lived process (fork where available, spawn
    otherwise), progress events stream back to the parent as cells
    start and finish, and a cell that *crashes its process outright*
    (not just raises — raises are caught in the worker) is recorded as
    ``crashed`` without taking the rest of the matrix down.
    ``workers=1`` runs the same cells in-process, which is both the
    fair baseline for the speedup benchmark and the reference output
    for the bit-identical determinism guarantee.

The merge/rendering side (cross-app tables keyed by scenario,
seed-sweep error bars) lives in :mod:`repro.analysis.matrix_report`.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import multiprocessing
import queue as queue_module
import time
import traceback
import typing

from repro.analysis.availability import availability_report
from repro.analysis.elasticity import elasticity_report
from repro.apps import ALL_APPS
from repro.control.facade import run_scenario
from repro.core.scenarios import get_scenario, scenario_names

#: Seconds between liveness sweeps of the worker pool.
_POLL_INTERVAL = 0.05


@dataclasses.dataclass(frozen=True)
class MatrixCell:
    """One point of the comparison surface: a single deterministic run."""

    scenario: str
    app: str
    seed: int
    rate_scale: float = 1.0
    duration_scale: float = 1.0

    @property
    def cell_id(self) -> str:
        """Stable human-readable key, e.g. ``baseline/statefun/s42/r1``."""
        return (f"{self.scenario}/{self.app}/s{self.seed}"
                f"/r{self.rate_scale:g}")

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class MatrixSpec:
    """The declarative cross product defining an experiment matrix.

    Every axis is validated eagerly (unknown scenario/app names and
    non-positive scales fail at construction, not mid-run) and the
    expansion order is fixed — scenarios, then apps, then seeds, then
    rate scales — so cell indices are reproducible across runs and
    machines.
    """

    scenarios: tuple[str, ...]
    apps: tuple[str, ...]
    seeds: tuple[int, ...] = (42,)
    rate_scales: tuple[float, ...] = (1.0,)
    duration_scale: float = 1.0

    def __post_init__(self) -> None:
        # Accept any sequence on every axis; store tuples (hashable,
        # immutable) so the spec itself stays frozen.
        for axis in ("scenarios", "apps", "seeds", "rate_scales"):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        if not self.scenarios or not self.apps:
            raise ValueError("matrix needs at least one scenario "
                             "and one app")
        if not self.seeds or not self.rate_scales:
            raise ValueError("matrix needs at least one seed "
                             "and one rate scale")
        for name in self.scenarios:
            get_scenario(name)  # raises KeyError listing known names
        for name in self.apps:
            if name not in ALL_APPS:
                known = ", ".join(sorted(ALL_APPS))
                raise ValueError(f"unknown app {name!r}; known: {known}")
        if any(scale <= 0 for scale in self.rate_scales) \
                or self.duration_scale <= 0:
            raise ValueError("scales must be > 0")

    @classmethod
    def full(cls, **overrides) -> "MatrixSpec":
        """The whole catalogue: every scenario × every app."""
        overrides.setdefault("scenarios", tuple(scenario_names()))
        overrides.setdefault("apps", tuple(sorted(ALL_APPS)))
        return cls(**overrides)

    def cells(self) -> list[MatrixCell]:
        """Expand the cross product in the fixed canonical order."""
        return [
            MatrixCell(scenario=scenario, app=app, seed=seed,
                       rate_scale=rate_scale,
                       duration_scale=self.duration_scale)
            for scenario in self.scenarios
            for app in self.apps
            for seed in self.seeds
            for rate_scale in self.rate_scales
        ]

    def __len__(self) -> int:
        return (len(self.scenarios) * len(self.apps) * len(self.seeds)
                * len(self.rate_scales))


@dataclasses.dataclass
class CellResult:
    """Outcome of one cell: status, wall time and canonical payload.

    ``status`` is one of ``ok`` (payload present), ``failed`` (the run
    raised inside the worker; ``error`` carries the traceback tail) or
    ``crashed`` (the worker process died without reporting; ``error``
    carries the exit code).  Wall time lives *outside* the payload so
    canonical output stays byte-identical across machines and worker
    counts.
    """

    cell: MatrixCell
    status: str
    wall_s: float
    payload: dict | None = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def canonical_json(self) -> str:
        """Deterministic serialisation of the simulated-time payload.

        Sorted keys, no whitespace, no wall-clock fields: two runs of
        the same cell — serial or parallel, any machine — produce the
        same string.  This is the equality the determinism tests and
        the M0 bench assert on."""
        return json.dumps(self.payload, sort_keys=True,
                          separators=(",", ":"))

    def as_dict(self) -> dict:
        return {"cell": self.cell.as_dict(), "status": self.status,
                "wall_s": round(self.wall_s, 4), "error": self.error,
                "payload": self.payload}


@dataclasses.dataclass(frozen=True)
class MatrixProgress:
    """One streamed progress event: a cell started or finished."""

    kind: str  # "start" | "done"
    cell: MatrixCell
    index: int
    total: int
    result: CellResult | None = None


@dataclasses.dataclass
class MatrixResult:
    """All cell results (in spec order) plus run-level bookkeeping."""

    cells: list[CellResult]
    workers: int
    wall_s: float

    @property
    def completed(self) -> list[CellResult]:
        return [result for result in self.cells if result.ok]

    @property
    def failures(self) -> list[CellResult]:
        return [result for result in self.cells if not result.ok]

    def as_dict(self) -> dict:
        return {"workers": self.workers,
                "wall_s": round(self.wall_s, 4),
                "ok": len(self.completed),
                "failed": len(self.failures),
                "cells": [result.as_dict() for result in self.cells]}


def cell_payload(cell: MatrixCell, metrics, report, app=None) -> dict:
    """The canonical (wall-clock-free) record of one finished cell.

    Everything here is simulated-time data derived deterministically
    from the seed: per-operation rows, open-loop counters, the
    criteria audit and — for fault scenarios — the availability
    summary.  Keep wall-clock measurements out; they belong on
    :class:`CellResult`.  When ``app`` is given, a ``memory`` section
    records the *logical* footprint — dataset records touched plus the
    working-set counters — which is still pure simulated-time data
    (actual byte counts are machine-dependent and live in the
    benchmarks, not here).
    """
    memory = None
    if app is not None:
        dataset = getattr(app, "dataset", None)
        memory = {
            "dataset": dataset.summary() if dataset is not None else None,
            "working_set": app.runtime_stats().get("working_set"),
        }
    open_loop = {
        key: (round(value, 3) if isinstance(value, float) else value)
        for key, value in metrics.open_loop.items()
        if key in ("arrivals", "completed", "shed", "offered_rate",
                   "max_in_flight", "max_queue", "final_queue")
    }
    availability = None
    if metrics.open_loop.get("fault_events"):
        summary = availability_report(metrics)
        availability = {
            "fault_second": summary.fault_second,
            "pre_fault_tps": round(summary.pre_fault_tps, 3),
            "unavailable_seconds": summary.unavailable_seconds,
            "window": summary.unavailability_window,
            "recovery_time": summary.recovery_time,
            "state_loss_events": summary.state_loss_events,
            "reroutes": summary.reroutes,
        }
    elasticity = None
    if metrics.open_loop.get("control"):
        story = elasticity_report(metrics.open_loop["control"],
                                  app=cell.app)
        if story is not None:
            elasticity = {
                "enabled": story.enabled,
                "slo_violation_seconds":
                    round(story.slo_violation_seconds, 3),
                "scaling_lag": (round(story.scaling_lag, 3)
                                if story.scaling_lag is not None
                                else None),
                "recovery_time": (round(story.recovery_time, 3)
                                  if story.recovery_time is not None
                                  else None),
                "recovered": story.recovered,
                "over_provisioned_area":
                    round(story.over_provisioned_area, 3),
                "under_provisioned_area":
                    round(story.under_provisioned_area, 3),
                "silo_seconds": round(story.silo_seconds, 3),
                "ideal_silo_seconds":
                    round(story.ideal_silo_seconds, 3),
                "peak_silos": story.peak_silos,
                "min_silos": story.min_silos,
                "scale_ups": story.scale_ups,
                "scale_downs": story.scale_downs,
            }
    return {
        "cell": cell.as_dict(),
        "duration": metrics.duration,
        "total_tps": round(metrics.total_throughput, 3),
        "ops": metrics.summary_rows(),
        "open_loop": open_loop,
        "criteria": {
            name: {"passed": result.passed,
                   "violations": result.violations,
                   "checked": result.checked}
            for name, result in sorted(report.results.items())
        },
        "availability": availability,
        "elasticity": elasticity,
        "memory": memory,
    }


def run_cell(cell: MatrixCell) -> CellResult:
    """Execute one cell in the current process.

    The run itself goes through :func:`repro.control.run_scenario` —
    the one canonical environment/app/driver assembly — so a cell run
    here is byte-identical to the same scenario run from the CLI.  A
    raising run is converted to a ``failed`` result (traceback tail in
    ``error``) so one poisoned cell never aborts a matrix, serial or
    parallel.
    """
    start = time.perf_counter()
    try:
        run = run_scenario(cell.scenario, app=cell.app, seed=cell.seed,
                           rate_scale=cell.rate_scale,
                           duration_scale=cell.duration_scale)
        payload = cell_payload(cell, run.metrics, run.report,
                               app=run.app)
    except Exception as error:  # noqa: BLE001 - recorded, not fatal
        tail = traceback.format_exception_only(type(error), error)
        return CellResult(cell=cell, status="failed",
                          wall_s=time.perf_counter() - start,
                          error="".join(tail).strip())
    return CellResult(cell=cell, status="ok",
                      wall_s=time.perf_counter() - start,
                      payload=payload)


def _guarded(cell_fn: typing.Callable[[MatrixCell], CellResult],
             cell: MatrixCell) -> CellResult:
    """Run ``cell_fn`` converting a raise into a ``failed`` result."""
    start = time.perf_counter()
    try:
        return cell_fn(cell)
    except Exception as error:  # noqa: BLE001 - recorded, not fatal
        tail = traceback.format_exception_only(type(error), error)
        return CellResult(cell=cell, status="failed",
                          wall_s=time.perf_counter() - start,
                          error="".join(tail).strip())


def _cell_worker(index: int, cell: MatrixCell, cell_fn, results) -> None:
    """Worker-process entry: run one cell, ship the result back."""
    results.put((index, _guarded(cell_fn, cell)))


def default_context() -> multiprocessing.context.BaseContext:
    """Fork where the platform offers it (cheap start, inherits the
    imported simulator), spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context("spawn")


def run_matrix(spec: "MatrixSpec | typing.Sequence[MatrixCell]",
               workers: int = 1,
               progress: typing.Callable[[MatrixProgress], None]
               | None = None,
               cell_fn: typing.Callable[[MatrixCell], CellResult]
               | None = None,
               context: multiprocessing.context.BaseContext
               | None = None) -> MatrixResult:
    """Run every cell of ``spec``; returns results in spec order.

    ``workers=1`` executes in-process (the serial baseline);
    ``workers>1`` gives each cell its own short-lived process, at most
    ``workers`` alive at once.  ``progress`` receives a
    :class:`MatrixProgress` as each cell starts and finishes.
    ``cell_fn`` (default :func:`run_cell`) exists for tests — e.g.
    injecting a cell that kills its worker process.
    """
    cells = list(spec.cells() if isinstance(spec, MatrixSpec) else spec)
    if workers < 1:
        raise ValueError("need at least one worker")
    cell_fn = cell_fn or run_cell
    total = len(cells)
    start = time.perf_counter()
    if workers == 1 or total <= 1:
        results = []
        for index, cell in enumerate(cells):
            _emit(progress, MatrixProgress("start", cell, index, total))
            result = _guarded(cell_fn, cell)
            results.append(result)
            _emit(progress, MatrixProgress("done", cell, index, total,
                                           result))
    else:
        results = _run_pool(cells, workers, progress, cell_fn,
                            context or default_context())
    return MatrixResult(cells=results, workers=workers,
                        wall_s=time.perf_counter() - start)


def _emit(progress, event: MatrixProgress) -> None:
    if progress is not None:
        progress(event)


def _run_pool(cells: list[MatrixCell], workers: int, progress,
              cell_fn, context) -> list[CellResult]:
    """One short-lived process per cell, at most ``workers`` alive.

    Results come back over a queue; a worker that dies without
    reporting (hard crash, ``os._exit``, signal) is detected by its
    exit code and recorded as a ``crashed`` cell — the rest of the
    matrix keeps running.
    """
    total = len(cells)
    results_queue = context.Queue()
    pending = collections.deque(enumerate(cells))
    # index -> (process, cell, started-at); insertion order is launch
    # order, which keeps crash sweeps deterministic.
    running: dict[int, tuple] = {}
    results: dict[int, CellResult] = {}

    while pending or running:
        while pending and len(running) < workers:
            index, cell = pending.popleft()
            process = context.Process(
                target=_cell_worker,
                args=(index, cell, cell_fn, results_queue),
                name=f"matrix-{cell.cell_id}", daemon=True)
            process.start()
            running[index] = (process, cell, time.perf_counter())
            _emit(progress, MatrixProgress("start", cell, index, total))
        try:
            index, result = results_queue.get(timeout=_POLL_INTERVAL)
        except queue_module.Empty:
            pass
        else:
            process, cell, _ = running.pop(index)
            process.join()
            results[index] = result
            _emit(progress, MatrixProgress("done", cell, index, total,
                                           result))
            continue
        # Liveness sweep: a dead worker with a non-zero exit code and
        # no result in the queue crashed mid-cell.  (Exit code 0 means
        # the result is still in flight — keep draining the queue.)
        for index in list(running):
            process, cell, started = running[index]
            if process.exitcode is None or process.exitcode == 0 \
                    or index in results:
                continue
            running.pop(index)
            process.join()  # already dead; reap it
            result = CellResult(
                cell=cell, status="crashed",
                wall_s=time.perf_counter() - started,
                error=f"worker process exited with code "
                      f"{process.exitcode}")
            results[index] = result
            _emit(progress, MatrixProgress("done", cell, index, total,
                                           result))
    results_queue.close()
    return [results[index] for index in range(total)]
