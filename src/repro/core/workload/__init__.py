"""Workload definition: configuration, data generation, key selection."""

from repro.core.workload.config import TransactionMix, WorkloadConfig
from repro.core.workload.dataset import Dataset
from repro.core.workload.distributions import (
    ProductKeyRegistry,
    ZipfSampler,
)
from repro.core.workload.generator import generate_dataset
from repro.core.workload.inputs import InputCoordinator

__all__ = [
    "Dataset",
    "InputCoordinator",
    "ProductKeyRegistry",
    "TransactionMix",
    "WorkloadConfig",
    "ZipfSampler",
    "generate_dataset",
]
