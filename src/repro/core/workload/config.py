"""Workload configuration: scale, skew and transaction mix."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class TransactionMix:
    """Relative weights of the five business transactions.

    Defaults follow the benchmark's checkout-dominated profile: most
    traffic is customers checking out, with a steady trickle of seller
    operations and dashboards.
    """

    checkout: float = 65.0
    price_update: float = 12.0
    product_delete: float = 2.0
    update_delivery: float = 6.0
    dashboard: float = 15.0
    #: External-order ingestion and return requests default to zero so
    #: the classic five-transaction profile is unchanged.  New entries
    #: stay at the END of ``normalised()`` — its iteration order feeds
    #: the single-draw operation sampler.
    submit_external: float = 0.0
    request_return: float = 0.0

    def normalised(self) -> dict[str, float]:
        weights = {
            "checkout": self.checkout,
            "price_update": self.price_update,
            "product_delete": self.product_delete,
            "update_delivery": self.update_delivery,
            "dashboard": self.dashboard,
            "submit_external": self.submit_external,
            "request_return": self.request_return,
        }
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("transaction mix weights must sum to > 0")
        return {name: weight / total for name, weight in weights.items()}


@dataclasses.dataclass
class WorkloadConfig:
    """Scale and distribution parameters of the generated marketplace."""

    sellers: int = 10
    customers: int = 100
    products_per_seller: int = 10
    #: Initial stock per product.
    initial_stock: int = 10_000
    #: Extra products generated per seller as replacements for deletes,
    #: keeping the key popularity distribution intact (paper, Section II).
    reserve_fraction: float = 0.25
    #: Zipf exponent of product popularity (0 = uniform).
    zipf_s: float = 0.8
    #: Cart size range per checkout.
    min_cart_items: int = 1
    max_cart_items: int = 5
    #: Quantity range per cart item.
    min_quantity: int = 1
    max_quantity: int = 3
    #: Price range (cents) of generated products.
    min_price_cents: int = 100
    max_price_cents: int = 100_000
    #: Probability a cart item carries a voucher.
    voucher_probability: float = 0.1
    #: Price update magnitude: new = old * U(1 - x, 1 + x).
    price_change_fraction: float = 0.2
    #: External-platform ingestion shape: how many platforms/shops the
    #: submit_external mix draws dedup shards from.
    external_platforms: int = 2
    external_shops: int = 3
    #: Probability a submit_external fires the same key twice
    #: concurrently (the duplicate-ingest probe).
    duplicate_submit_probability: float = 0.0
    #: Generate records lazily on first touch (million-entity worlds).
    #: The eager default keeps legacy runs byte-identical; see
    #: ``workload/lazydataset.py`` for the lazy contract.
    lazy_dataset: bool = False
    mix: TransactionMix = dataclasses.field(default_factory=TransactionMix)

    def __post_init__(self) -> None:
        if self.sellers < 1 or self.customers < 1:
            raise ValueError("need at least one seller and one customer")
        if self.products_per_seller < 1:
            raise ValueError("need at least one product per seller")
        if not 0 <= self.voucher_probability <= 1:
            raise ValueError("voucher_probability must be in [0, 1]")
        if self.min_cart_items < 1 \
                or self.max_cart_items < self.min_cart_items:
            raise ValueError("invalid cart size range")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")

    @property
    def total_products(self) -> int:
        return self.sellers * self.products_per_seller
