"""The generated dataset handed to apps for ingestion."""

from __future__ import annotations

import dataclasses

from repro.marketplace.entities import Customer, Product, Seller, StockItem


@dataclasses.dataclass
class Dataset:
    """Everything the driver ingests before the measured window.

    ``products`` are the initially live products; ``reserve_products``
    are pre-provisioned replacements used by the delete-compensation
    scheme (they are ingested up front, with stock, so a rank rebinding
    needs no mid-run ingestion).
    """

    sellers: list[Seller]
    customers: list[Customer]
    products: list[Product]
    reserve_products: list[Product]
    stock: dict[str, StockItem]  # product key -> stock item
    initial_stock: int

    @property
    def seller_ids(self) -> list[int]:
        return [seller.seller_id for seller in self.sellers]

    @property
    def customer_ids(self) -> list[int]:
        return [customer.customer_id for customer in self.customers]

    def product_by_key(self, key: str) -> Product | None:
        for product in self.products + self.reserve_products:
            if product.key == key:
                return product
        return None

    def all_products(self) -> list[Product]:
        return list(self.products) + list(self.reserve_products)

    def summary(self) -> dict[str, int]:
        return {
            "sellers": len(self.sellers),
            "customers": len(self.customers),
            "products": len(self.products),
            "reserve_products": len(self.reserve_products),
            "stock_items": len(self.stock),
        }
