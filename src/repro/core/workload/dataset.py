"""The generated dataset handed to apps for ingestion."""

from __future__ import annotations

import dataclasses

from repro.core.workload.distributions import ProductKeyRegistry
from repro.marketplace.entities import Customer, Product, Seller, StockItem


@dataclasses.dataclass
class Dataset:
    """Everything the driver ingests before the measured window.

    ``products`` are the initially live products; ``reserve_products``
    are pre-provisioned replacements used by the delete-compensation
    scheme (they are ingested up front, with stock, so a rank rebinding
    needs no mid-run ingestion).
    """

    sellers: list[Seller]
    customers: list[Customer]
    products: list[Product]
    reserve_products: list[Product]
    stock: dict[str, StockItem]  # product key -> stock item
    initial_stock: int
    #: Eager datasets are fully materialised; the lazy variant
    #: (``lazydataset.LazyDataset``) overrides this.
    lazy = False

    _key_index: dict[str, Product] | None = dataclasses.field(
        default=None, init=False, repr=False, compare=False)

    @property
    def seller_ids(self) -> list[int]:
        return [seller.seller_id for seller in self.sellers]

    @property
    def customer_ids(self) -> list[int]:
        return [customer.customer_id for customer in self.customers]

    def product_by_key(self, key: str) -> Product | None:
        if self._key_index is None:
            self._key_index = {
                product.key: product
                for product in self.products + self.reserve_products}
        return self._key_index.get(key)

    def all_products(self) -> list[Product]:
        return list(self.products) + list(self.reserve_products)

    def make_registry(self) -> ProductKeyRegistry:
        """The delete-compensation registry over this dataset's keys."""
        initial = [(product.seller_id, product.product_id)
                   for product in self.products]
        reserve = [(product.seller_id, product.product_id)
                   for product in self.reserve_products]
        return ProductKeyRegistry(initial, reserve)

    def summary(self) -> dict[str, int]:
        return {
            "sellers": len(self.sellers),
            "customers": len(self.customers),
            "products": len(self.products),
            "reserve_products": len(self.reserve_products),
            "stock_items": len(self.stock),
        }
