"""Key-selection machinery: Zipfian sampling and delete compensation.

The paper calls out two practical driver challenges: "accounting for
deleted products while not impacting key distribution and providing
safe concurrent accesses to data that form transaction inputs".  The
:class:`ProductKeyRegistry` solves the first: popularity ranks are
stable, and a deleted product's rank is transparently remapped to a
fresh replacement product, so the Zipfian shape of the workload never
drifts as deletes accumulate.
"""

from __future__ import annotations

import bisect
import math
import random
import typing

#: Largest keyspace for which :func:`make_rank_sampler` builds the
#: exact CDF sampler.  Above this the O(1) approximate sampler takes
#: over; below it legacy scenarios keep their exact draw sequences.
EXACT_SAMPLER_MAX = 4096

#: Ranks covered exactly by :class:`ApproxZipfSampler`'s head table.
#: Fixed regardless of n, so memory stays constant.
_APPROX_HEAD = 64


class ZipfSampler:
    """Samples ranks 0..n-1 with probability proportional to 1/(r+1)^s.

    ``s = 0`` degenerates to uniform.  Sampling is by inverse transform
    over the precomputed CDF (O(log n) per draw, deterministic given the
    RNG).
    """

    def __init__(self, n: int, s: float, rng: random.Random) -> None:
        if n < 1:
            raise ValueError("need at least one rank")
        if s < 0:
            raise ValueError("zipf exponent must be >= 0")
        self.n = n
        self.s = s
        self._rng = rng
        weights = [1.0 / ((rank + 1) ** s) for rank in range(n)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard against floating-point shortfall

    def sample(self) -> int:
        """Draw one rank."""
        point = self._rng.random()
        return bisect.bisect_left(self._cdf, point)

    def probability(self, rank: int) -> float:
        """The probability mass of ``rank``."""
        if rank == 0:
            return self._cdf[0]
        return self._cdf[rank] - self._cdf[rank - 1]


class ApproxZipfSampler:
    """O(1)-memory, O(1)-time Zipfian sampling over huge rank spaces.

    The exact sampler's n-entry CDF is unaffordable at 10^6-10^7 ranks.
    This sampler keeps a fixed-size exact head (the first
    ``_APPROX_HEAD`` ranks, where nearly all the skewed mass lives) and
    approximates the tail with the continuous density ``x**-s`` sampled
    by closed-form inverse transform — the midpoint-rule pairing of
    rank ``k`` with the interval ``[k + 0.5, k + 1.5)`` keeps the
    per-rank error at O(s*(s+1)/k^2) relative, Gray-style.  One uniform
    draw per sample, same as the exact sampler.
    """

    def __init__(self, n: int, s: float, rng: random.Random) -> None:
        if n < 1:
            raise ValueError("need at least one rank")
        if s < 0:
            raise ValueError("zipf exponent must be >= 0")
        self.n = n
        self.s = s
        self._rng = rng
        head = min(n, _APPROX_HEAD)
        self._head_cdf: list[float] = []
        cumulative = 0.0
        for rank in range(head):
            cumulative += 1.0 / ((rank + 1) ** s)
            self._head_cdf.append(cumulative)
        self._head_mass = cumulative
        # Continuous tail over x in [head + 0.5, n + 0.5): value k + 1
        # owns [k + 0.5, k + 1.5), so the integral of x**-s over each
        # interval midpoint-approximates the true weight (k + 1)**-s.
        self._tail_lo = head + 0.5
        self._tail_hi = n + 0.5
        self._tail_mass = self._integral(self._tail_lo, self._tail_hi)
        self._total = self._head_mass + self._tail_mass

    def _integral(self, lo: float, hi: float) -> float:
        if hi <= lo:
            return 0.0
        if self.s == 1.0:
            return math.log(hi / lo)
        p = 1.0 - self.s
        return (hi ** p - lo ** p) / p

    def sample(self) -> int:
        point = self._rng.random() * self._total
        if point < self._head_mass:
            return bisect.bisect_left(self._head_cdf, point)
        fraction = (point - self._head_mass) / self._tail_mass
        if self.s == 1.0:
            x = self._tail_lo * (self._tail_hi / self._tail_lo) ** fraction
        else:
            p = 1.0 - self.s
            x = (self._tail_lo ** p
                 + fraction * self._tail_mass * p) ** (1.0 / p)
        rank = int(x + 0.5) - 1
        return min(self.n - 1, max(len(self._head_cdf), rank))

    def probability(self, rank: int) -> float:
        """Analytic mass of ``rank`` under the approximated normaliser."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range")
        return (1.0 / ((rank + 1) ** self.s)) / self._total


def make_rank_sampler(n: int, s: float,
                      rng: random.Random) -> "ZipfSampler | ApproxZipfSampler":
    """Exact CDF sampler for small keyspaces, O(1) approximation above.

    Legacy scenarios (hundreds of products) keep their exact,
    bit-stable draw sequences; million-key worlds get constant memory.
    """
    if n <= EXACT_SAMPLER_MAX:
        return ZipfSampler(n, s, rng)
    return ApproxZipfSampler(n, s, rng)


class HotspotSampler:
    """A toggleable hot-key overlay on a base rank sampler.

    While a hotspot is armed, each draw routes to one of the designated
    hot ranks with the configured probability and falls through to the
    base (Zipfian) sampler otherwise — the temporary skew spike of a
    flash sale.  Scenario controllers arm and clear the hotspot at
    phase boundaries; with no hotspot armed the overlay is transparent.
    """

    def __init__(self, base: "ZipfSampler | ApproxZipfSampler",
                 rng: random.Random) -> None:
        self.base = base
        self._rng = rng
        self._hot_ranks: list[int] = []
        self._probability = 0.0
        self.hot_draws = 0

    @property
    def n(self) -> int:
        return self.base.n

    @property
    def active(self) -> bool:
        return bool(self._hot_ranks)

    def set_hotspot(self, ranks: typing.Sequence[int],
                    probability: float) -> None:
        if not ranks:
            raise ValueError("need at least one hot rank")
        if not 0 < probability <= 1:
            raise ValueError("probability must be in (0, 1]")
        for rank in ranks:
            if not 0 <= rank < self.base.n:
                raise ValueError(f"rank {rank} out of range")
        self._hot_ranks = list(ranks)
        self._probability = probability

    def clear_hotspot(self) -> None:
        self._hot_ranks = []
        self._probability = 0.0

    def sample(self) -> int:
        if self._hot_ranks and self._rng.random() < self._probability:
            self.hot_draws += 1
            return self._rng.choice(self._hot_ranks)
        return self.base.sample()


class ProductKeyRegistry:
    """Stable popularity ranks over a mutable product population.

    Each rank maps to the currently live product occupying it.  When a
    product is deleted the rank is immediately rebound to a replacement
    drawn from the reserve pool, keeping the key distribution intact.
    When the reserve pool runs dry, deletes are refused (the driver then
    skips the delete and picks another transaction), which bounds the
    experiment instead of distorting it.
    """

    def __init__(self, initial: typing.Sequence[tuple[int, int]],
                 reserve: typing.Sequence[tuple[int, int]]) -> None:
        self._by_rank: list[tuple[int, int]] = list(initial)
        self._reserve: list[tuple[int, int]] = list(reserve)
        self._live: set[tuple[int, int]] = set(initial)
        self.deletes = 0
        self.refused_deletes = 0

    def __len__(self) -> int:
        return len(self._by_rank)

    def product_at(self, rank: int) -> tuple[int, int]:
        """(seller_id, product_id) currently bound to ``rank``."""
        return self._by_rank[rank]

    def rank_of(self, key: tuple[int, int]) -> int | None:
        try:
            return self._by_rank.index(key)
        except ValueError:
            return None

    def is_live(self, key: tuple[int, int]) -> bool:
        return key in self._live

    @property
    def reserve_remaining(self) -> int:
        return len(self._reserve)

    def delete_at(self, rank: int) -> tuple[tuple[int, int],
                                            tuple[int, int]] | None:
        """Delete the product at ``rank``; rebind to a replacement.

        Returns (deleted key, replacement key), or None when no reserve
        product is available (delete refused).
        """
        if not self._reserve:
            self.refused_deletes += 1
            return None
        deleted = self._by_rank[rank]
        replacement = self._reserve.pop()
        self._by_rank[rank] = replacement
        self._live.discard(deleted)
        self._live.add(replacement)
        self.deletes += 1
        return deleted, replacement

    def live_products(self) -> list[tuple[int, int]]:
        return list(self._by_rank)


class VirtualProductKeyRegistry:
    """:class:`ProductKeyRegistry` semantics over an arithmetic keyspace.

    The eager registry materialises one tuple per rank plus the whole
    reserve list — O(keyspace) memory before the first transaction.
    This registry derives rank <-> key from the generator's id layout
    (seller ``s`` owns product ids ``(s-1)*block + 1 .. s*block`` with
    the first ``products_per_seller`` live and the rest reserve) and
    stores only the deviations deletes introduce, so memory is
    O(deletes) no matter how many ranks exist.  Reserve keys are
    consumed from the END of the virtual reserve list, matching the
    eager registry's ``list.pop()`` order key for key.
    """

    def __init__(self, sellers: int, products_per_seller: int,
                 reserve_per_seller: int) -> None:
        if min(sellers, products_per_seller, reserve_per_seller) < 1:
            raise ValueError("need >= 1 seller, product and reserve each")
        self._sellers = sellers
        self._per_seller = products_per_seller
        self._reserve_per_seller = reserve_per_seller
        self._block = products_per_seller + reserve_per_seller
        self._n = sellers * products_per_seller
        #: Index (in eager reserve-list order) of the next reserve key
        #: to hand out; counts DOWN because the eager pool pops the end.
        self._reserve_next = sellers * reserve_per_seller - 1
        self._rebound: dict[int, tuple[int, int]] = {}  # rank -> new key
        self._rebound_ranks: dict[tuple[int, int], int] = {}
        self._deleted: set[tuple[int, int]] = set()
        self.deletes = 0
        self.refused_deletes = 0

    def __len__(self) -> int:
        return self._n

    def _initial_at(self, rank: int) -> tuple[int, int]:
        seller = rank // self._per_seller + 1
        offset = rank % self._per_seller
        return seller, (seller - 1) * self._block + offset + 1

    def _reserve_key(self, index: int) -> tuple[int, int]:
        seller = index // self._reserve_per_seller + 1
        offset = index % self._reserve_per_seller
        product_id = ((seller - 1) * self._block
                      + self._per_seller + offset + 1)
        return seller, product_id

    def product_at(self, rank: int) -> tuple[int, int]:
        """(seller_id, product_id) currently bound to ``rank``."""
        if not 0 <= rank < self._n:
            raise IndexError(f"rank {rank} out of range")
        rebound = self._rebound.get(rank)
        if rebound is not None:
            return rebound
        return self._initial_at(rank)

    def rank_of(self, key: tuple[int, int]) -> int | None:
        rank = self._rebound_ranks.get(key)
        if rank is not None:
            return rank
        seller, product_id = key
        if not 1 <= seller <= self._sellers:
            return None
        offset = product_id - 1 - (seller - 1) * self._block
        if not 0 <= offset < self._per_seller:
            return None
        rank = (seller - 1) * self._per_seller + offset
        # An initially-bound key whose rank was since rebound elsewhere
        # is no longer present anywhere in the registry.
        return None if rank in self._rebound else rank

    def is_live(self, key: tuple[int, int]) -> bool:
        if key in self._deleted:
            return False
        if key in self._rebound_ranks:
            return True
        seller, product_id = key
        if not 1 <= seller <= self._sellers:
            return False
        offset = product_id - 1 - (seller - 1) * self._block
        return 0 <= offset < self._per_seller

    @property
    def reserve_remaining(self) -> int:
        return self._reserve_next + 1

    def delete_at(self, rank: int) -> tuple[tuple[int, int],
                                            tuple[int, int]] | None:
        """Delete the product at ``rank``; rebind to a replacement.

        Returns (deleted key, replacement key), or None when no reserve
        product is available (delete refused).
        """
        if self._reserve_next < 0:
            self.refused_deletes += 1
            return None
        deleted = self.product_at(rank)
        replacement = self._reserve_key(self._reserve_next)
        self._reserve_next -= 1
        self._rebound_ranks.pop(deleted, None)
        self._rebound[rank] = replacement
        self._rebound_ranks[replacement] = rank
        self._deleted.add(deleted)
        self.deletes += 1
        return deleted, replacement

    def live_products(self) -> list[tuple[int, int]]:
        """Materialise every live key — O(n); for small-world tests."""
        return [self.product_at(rank) for rank in range(self._n)]
