"""Key-selection machinery: Zipfian sampling and delete compensation.

The paper calls out two practical driver challenges: "accounting for
deleted products while not impacting key distribution and providing
safe concurrent accesses to data that form transaction inputs".  The
:class:`ProductKeyRegistry` solves the first: popularity ranks are
stable, and a deleted product's rank is transparently remapped to a
fresh replacement product, so the Zipfian shape of the workload never
drifts as deletes accumulate.
"""

from __future__ import annotations

import bisect
import random
import typing


class ZipfSampler:
    """Samples ranks 0..n-1 with probability proportional to 1/(r+1)^s.

    ``s = 0`` degenerates to uniform.  Sampling is by inverse transform
    over the precomputed CDF (O(log n) per draw, deterministic given the
    RNG).
    """

    def __init__(self, n: int, s: float, rng: random.Random) -> None:
        if n < 1:
            raise ValueError("need at least one rank")
        if s < 0:
            raise ValueError("zipf exponent must be >= 0")
        self.n = n
        self.s = s
        self._rng = rng
        weights = [1.0 / ((rank + 1) ** s) for rank in range(n)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard against floating-point shortfall

    def sample(self) -> int:
        """Draw one rank."""
        point = self._rng.random()
        return bisect.bisect_left(self._cdf, point)

    def probability(self, rank: int) -> float:
        """The probability mass of ``rank``."""
        if rank == 0:
            return self._cdf[0]
        return self._cdf[rank] - self._cdf[rank - 1]


class HotspotSampler:
    """A toggleable hot-key overlay on a base rank sampler.

    While a hotspot is armed, each draw routes to one of the designated
    hot ranks with the configured probability and falls through to the
    base (Zipfian) sampler otherwise — the temporary skew spike of a
    flash sale.  Scenario controllers arm and clear the hotspot at
    phase boundaries; with no hotspot armed the overlay is transparent.
    """

    def __init__(self, base: ZipfSampler, rng: random.Random) -> None:
        self.base = base
        self._rng = rng
        self._hot_ranks: list[int] = []
        self._probability = 0.0
        self.hot_draws = 0

    @property
    def n(self) -> int:
        return self.base.n

    @property
    def active(self) -> bool:
        return bool(self._hot_ranks)

    def set_hotspot(self, ranks: typing.Sequence[int],
                    probability: float) -> None:
        if not ranks:
            raise ValueError("need at least one hot rank")
        if not 0 < probability <= 1:
            raise ValueError("probability must be in (0, 1]")
        for rank in ranks:
            if not 0 <= rank < self.base.n:
                raise ValueError(f"rank {rank} out of range")
        self._hot_ranks = list(ranks)
        self._probability = probability

    def clear_hotspot(self) -> None:
        self._hot_ranks = []
        self._probability = 0.0

    def sample(self) -> int:
        if self._hot_ranks and self._rng.random() < self._probability:
            self.hot_draws += 1
            return self._rng.choice(self._hot_ranks)
        return self.base.sample()


class ProductKeyRegistry:
    """Stable popularity ranks over a mutable product population.

    Each rank maps to the currently live product occupying it.  When a
    product is deleted the rank is immediately rebound to a replacement
    drawn from the reserve pool, keeping the key distribution intact.
    When the reserve pool runs dry, deletes are refused (the driver then
    skips the delete and picks another transaction), which bounds the
    experiment instead of distorting it.
    """

    def __init__(self, initial: typing.Sequence[tuple[int, int]],
                 reserve: typing.Sequence[tuple[int, int]]) -> None:
        self._by_rank: list[tuple[int, int]] = list(initial)
        self._reserve: list[tuple[int, int]] = list(reserve)
        self._live: set[tuple[int, int]] = set(initial)
        self.deletes = 0
        self.refused_deletes = 0

    def __len__(self) -> int:
        return len(self._by_rank)

    def product_at(self, rank: int) -> tuple[int, int]:
        """(seller_id, product_id) currently bound to ``rank``."""
        return self._by_rank[rank]

    def rank_of(self, key: tuple[int, int]) -> int | None:
        try:
            return self._by_rank.index(key)
        except ValueError:
            return None

    def is_live(self, key: tuple[int, int]) -> bool:
        return key in self._live

    @property
    def reserve_remaining(self) -> int:
        return len(self._reserve)

    def delete_at(self, rank: int) -> tuple[tuple[int, int],
                                            tuple[int, int]] | None:
        """Delete the product at ``rank``; rebind to a replacement.

        Returns (deleted key, replacement key), or None when no reserve
        product is available (delete refused).
        """
        if not self._reserve:
            self.refused_deletes += 1
            return None
        deleted = self._by_rank[rank]
        replacement = self._reserve.pop()
        self._by_rank[rank] = replacement
        self._live.discard(deleted)
        self._live.add(replacement)
        self.deletes += 1
        return deleted, replacement

    def live_products(self) -> list[tuple[int, int]]:
        return list(self._by_rank)
