"""Safe concurrent transaction-input selection.

The second driver challenge the paper names: "providing safe concurrent
accesses to data that form transaction inputs".  Two workers must not
simultaneously drive the same customer's cart through checkout, nor
interleave delete/price-update on the same product.  The
:class:`InputCoordinator` hands out exclusive leases on customers and
products; busy keys are skipped, never blocked on, so the workload
keeps its open/closed-loop timing behaviour.
"""

from __future__ import annotations

import random
import typing

from repro.core.workload.distributions import ProductKeyRegistry, ZipfSampler


class InputCoordinator:
    """Leases over customers and products for concurrent workers."""

    def __init__(self, customer_ids: typing.Sequence[int],
                 registry: ProductKeyRegistry,
                 sampler: ZipfSampler,
                 rng: random.Random) -> None:
        if not customer_ids:
            raise ValueError("need at least one customer")
        # A range (lazy datasets) is kept as-is: rng.choice indexes it
        # in O(1) and copying 10^5+ ids would defeat lazy generation.
        self._customer_ids = (customer_ids
                              if isinstance(customer_ids, (list, range))
                              else list(customer_ids))
        self._registry = registry
        self._sampler = sampler
        self._rng = rng
        self._busy_customers: set[int] = set()
        self._busy_products: set[tuple[int, int]] = set()
        self.skipped_customers = 0
        self.skipped_products = 0

    # ------------------------------------------------------------------
    # customers
    # ------------------------------------------------------------------
    def lease_customer(self, attempts: int = 8) -> int | None:
        """Lease a random free customer (None if all sampled were busy)."""
        for _ in range(attempts):
            customer_id = self._rng.choice(self._customer_ids)
            if customer_id not in self._busy_customers:
                self._busy_customers.add(customer_id)
                return customer_id
            self.skipped_customers += 1
        return None

    def release_customer(self, customer_id: int) -> None:
        self._busy_customers.discard(customer_id)

    # ------------------------------------------------------------------
    # products
    # ------------------------------------------------------------------
    def sample_product(self) -> tuple[int, int]:
        """Zipfian product sample (no lease; used for cart composition)."""
        rank = self._sampler.sample()
        return self._registry.product_at(rank)

    def lease_product(self, attempts: int = 8) -> tuple[int,
                                                        tuple[int, int]] | None:
        """Lease the product at a Zipfian rank for exclusive mutation.

        Returns (rank, key) or None when all sampled ranks were busy.
        """
        for _ in range(attempts):
            rank = self._sampler.sample()
            key = self._registry.product_at(rank)
            if key not in self._busy_products:
                self._busy_products.add(key)
                return rank, key
            self.skipped_products += 1
        return None

    def release_product(self, key: tuple[int, int]) -> None:
        self._busy_products.discard(key)

    def delete_leased_product(self, rank: int) -> tuple[
            tuple[int, int], tuple[int, int]] | None:
        """Perform registry-side delete compensation for a leased rank."""
        return self._registry.delete_at(rank)
