"""Synthetic data generation for Online Marketplace."""

from __future__ import annotations

import random

from repro.core.workload.config import WorkloadConfig
from repro.core.workload.dataset import Dataset
from repro.marketplace.entities import Customer, Product, Seller, StockItem

_CATEGORIES = (
    "electronics", "books", "home", "toys", "sports", "fashion",
    "garden", "grocery", "beauty", "automotive",
)

_CITIES = (
    "copenhagen", "aarhus", "odense", "aalborg", "esbjerg", "randers",
)


def generate_dataset(config: WorkloadConfig, seed: int = 0):
    """Generate sellers, customers, products, reserves and stock.

    Deterministic for a given (config, seed) pair; product ids are
    globally unique across sellers so the delete-compensation registry
    can track identity by (seller_id, product_id).

    With ``config.lazy_dataset`` set, returns a
    :class:`~repro.core.workload.lazydataset.LazyDataset` that creates
    each record on first touch instead of materialising the keyspace.
    The eager path below is frozen — its single sequential RNG stream
    is what keeps legacy payloads byte-identical.
    """
    if config.lazy_dataset:
        from repro.core.workload.lazydataset import LazyDataset
        return LazyDataset(config, seed=seed)
    rng = random.Random(seed)
    sellers = [
        Seller(seller_id=index + 1, name=f"seller-{index + 1}",
               city=rng.choice(_CITIES))
        for index in range(config.sellers)]
    customers = [
        Customer(customer_id=index + 1, name=f"customer-{index + 1}",
                 city=rng.choice(_CITIES))
        for index in range(config.customers)]

    products: list[Product] = []
    reserve_products: list[Product] = []
    reserve_per_seller = max(
        1, int(config.products_per_seller * config.reserve_fraction))
    next_product_id = 1
    for seller in sellers:
        for _ in range(config.products_per_seller):
            products.append(_make_product(rng, config, seller.seller_id,
                                          next_product_id))
            next_product_id += 1
        for _ in range(reserve_per_seller):
            reserve_products.append(
                _make_product(rng, config, seller.seller_id,
                              next_product_id))
            next_product_id += 1

    stock = {}
    for product in products + reserve_products:
        stock[product.key] = StockItem(
            product_id=product.product_id, seller_id=product.seller_id,
            qty_available=config.initial_stock)
    return Dataset(sellers=sellers, customers=customers,
                   products=products, reserve_products=reserve_products,
                   stock=stock, initial_stock=config.initial_stock)


def _make_product(rng: random.Random, config: WorkloadConfig,
                  seller_id: int, product_id: int) -> Product:
    price = rng.randint(config.min_price_cents, config.max_price_cents)
    return Product(
        product_id=product_id, seller_id=seller_id,
        name=f"product-{product_id}", category=rng.choice(_CATEGORIES),
        price_cents=price)
