"""Million-entity worlds: records generated on first touch.

The eager generator materialises every Customer/Product/StockItem up
front, so memory is O(keyspace).  :class:`LazyDataset` instead derives
each record from a per-entity seeded RNG the moment it is first
touched: the seed is a stable digest of ``(dataset seed, entity kind,
entity id)``, so ANY touch order yields byte-identical records and the
resident set only ever contains what the run actually used.

Two deliberate contracts:

* Per-entity seeds use :func:`hashlib.blake2b` over a text key — never
  Python's ``hash()``, whose per-process randomisation
  (``PYTHONHASHSEED``) would break the matrix's cross-process
  bit-identity guarantee.
* The legacy eager generator draws all records from ONE sequential RNG
  stream, which cannot be reproduced per-entity in O(1).  Its output is
  therefore frozen (legacy payloads stay byte-identical) and the lazy
  scheme defines its own record values; ids, keys and names follow the
  exact same layout, and :meth:`materialize` produces the lazy world
  eagerly for small-config comparison tests.
"""

from __future__ import annotations

import hashlib
import random

from repro.core.workload.config import WorkloadConfig
from repro.core.workload.dataset import Dataset
from repro.core.workload.distributions import VirtualProductKeyRegistry
from repro.marketplace.entities import (Customer, Product, Seller, StockItem,
                                        product_key)
from repro.core.workload import generator as _generator


def entity_seed(seed: int, kind: str, ident: str | int) -> int:
    """Stable 64-bit per-entity RNG seed (cross-process deterministic)."""
    digest = hashlib.blake2b(
        f"{seed}:{kind}:{ident}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class LazyDataset:
    """A :class:`Dataset` lookalike that generates records on demand.

    Shares the eager generator's id layout: seller ``s`` (1-based) owns
    the product-id block ``(s-1)*(P+R)+1 .. s*(P+R)`` where the first
    ``P = products_per_seller`` ids are initially live and the trailing
    ``R`` are delete-compensation reserves.
    """

    lazy = True

    def __init__(self, config: WorkloadConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.initial_stock = config.initial_stock
        self.reserve_per_seller = max(
            1, int(config.products_per_seller * config.reserve_fraction))
        self._block = config.products_per_seller + self.reserve_per_seller
        self._sellers: dict[int, Seller] = {}
        self._customers: dict[int, Customer] = {}
        self._products: dict[str, Product] = {}
        self._stock: dict[str, StockItem] = {}

    # ------------------------------------------------------------------
    # per-entity record generation (memoised)
    # ------------------------------------------------------------------
    def seller(self, seller_id: int) -> Seller:
        record = self._sellers.get(seller_id)
        if record is None:
            if not 1 <= seller_id <= self.config.sellers:
                raise KeyError(f"seller {seller_id} out of range")
            rng = random.Random(entity_seed(self.seed, "seller", seller_id))
            record = Seller(seller_id=seller_id, name=f"seller-{seller_id}",
                            city=rng.choice(_generator._CITIES))
            self._sellers[seller_id] = record
        return record

    def customer(self, customer_id: int) -> Customer:
        record = self._customers.get(customer_id)
        if record is None:
            if not 1 <= customer_id <= self.config.customers:
                raise KeyError(f"customer {customer_id} out of range")
            rng = random.Random(
                entity_seed(self.seed, "customer", customer_id))
            record = Customer(customer_id=customer_id,
                              name=f"customer-{customer_id}",
                              city=rng.choice(_generator._CITIES))
            self._customers[customer_id] = record
        return record

    def product(self, seller_id: int, product_id: int) -> Product:
        key = product_key(seller_id, product_id)
        record = self._products.get(key)
        if record is None:
            if not self._owns(seller_id, product_id):
                raise KeyError(f"product {key} out of range")
            rng = random.Random(entity_seed(self.seed, "product", key))
            price = rng.randint(self.config.min_price_cents,
                                self.config.max_price_cents)
            record = Product(
                product_id=product_id, seller_id=seller_id,
                name=f"product-{product_id}",
                category=rng.choice(_generator._CATEGORIES),
                price_cents=price)
            self._products[key] = record
        return record

    def stock_item(self, seller_id: int, product_id: int) -> StockItem:
        key = product_key(seller_id, product_id)
        record = self._stock.get(key)
        if record is None:
            if not self._owns(seller_id, product_id):
                raise KeyError(f"stock {key} out of range")
            record = StockItem(product_id=product_id, seller_id=seller_id,
                               qty_available=self.config.initial_stock)
            self._stock[key] = record
        return record

    def _owns(self, seller_id: int, product_id: int) -> bool:
        if not 1 <= seller_id <= self.config.sellers:
            return False
        offset = product_id - 1 - (seller_id - 1) * self._block
        return 0 <= offset < self._block

    # ------------------------------------------------------------------
    # Dataset interface
    # ------------------------------------------------------------------
    @property
    def seller_ids(self) -> range:
        return range(1, self.config.sellers + 1)

    @property
    def customer_ids(self) -> range:
        return range(1, self.config.customers + 1)

    def product_by_key(self, key: str) -> Product | None:
        try:
            seller_id, product_id = (int(part) for part in key.split("/"))
        except ValueError:
            return None
        if not self._owns(seller_id, product_id):
            return None
        return self.product(seller_id, product_id)

    def all_products(self) -> list[Product]:
        raise RuntimeError(
            "LazyDataset cannot enumerate the keyspace — apps must ingest "
            "on demand via touch_*; use materialize() in small-world tests")

    def make_registry(self) -> VirtualProductKeyRegistry:
        """The delete-compensation registry over the virtual keyspace."""
        return VirtualProductKeyRegistry(
            self.config.sellers, self.config.products_per_seller,
            self.reserve_per_seller)

    def summary(self) -> dict[str, int]:
        config = self.config
        return {
            "sellers": config.sellers,
            "customers": config.customers,
            "products": config.sellers * config.products_per_seller,
            "reserve_products": config.sellers * self.reserve_per_seller,
            "stock_items": config.sellers * self._block,
            "touched_sellers": len(self._sellers),
            "touched_customers": len(self._customers),
            "touched_products": len(self._products),
        }

    def materialize(self) -> Dataset:
        """Eagerly build the whole lazy world (small configs only).

        Record values come from the same per-entity scheme as on-demand
        touches, so any partially-touched LazyDataset agrees with this
        byte for byte.
        """
        config = self.config
        sellers = [self.seller(i) for i in self.seller_ids]
        customers = [self.customer(i) for i in self.customer_ids]
        products: list[Product] = []
        reserve_products: list[Product] = []
        stock: dict[str, StockItem] = {}
        for seller_id in self.seller_ids:
            base = (seller_id - 1) * self._block
            for offset in range(self._block):
                product = self.product(seller_id, base + offset + 1)
                if offset < config.products_per_seller:
                    products.append(product)
                else:
                    reserve_products.append(product)
        for product in products + reserve_products:
            stock[product.key] = self.stock_item(product.seller_id,
                                                 product.product_id)
        return Dataset(sellers=sellers, customers=customers,
                       products=products, reserve_products=reserve_products,
                       stock=stock, initial_stock=config.initial_stock)
