"""In-memory key-value store with primary-secondary replication.

This is the repository's stand-in for the Redis deployment used by the
paper's *Customized Orleans* implementation: product updates are written
to a primary and replicated asynchronously to secondaries; causal
sessions (version vectors) let carts read product data without going
backwards in causal time.
"""

from repro.kvstore.replication import CausalSession, Replica, ReplicatedKV
from repro.kvstore.store import KVStore, Versioned
from repro.kvstore.versionclock import VersionVector

__all__ = [
    "CausalSession",
    "KVStore",
    "Replica",
    "ReplicatedKV",
    "Versioned",
    "VersionVector",
]
