"""Single-node key-value store primitives."""

from __future__ import annotations

import dataclasses
import typing

from repro.kvstore.versionclock import VersionVector

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment


@dataclasses.dataclass(frozen=True)
class Versioned:
    """A value paired with the version vector under which it was written."""

    value: object
    version: VersionVector
    write_time: float


class KVStore:
    """A simple in-memory key-value store with simulated access latency.

    All operations are process helpers (``yield from store.get(...)``)
    so that access latency is charged in simulated time.
    """

    def __init__(self, env: "Environment", name: str,
                 read_latency: float = 0.0001,
                 write_latency: float = 0.00015) -> None:
        self.env = env
        self.name = name
        self.read_latency = read_latency
        self.write_latency = write_latency
        self._data: dict[str, Versioned] = {}
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # immediate (zero-latency) accessors used by auditors and tests
    # ------------------------------------------------------------------
    def peek(self, key: str) -> Versioned | None:
        """Read without charging latency (for audits, not workloads)."""
        return self._data.get(key)

    def keys(self) -> list[str]:
        return list(self._data)

    def put_now(self, key: str, value: object,
                version: VersionVector | None = None) -> Versioned:
        """Write without charging latency (for audits/ingestion shortcuts)."""
        entry = Versioned(value=value,
                          version=version or VersionVector(),
                          write_time=self.env.now)
        self._data[key] = entry
        self.writes += 1
        return entry

    def delete_now(self, key: str) -> bool:
        self.writes += 1
        return self._data.pop(key, None) is not None

    # ------------------------------------------------------------------
    # simulated-latency operations
    # ------------------------------------------------------------------
    def get(self, key: str):
        """Process helper: read ``key`` (returns ``Versioned`` or None)."""
        yield self.env.timeout(self.read_latency)
        self.reads += 1
        return self._data.get(key)

    def put(self, key: str, value: object,
            version: VersionVector | None = None):
        """Process helper: write ``key``."""
        yield self.env.timeout(self.write_latency)
        return self.put_now(key, value, version)

    def delete(self, key: str):
        """Process helper: delete ``key``; returns True if it existed."""
        yield self.env.timeout(self.write_latency)
        return self.delete_now(key)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data
