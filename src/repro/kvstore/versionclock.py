"""Version vectors for causal ordering of replicated writes."""

from __future__ import annotations

import typing


class VersionVector:
    """A mapping node-id -> counter with the usual partial order.

    ``a <= b`` iff every counter in ``a`` is <= the corresponding counter
    in ``b``.  Two vectors are *concurrent* when neither dominates.
    """

    __slots__ = ("_clock",)

    def __init__(self, clock: typing.Mapping[str, int] | None = None) -> None:
        self._clock: dict[str, int] = dict(clock or {})

    def get(self, node: str) -> int:
        return self._clock.get(node, 0)

    def increment(self, node: str) -> "VersionVector":
        """Return a new vector with ``node``'s counter advanced by one."""
        clock = dict(self._clock)
        clock[node] = clock.get(node, 0) + 1
        return VersionVector(clock)

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum of the two vectors."""
        clock = dict(self._clock)
        for node, counter in other._clock.items():
            if counter > clock.get(node, 0):
                clock[node] = counter
        return VersionVector(clock)

    def dominates(self, other: "VersionVector") -> bool:
        """True when ``self >= other`` pointwise."""
        return all(self.get(node) >= counter
                   for node, counter in other._clock.items())

    def concurrent_with(self, other: "VersionVector") -> bool:
        return not self.dominates(other) and not other.dominates(self)

    def copy(self) -> "VersionVector":
        return VersionVector(self._clock)

    def as_dict(self) -> dict[str, int]:
        return dict(self._clock)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        # Missing entries are implicitly zero.
        nodes = set(self._clock) | set(other._clock)
        return all(self.get(node) == other.get(node) for node in nodes)

    def __hash__(self) -> int:
        return hash(tuple(sorted(
            (node, counter) for node, counter in self._clock.items()
            if counter)))

    def __le__(self, other: "VersionVector") -> bool:
        return other.dominates(self)

    def __repr__(self) -> str:
        inner = ", ".join(f"{node}:{counter}" for node, counter
                          in sorted(self._clock.items()))
        return f"<VV {inner}>"
