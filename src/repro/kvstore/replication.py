"""Primary-secondary replication with eventual and causal read modes.

The primary accepts all writes and streams them to replicas with a
configurable replication lag.  Readers may attach a
:class:`CausalSession`; reads through a session never go backwards in
causal time — if a replica has not yet caught up with everything the
session has observed, the read blocks until it has (the mechanism the
paper offloads to a Redis primary-secondary deployment).
"""

from __future__ import annotations

import typing

from repro.kvstore.store import KVStore, Versioned
from repro.kvstore.versionclock import VersionVector

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment


class CausalSession:
    """Tracks the causal frontier a client has observed.

    Guarantees provided when every read/write goes through the session:
    *read-your-writes* and *monotonic reads* — together these give the
    causal replication semantics prescribed for Product -> Cart.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.frontier = VersionVector()

    def observe(self, version: VersionVector) -> None:
        self.frontier = self.frontier.merge(version)

    def satisfied_by(self, version: VersionVector) -> bool:
        """Would reading state at ``version`` violate the session?"""
        return version.dominates(self.frontier)


class Replica:
    """A read-only secondary that applies the primary's stream in order."""

    def __init__(self, env: "Environment", name: str,
                 read_latency: float) -> None:
        self.env = env
        self.name = name
        self.store = KVStore(env, name, read_latency=read_latency)
        self.applied = VersionVector()
        self.apply_log: list[tuple[float, str, VersionVector]] = []
        self._waiters: list[tuple[VersionVector, object]] = []

    def apply(self, key: str, entry: Versioned | None) -> None:
        """Apply one replicated write (None entry means delete)."""
        if entry is None:
            self.store.delete_now(key)
        else:
            self.store.put_now(key, entry.value, entry.version)
            self.applied = self.applied.merge(entry.version)
        self.apply_log.append((self.env.now, key, self.applied.copy()))
        # Wake any causal readers whose frontier is now covered.
        still_waiting = []
        for frontier, event in self._waiters:
            if self.applied.dominates(frontier):
                event.succeed()
            else:
                still_waiting.append((frontier, event))
        self._waiters = still_waiting

    def wait_for(self, frontier: VersionVector):
        """Process helper: block until this replica covers ``frontier``."""
        if self.applied.dominates(frontier):
            return
            yield  # pragma: no cover - makes this a generator
        event = self.env.event()
        self._waiters.append((frontier, event))
        yield event


class ReplicatedKV:
    """A primary plus N secondaries with asynchronous replication.

    Parameters
    ----------
    replication_lag:
        One-way delay before a primary write is applied on a secondary.
    replicas:
        Number of secondaries.
    """

    def __init__(self, env: "Environment", name: str,
                 replicas: int = 1,
                 replication_lag: float = 0.002,
                 read_latency: float = 0.0001,
                 write_latency: float = 0.00015) -> None:
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        self.env = env
        self.name = name
        self.replication_lag = replication_lag
        self.primary = KVStore(env, f"{name}-primary",
                               read_latency=read_latency,
                               write_latency=write_latency)
        self.replicas = [Replica(env, f"{name}-replica{i}", read_latency)
                         for i in range(replicas)]
        self._version = VersionVector()
        self._rng = env.rng(f"kv:{name}")
        self.stale_reads = 0
        self.causal_waits = 0

    # ------------------------------------------------------------------
    # writes (always via the primary)
    # ------------------------------------------------------------------
    def put(self, key: str, value: object,
            session: CausalSession | None = None):
        """Process helper: write through the primary and fan out async."""
        self._version = self._version.increment(self.primary.name)
        version = self._version.copy()
        entry = yield from self.primary.put(key, value, version)
        for replica in self.replicas:
            self.env.process(self._replicate(replica, key, entry),
                             name=f"repl:{self.name}:{key}")
        if session is not None:
            session.observe(version)
        return entry

    def delete(self, key: str, session: CausalSession | None = None):
        """Process helper: delete through the primary."""
        self._version = self._version.increment(self.primary.name)
        version = self._version.copy()
        existed = yield from self.primary.delete(key)
        for replica in self.replicas:
            self.env.process(self._replicate(replica, key, None),
                             name=f"repl:{self.name}:{key}")
        if session is not None:
            session.observe(version)
        return existed

    def _replicate(self, replica: Replica, key: str,
                   entry: Versioned | None):
        yield self.env.timeout(self.replication_lag)
        replica.apply(key, entry)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get_primary(self, key: str):
        """Process helper: linearizable read from the primary."""
        entry = yield from self.primary.get(key)
        return entry

    def get_eventual(self, key: str):
        """Process helper: read a random replica — may be stale."""
        store = self._pick_replica()
        entry = yield from store.store.get(key)
        fresh = self.primary.peek(key)
        if fresh is not None and (entry is None or
                                  entry.version != fresh.version):
            self.stale_reads += 1
        return entry

    def get_causal(self, key: str, session: CausalSession):
        """Process helper: read a replica without violating the session.

        Blocks until the chosen replica has applied everything in the
        session's frontier, then reads and advances the frontier.
        """
        replica = self._pick_replica()
        if not replica.applied.dominates(session.frontier):
            self.causal_waits += 1
            yield from replica.wait_for(session.frontier)
        entry = yield from replica.store.get(key)
        if entry is not None:
            session.observe(entry.version)
        return entry

    def _pick_replica(self) -> Replica:
        if not self.replicas:
            raise RuntimeError(f"{self.name} has no replicas to read from")
        return self.replicas[self._rng.randrange(len(self.replicas))]
