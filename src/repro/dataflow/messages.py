"""Messages exchanged between stateful functions."""

from __future__ import annotations

import dataclasses
import itertools

_message_ids = itertools.count(1)


@dataclasses.dataclass
class FunctionMessage:
    """A message addressed to a stateful function instance.

    ``request_id`` threads the driver's request identity through the
    function chain so that the final egress can complete the right
    request exactly once, even across failure/replay.
    """

    target_type: str
    target_key: str
    payload: object
    request_id: str | None = None
    is_ingress: bool = False
    ingress_offset: int = -1
    #: Set by the runtime when the message crosses worker partitions
    #: (pays the shuffle latency/CPU costs).
    cross_partition: bool = False
    message_id: int = dataclasses.field(
        default_factory=lambda: next(_message_ids))

    def address(self) -> tuple[str, str]:
        return (self.target_type, self.target_key)
