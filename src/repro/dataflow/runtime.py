"""The Statefun runtime: workers, checkpoints, failure and replay."""

from __future__ import annotations

import collections
import dataclasses
import inspect
import typing
import zlib

from repro.cow import clone
from repro.dataflow.function import Context, StatefulFunction
from repro.dataflow.messages import FunctionMessage
from repro.runtime.resources import Resource

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment, Event
    from repro.runtime.process import Process


@dataclasses.dataclass
class StatefunConfig:
    """Deployment and cost-model parameters for the dataflow runtime."""

    partitions: int = 4
    cores_per_partition: int = 4
    #: One-way delivery latency between functions (and from ingress).
    delivery_latency: float = 0.0002
    #: Fixed CPU overhead per message for envelopes/serialisation —
    #: the dataflow tax relative to raw actor calls.
    envelope_cpu: float = 0.00006
    #: Extra cost of a message that crosses partitions (network shuffle
    #: plus serialisation).  With P partitions, (P-1)/P of uniformly
    #: routed messages pay it — the mechanical source of the dataflow's
    #: sub-linear scaling (paper: "lower scalability compared to
    #: Orleans Eventual").
    cross_partition_latency: float = 0.0004
    cross_partition_cpu: float = 0.00008
    #: Interval between aligned checkpoints (0 disables checkpointing).
    checkpoint_interval: float = 0.5
    #: Stop-the-world duration of one aligned checkpoint.
    checkpoint_sync: float = 0.02
    #: Pause while restoring from a checkpoint after a failure.
    recovery_pause: float = 0.25
    #: Stop-the-world duration of one rescale (the savepoint-and-
    #: restore a dataflow engine pays to change parallelism — an order
    #: of magnitude above a checkpoint sync, well below a recovery).
    rescale_pause: float = 0.08
    #: Per-worker budget of hot (in-memory) addresses; None = unbounded.
    #: Above the budget, least-recently-used clean addresses spill to
    #: the worker's cold tier (the RocksDB state backend analogue) and
    #: reload transparently on next access.
    max_resident_addresses: int | None = None


@dataclasses.dataclass
class _Checkpoint:
    """An aligned snapshot.

    ``worker_states`` entries are *frozen*: the snapshot maps are built
    incrementally (unchanged addresses share their state tree with the
    previous checkpoint) and must never be mutated — restores hand
    clones back to the workers.
    """

    time: float
    ingress_offset: int
    worker_states: list[dict]
    worker_queues: list[list[FunctionMessage]]


class Worker:
    """One partition: a queue, per-address state, and CPU cores."""

    def __init__(self, env: "Environment", runtime: "StatefunRuntime",
                 index: int, cores: int) -> None:
        self.env = env
        self.runtime = runtime
        self.index = index
        self.cpu = Resource(env, capacity=cores)
        self.queue: collections.deque[FunctionMessage] = collections.deque()
        self.state: dict[tuple[str, str], dict] = {}
        #: Addresses whose state may have changed since the last
        #: checkpoint; only these are re-snapshotted (dirty tracking is
        #: conservative: any state access marks the address).
        self.dirty: set[tuple[str, str]] = set()
        #: Address of the message currently being processed (workers
        #: process one message at a time).  A generator function
        #: suspended across a checkpoint still holds its state dict, so
        #: the checkpoint must keep this address dirty.
        self.active_address: tuple[str, str] | None = None
        self.processed = 0
        #: Cold tier (RocksDB-backend analogue): state dicts spilled
        #: under ``max_resident_addresses``.  Holds the *same* dict
        #: objects — a suspended function keeping a reference to a
        #: spilled address keeps mutating the object that reloads.
        self.cold: dict[tuple[str, str], dict] = {}
        self.cold_evictions = 0
        self.cold_reloads = 0
        self.peak_resident = 0
        self.addresses_created = 0
        self._wakeup: "Event | None" = None
        env.process(self._loop(), name=f"worker-{index}")

    def enqueue(self, message: FunctionMessage) -> None:
        self.queue.append(message)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def state_for(self, address: tuple[str, str]) -> dict:
        self.dirty.add(address)
        state = self.state.pop(address, None)
        if state is None:
            state = self.cold.pop(address, None)
            if state is not None:
                self.cold_reloads += 1
        if state is None:
            state = {}
            self.addresses_created += 1
        # Re-insert at the end: dict order doubles as the LRU order the
        # spill sweep walks.
        self.state[address] = state
        if len(self.state) > self.peak_resident:
            self.peak_resident = len(self.state)
        limit = self.runtime.config.max_resident_addresses
        if limit is not None and len(self.state) > limit:
            self._spill(limit, keep=address)
        return state

    def _spill(self, limit: int, keep: tuple[str, str]) -> None:
        """Move LRU clean addresses to the cold tier, oldest first.

        Dirty addresses stay hot — their latest state is not yet in a
        checkpoint, and the incremental snapshotter only re-clones
        dirty ones, so spilling them would checkpoint stale state.  The
        active (mid-message) address and the one just requested stay
        hot too.  When everything above budget is dirty, the worker
        simply runs over budget until the next checkpoint cleans it.
        """
        excess = len(self.state) - limit
        victims = [address for address in self.state
                   if address not in self.dirty
                   and address != self.active_address
                   and (keep is None or address != keep)]
        for address in victims[:excess]:
            self.cold[address] = self.state.pop(address)
            self.cold_evictions += 1

    def _loop(self):
        runtime = self.runtime
        while True:
            if runtime.paused:
                yield runtime.resume_event
                continue
            if not self.queue:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            message = self.queue.popleft()
            yield from self._process(message)

    def _process(self, message: FunctionMessage):
        runtime = self.runtime
        function = runtime.function_for(message.target_type)
        cpu_cost = function.cpu_cost + runtime.config.envelope_cpu
        if getattr(message, "cross_partition", False):
            cpu_cost += runtime.config.cross_partition_cpu
        yield from self.cpu.use(cpu_cost)
        address = message.address()
        self.active_address = address
        try:
            state = self.state_for(address)
            context = Context(runtime, self, message, state)
            result = function.invoke(context, message.payload)
            if inspect.isgenerator(result):
                yield from result
        finally:
            self.active_address = None
        self.processed += 1
        runtime.messages_processed += 1


class StatefunRuntime:
    """Registry, router and checkpoint coordinator for stateful functions."""

    def __init__(self, env: "Environment",
                 config: StatefunConfig | None = None) -> None:
        self.env = env
        self.config = config or StatefunConfig()
        self.workers = [Worker(env, self, index,
                               self.config.cores_per_partition)
                        for index in range(self.config.partitions)]
        self._worker_ids = self.config.partitions
        self.rescales = 0
        #: Workers scheduled for removal by an in-progress scale-in;
        #: counted from the moment the command is issued so control
        #: signals see the pending drain.
        self.draining_workers = 0
        self._functions: dict[str, StatefulFunction] = {}
        # Exactly-once machinery -----------------------------------------
        #: Ingress messages newer than the last checkpoint offset; the
        #: prefix up to ``ingress_base`` has been compacted away (it can
        #: never be replayed again).
        self.ingress_log: list[FunctionMessage] = []
        self.ingress_base = 0
        self.ingress_compacted = 0
        self._in_flight = 0
        self.paused = False
        self.resume_event: "Event" = env.event()
        self._last_checkpoint: _Checkpoint | None = None
        self.checkpoints_taken = 0
        self.recoveries = 0
        # Egress ----------------------------------------------------------
        self.egress_log: list[tuple[float, str, object]] = []
        self._egress_ids: set[str] = set()
        self._request_waiters: dict[str, "Event"] = {}
        self.messages_processed = 0
        #: Serialises stop-the-world operations (checkpoints, recovery):
        #: overlapping pauses would corrupt the shared resume event.
        self._stw_lock = Resource(env, capacity=1)
        if self.config.checkpoint_interval > 0:
            env.process(self._checkpoint_loop(), name="checkpointer")

    # ------------------------------------------------------------------
    # registration & routing
    # ------------------------------------------------------------------
    def register(self, type_name: str,
                 function: StatefulFunction) -> None:
        self._functions[type_name] = function

    def function_for(self, type_name: str) -> StatefulFunction:
        function = self._functions.get(type_name)
        if function is None:
            raise KeyError(f"no function registered for {type_name!r}")
        return function

    def worker_for(self, address: tuple[str, str]) -> Worker:
        # zlib.crc32 is stable across processes (unlike built-in hash()
        # on strings), keeping partition routing deterministic.
        digest = zlib.crc32(f"{address[0]}/{address[1]}".encode())
        return self.workers[digest % len(self.workers)]

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send_ingress(self, target_type: str, target_key: str,
                     payload: object,
                     request_id: str | None = None) -> FunctionMessage:
        """Inject a message from outside the dataflow (the driver)."""
        message = FunctionMessage(
            target_type=target_type, target_key=target_key,
            payload=payload, request_id=request_id, is_ingress=True,
            ingress_offset=self.ingress_base + len(self.ingress_log))
        self.ingress_log.append(message)
        self._deliver(message)
        return message

    def send_internal(self, target_type: str, target_key: str,
                      payload: object,
                      request_id: str | None = None,
                      source_worker: "Worker | None" = None) -> None:
        message = FunctionMessage(
            target_type=target_type, target_key=target_key,
            payload=payload, request_id=request_id)
        target_worker = self.worker_for(message.address())
        if source_worker is not None and source_worker is not target_worker:
            message.cross_partition = True
        self._deliver(message)

    def _deliver(self, message: FunctionMessage) -> None:
        self._in_flight += 1
        self.env.process(self._deliver_later(message), name="deliver")

    def _deliver_later(self, message: FunctionMessage):
        latency = self.config.delivery_latency
        if getattr(message, "cross_partition", False):
            latency += self.config.cross_partition_latency
        yield self.env.timeout(latency)
        self._in_flight -= 1
        if self.paused and message.is_ingress is False:
            # Internal message arriving mid-recovery belongs to the
            # failed epoch; it will be regenerated by replay.
            if self._recovering:
                return
        self.worker_for(message.address()).enqueue(message)

    # ------------------------------------------------------------------
    # request/response bridging for the benchmark driver
    # ------------------------------------------------------------------
    def request(self, target_type: str, target_key: str, payload: object,
                request_id: str) -> "Event":
        """Send an ingress message; the event fires on matching egress."""
        waiter = self.env.event()
        self._request_waiters[request_id] = waiter
        self.send_ingress(target_type, target_key, payload,
                          request_id=request_id)
        return waiter

    def emit_egress(self, kind: str, payload: object,
                    effect_id: str) -> None:
        if effect_id in self._egress_ids:
            return  # duplicate from replay: exactly-once egress
        self._egress_ids.add(effect_id)
        self.egress_log.append((self.env.now, kind, payload))
        request_id = effect_id.split(":", 1)[0]
        waiter = self._request_waiters.pop(request_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(payload)

    # ------------------------------------------------------------------
    # checkpointing and recovery
    # ------------------------------------------------------------------
    _recovering = False

    def _checkpoint_loop(self):
        while True:
            yield self.env.timeout(self.config.checkpoint_interval)
            yield from self.take_checkpoint()

    def _pause(self):
        self.paused = True
        self.resume_event = self.env.event()
        # Aligned barrier: wait for in-flight messages to land in queues.
        while self._in_flight > 0:
            yield self.env.timeout(self.config.delivery_latency)

    def _resume(self) -> None:
        self.paused = False
        self.resume_event.succeed()
        for worker in self.workers:
            if worker.queue and worker._wakeup is not None \
                    and not worker._wakeup.triggered:
                worker._wakeup.succeed()

    def seal_initial_state(self) -> None:
        """Record the current state as checkpoint zero.

        Called after data ingestion: installed state is durable, so a
        failure before the first periodic checkpoint must restore the
        ingested dataset rather than an empty cluster.
        """
        self._last_checkpoint = _Checkpoint(
            time=self.env.now,
            ingress_offset=self.ingress_base + len(self.ingress_log),
            worker_states=self._snapshot_worker_states(full=True),
            worker_queues=[list(worker.queue)
                           for worker in self.workers])
        self._compact_ingress()
        self._enforce_resident_budget()

    def _enforce_resident_budget(self) -> None:
        """Spill down to budget right after a checkpoint.

        Checkpointing clears the dirty set, so this is the one moment
        every over-budget address is clean and spillable — the access
        path alone can only spill what happens to be clean.
        """
        limit = self.config.max_resident_addresses
        if limit is None:
            return
        for worker in self.workers:
            if len(worker.state) > limit:
                worker._spill(limit, keep=None)

    def _snapshot_worker_states(self, full: bool = False) -> list[dict]:
        """Frozen per-worker state maps for a new checkpoint.

        Incremental: only addresses touched since the previous
        checkpoint are re-cloned; unchanged addresses share their
        (frozen) state tree with the previous snapshot.  ``full``
        forces a complete snapshot (used when state was installed
        outside the message path, e.g. data ingestion).
        """
        previous = self._last_checkpoint
        states = []
        for index, worker in enumerate(self.workers):
            if full or previous is None:
                # Cold (spilled) addresses are part of the state too —
                # they are clean by construction but a *full* snapshot
                # rebuilds from scratch rather than trusting history.
                snapshot = {address: clone(state)
                            for address, state in worker.state.items()}
                snapshot.update({address: clone(state)
                                 for address, state in worker.cold.items()})
            else:
                snapshot = dict(previous.worker_states[index])
                for address in worker.dirty:
                    state = worker.state.get(address)
                    if state is not None:
                        snapshot[address] = clone(state)
            worker.dirty.clear()
            # A function suspended across this checkpoint still holds
            # its state dict and may mutate it after resuming; keep its
            # address dirty so the *next* snapshot re-clones it.
            if worker.active_address is not None:
                worker.dirty.add(worker.active_address)
            states.append(snapshot)
        return states

    def _compact_ingress(self) -> None:
        """Drop ingress messages at offsets below the last checkpoint.

        Recovery never replays past the checkpoint offset, so the
        prefix is dead weight; compacting it bounds the log by the
        checkpoint interval instead of the run length.
        """
        checkpoint = self._last_checkpoint
        if checkpoint is None:
            return
        drop = checkpoint.ingress_offset - self.ingress_base
        if drop > 0:
            del self.ingress_log[:drop]
            self.ingress_base = checkpoint.ingress_offset
            self.ingress_compacted += drop

    def take_checkpoint(self):
        """Process helper: stop-the-world aligned snapshot."""
        request = self._stw_lock.request()
        yield request
        try:
            yield from self._take_checkpoint_locked()
        finally:
            self._stw_lock.release(request)

    def _take_checkpoint_locked(self):
        yield from self._pause()
        yield self.env.timeout(self.config.checkpoint_sync)
        self._last_checkpoint = _Checkpoint(
            time=self.env.now,
            ingress_offset=self.ingress_base + len(self.ingress_log),
            worker_states=self._snapshot_worker_states(),
            worker_queues=[list(worker.queue)
                           for worker in self.workers])
        self.checkpoints_taken += 1
        self._compact_ingress()
        self._enforce_resident_budget()
        self._resume()

    def inject_failure(self):
        """Process helper: crash, restore the last checkpoint, replay.

        All function state and queues roll back; ingress messages after
        the checkpoint offset are re-delivered.  Deterministic functions
        plus deduplicated egress give exactly-once end-to-end effects.
        """
        request = self._stw_lock.request()
        yield request
        try:
            yield from self._inject_failure_locked()
        finally:
            self._stw_lock.release(request)

    def _inject_failure_locked(self):
        self.recoveries += 1
        self._recovering = True
        yield from self._pause()
        yield self.env.timeout(self.config.recovery_pause)
        checkpoint = self._last_checkpoint
        if checkpoint is None:
            # No checkpoint yet: restart from scratch, replay everything.
            for worker in self.workers:
                worker.state = {}
                worker.cold.clear()
                worker.dirty.clear()
                worker.queue.clear()
            replay_from = 0
        else:
            for worker, state, queue in zip(self.workers,
                                            checkpoint.worker_states,
                                            checkpoint.worker_queues):
                # Clone: the snapshot stays frozen (it may be restored
                # again) while the worker mutates its copy in place.
                # The checkpoint map is complete (spilled addresses
                # included), so the cold tier resets with it.
                worker.state = {address: clone(tree)
                                for address, tree in state.items()}
                worker.cold.clear()
                worker.dirty.clear()
                worker.queue.clear()
                worker.queue.extend(queue)
            replay_from = checkpoint.ingress_offset
        self._recovering = False
        self._resume()
        for message in self.ingress_log[max(
                0, replay_from - self.ingress_base):]:
            replayed = FunctionMessage(
                target_type=message.target_type,
                target_key=message.target_key,
                payload=message.payload,
                request_id=message.request_id,
                is_ingress=True,
                ingress_offset=message.ingress_offset)
            self._deliver(replayed)

    # ------------------------------------------------------------------
    # rescaling (the control plane's add_silo / drain_silo verbs)
    # ------------------------------------------------------------------
    def add_silo(self, name: str | None = None) -> "Process":
        """Scale out by one partition worker (stop-the-world rescale).

        Named for the control-plane verb vocabulary shared with the
        actor cluster; a dataflow engine changes parallelism by
        savepoint-and-restore, so the rescale runs as a process:
        pause, pay ``rescale_pause``, repartition every address and
        queued message under the new ``crc32 % N`` routing, seal a
        fresh full checkpoint matching the new topology, resume.
        Returns the rescale process.
        """
        return self.env.process(self._rescale(+1),
                                name=f"rescale-out-{self._worker_ids}")

    def drain_silo(self, target: str | None = None) -> "Process":
        """Scale in by one partition worker (stop-the-world rescale).

        ``target`` is accepted for verb-signature compatibility and
        ignored: partitions are anonymous hash ranges, so the newest
        worker always retires.  Refuses (raises) when a rescale is
        already shrinking past one worker.
        """
        if len(self.workers) - self.draining_workers <= 1:
            raise ValueError("cannot drain the last partition worker")
        self.draining_workers += 1
        return self.env.process(self._rescale(-1),
                                name=f"rescale-in-{self._worker_ids}")

    def _rescale(self, delta: int):
        request = self._stw_lock.request()
        yield request
        try:
            yield from self._rescale_locked(delta)
        finally:
            if delta < 0:
                self.draining_workers -= 1
            self._stw_lock.release(request)

    def _rescale_locked(self, delta: int):
        yield from self._pause()
        yield self.env.timeout(self.config.rescale_pause)
        old_workers = list(self.workers)
        # Mid-message functions keep executing across the pause (as
        # they do across checkpoints); remember their addresses so the
        # new owners re-clone that state at the next checkpoint.
        carried_active = [worker.active_address for worker in old_workers
                          if worker.active_address is not None]
        if delta > 0:
            self.workers.append(Worker(self.env, self, self._worker_ids,
                                       self.config.cores_per_partition))
            self._worker_ids += 1
        else:
            self.workers.pop()
        # Repartition: every address (hot and cold tiers alike) and
        # every queued message moves to its new ``crc32 % N`` owner.
        # State dicts move by reference — a suspended function holding
        # one keeps mutating the object its new owner serves.
        moved_hot: list[tuple[tuple[str, str], dict]] = []
        moved_cold: list[tuple[tuple[str, str], dict]] = []
        moved_queue: list[FunctionMessage] = []
        for worker in old_workers:
            moved_hot.extend(worker.state.items())
            moved_cold.extend(worker.cold.items())
            moved_queue.extend(worker.queue)
            worker.state = {}
            worker.cold = {}
            worker.dirty = set()
            worker.queue.clear()
        for address, state in moved_hot:
            self.worker_for(address).state[address] = state
        for address, state in moved_cold:
            self.worker_for(address).cold[address] = state
        for message in moved_queue:
            self.worker_for(message.address()).queue.append(message)
        # The old checkpoint's per-worker layout no longer matches the
        # topology; seal a full snapshot so a later failure restores
        # into the new shape (savepoint semantics).
        self._last_checkpoint = _Checkpoint(
            time=self.env.now,
            ingress_offset=self.ingress_base + len(self.ingress_log),
            worker_states=self._snapshot_worker_states(full=True),
            worker_queues=[list(worker.queue)
                           for worker in self.workers])
        self._compact_ingress()
        self._enforce_resident_budget()
        for address in carried_active:
            self.worker_for(address).dirty.add(address)
        self.rescales += 1
        self._resume()

    # ------------------------------------------------------------------
    @property
    def total_queued(self) -> int:
        return sum(len(worker.queue) for worker in self.workers)

    def state_of(self, type_name: str, key: str) -> dict | None:
        """Zero-latency state inspection for audits and tests."""
        worker = self.worker_for((type_name, key))
        address = (type_name, key)
        state = worker.state.get(address)
        if state is None:
            state = worker.cold.get(address)
        return state

    def control_stats(self) -> dict:
        """The uniform control-plane counters (``platform_stats()``
        fields, see :mod:`repro.control.signals`): partition workers
        play the silo role on this stack."""
        return {
            "silos_live": len(self.workers),
            "silos_draining": self.draining_workers,
            "silos_total": len(self.workers),
            "resident": sum(len(w.state) for w in self.workers),
            "paged": sum(len(w.cold) for w in self.workers),
            "messages": self.messages_processed,
        }

    def working_set_stats(self) -> dict:
        """Hot/cold address counters across all workers."""
        return {
            "activations": sum(w.addresses_created for w in self.workers),
            "evictions": sum(w.cold_evictions for w in self.workers),
            "reloads": sum(w.cold_reloads for w in self.workers),
            "peak_resident": sum(w.peak_resident for w in self.workers),
            "resident": sum(len(w.state) for w in self.workers),
            "paged": sum(len(w.cold) for w in self.workers),
            "limit": self.config.max_resident_addresses,
        }
