"""Stateful-function dataflow runtime (Apache Flink Statefun analogue).

Functions are addressed by (type, key); each worker partition processes
its messages sequentially, giving single-writer access to per-key state.
Exactly-once processing is provided the way Flink provides it: aligned
global checkpoints (stop-the-world in this simulation), rollback of all
state and queues to the last checkpoint on failure, replay of ingress
messages from the checkpoint offset, and deduplicated egress.
"""

from repro.dataflow.function import Context, StatefulFunction
from repro.dataflow.messages import FunctionMessage
from repro.dataflow.runtime import StatefunConfig, StatefunRuntime

__all__ = [
    "Context",
    "FunctionMessage",
    "StatefulFunction",
    "StatefunConfig",
    "StatefunRuntime",
]
