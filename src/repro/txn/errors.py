"""Transaction error types."""

from __future__ import annotations


class TransactionError(Exception):
    """Base class for transaction failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and its effects rolled back.

    ``reason`` distinguishes wait-die victims ("wait-die"), explicit
    application aborts ("application"), prepare vetoes ("veto") and
    infrastructure failures ("failure").
    """

    def __init__(self, message: str, reason: str = "unknown") -> None:
        super().__init__(message)
        self.reason = reason
