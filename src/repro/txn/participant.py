"""Transaction participants and the transactional grain base class."""

from __future__ import annotations

import collections
import typing

from repro.actors.grain import Grain
from repro.cow import CowState, materialize
from repro.txn.context import TransactionContext
from repro.txn.errors import TransactionAborted
from repro.txn.locks import LockManager, LockMode

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment

#: Commit-log entries retained per participant (bounded tail; the
#: full per-outcome counts live in ``commits``/``aborts``/``prepares``).
COMMIT_LOG_TAIL = 64


class TransactionParticipant:
    """Per-grain transactional state manager.

    Holds the committed state, per-transaction staged writes, and the
    grain's lock.  Prepare/commit/abort are invoked by the coordinator
    *outside* the grain's mailbox — exactly like Orleans' transaction
    agent — so a commit can never deadlock behind a queued grain call
    that is itself waiting for the commit's locks.

    State is managed copy-on-write (:mod:`repro.cow`): reads hand out
    an isolated :class:`~repro.cow.CowState` view in O(1), writes stage
    a materialised version sharing untouched sub-trees with committed
    state, and commit installs the staged version by reference.  The
    committed tree is frozen by contract — it is only ever replaced,
    never mutated in place.
    """

    def __init__(self, env: "Environment", identity: tuple[str, str],
                 log_write_latency: float,
                 initial_state: dict | None = None) -> None:
        self.env = env
        self.identity = identity
        self.lock = LockManager(env, f"{identity[0]}/{identity[1]}")
        self.log_write_latency = log_write_latency
        self.committed_state: dict = initial_state or {}
        self._staged: dict[int, dict] = {}
        self._prepared: set[int] = set()
        #: Bounded tail of (time, txid, outcome) records; older entries
        #: roll off but the counters below keep the full totals.
        self.commit_log: collections.deque[tuple[float, int, str]] = \
            collections.deque(maxlen=COMMIT_LOG_TAIL)
        self.prepares = 0
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # data access (called from inside grain methods)
    # ------------------------------------------------------------------
    def read(self, ctx: TransactionContext):
        """Process helper: S-lock and return a private view of state."""
        if not ctx.is_active:
            raise TransactionAborted(
                f"txn {ctx.txid} no longer active", reason="failure")
        yield from self.lock.acquire(ctx, LockMode.SHARED)
        ctx.register(self)
        if ctx.txid in self._staged:
            return CowState(self._staged[ctx.txid])
        return CowState(self.committed_state)

    def write(self, ctx: TransactionContext, state: dict):
        """Process helper: X-lock and stage the new state."""
        if not ctx.is_active:
            raise TransactionAborted(
                f"txn {ctx.txid} no longer active", reason="failure")
        yield from self.lock.acquire(ctx, LockMode.EXCLUSIVE)
        ctx.register(self)
        if type(state) is CowState and not state.dirty:
            # Read-mostly fast path: writing back an untouched view
            # stages its frozen base by reference — no tree walk, no
            # rebuild.  (Common for methods that read, decide not to
            # change anything, and write the view back.)
            self._staged[ctx.txid] = state._base
        else:
            self._staged[ctx.txid] = materialize(state)

    def read_committed(self) -> CowState:
        """Lock-free read of the last committed state (non-txn callers)."""
        return CowState(self.committed_state)

    def write_committed(self, state: dict) -> None:
        """Lock-free direct write (non-transactional replication paths).

        Used where the paper's platforms offer no transactional
        primitive — e.g. event-driven replica maintenance — so the write
        bypasses locking exactly like the real system would.
        """
        if type(state) is CowState and not state.dirty:
            self.committed_state = state._base
        else:
            self.committed_state = materialize(state)

    # ------------------------------------------------------------------
    # two-phase commit (called by the coordinator)
    # ------------------------------------------------------------------
    def prepare(self, ctx: TransactionContext):
        """Process helper: force a log record, vote yes/no."""
        if not self.lock.disabled and self.lock.held_by(ctx) is None:
            # Lost our locks (e.g. the txn died elsewhere): veto.
            return False
            yield  # pragma: no cover - generator marker
        yield self.env.timeout(self.log_write_latency)
        self._prepared.add(ctx.txid)
        self.prepares += 1
        self.commit_log.append((self.env.now, ctx.txid, "prepared"))
        return True

    def commit(self, ctx: TransactionContext):
        """Process helper: install staged state, log, release locks.

        The staged version was materialised at write time, so the
        install is a reference swap, not a copy.
        """
        if ctx.txid in self._staged:
            self.committed_state = self._staged.pop(ctx.txid)
        yield self.env.timeout(self.log_write_latency)
        self.commits += 1
        self.commit_log.append((self.env.now, ctx.txid, "committed"))
        self._prepared.discard(ctx.txid)
        self.lock.release(ctx)

    def abort(self, ctx: TransactionContext) -> None:
        """Discard staged state and release locks (no log force needed)."""
        self._staged.pop(ctx.txid, None)
        self._prepared.discard(ctx.txid)
        self.aborts += 1
        self.commit_log.append((self.env.now, ctx.txid, "aborted"))
        self.lock.release(ctx)


class TransactionalGrain(Grain):
    """A grain whose state is managed by a :class:`TransactionParticipant`.

    Inside a transactional method (``self.current_txn`` set), use
    :meth:`txn_read` / :meth:`txn_write`; outside, :meth:`txn_read`
    falls back to the last committed state, giving non-transactional
    queries read-committed semantics.
    """

    log_write_latency: float = 0.0005

    #: Transactional grains interleave message processing: isolation
    #: comes from the participant's locks, not from turn concurrency.
    #: (A non-reentrant mailbox can deadlock invisibly to wait-die: txn
    #: A blocks on a lock held by B while B's next call to this grain is
    #: queued behind A's executing method.)
    reentrant = True

    def __init__(self) -> None:
        super().__init__()
        self._participant: TransactionParticipant | None = None

    @property
    def participant(self) -> TransactionParticipant:
        if self._participant is None:
            self._participant = TransactionParticipant(
                self.env, (type(self).__name__, self.key),
                self.log_write_latency)
        return self._participant

    def txn_read(self):
        """Process helper: read state under the current transaction."""
        ctx = self.current_txn
        if ctx is None:
            return self.participant.read_committed()
            yield  # pragma: no cover - generator marker
        state = yield from self.participant.read(ctx)
        return state

    def txn_write(self, state: dict):
        """Process helper: write state under the current transaction."""
        ctx = self.current_txn
        if ctx is None:
            raise TransactionAborted(
                f"{self!r}: write outside a transaction", reason="failure")
        yield from self.participant.write(ctx, state)

    def non_txn_write(self, state: dict) -> None:
        """Direct committed-state write for non-transactional paths."""
        self.participant.write_committed(state)

    # ------------------------------------------------------------------
    # working-set paging
    # ------------------------------------------------------------------
    def page_out(self) -> dict | None:
        """Snapshot the participant for the working-set pager.

        Refuses (returns None) while any transaction touches this
        grain — staged writes, prepared votes, held locks or queued
        waiters — because a fresh participant on re-activation would
        silently drop that in-flight coordination state.
        """
        participant = self._participant
        if participant is None:
            return {}  # never touched: identity-only activation
        if (participant._staged or participant._prepared
                or participant.lock._holders or participant.lock._queue):
            return None  # mid-transaction: must stay resident
        return {
            "state": participant.committed_state,
            "prepares": participant.prepares,
            "commits": participant.commits,
            "aborts": participant.aborts,
            "commit_log": list(participant.commit_log),
        }

    def page_in(self, paged: dict) -> None:
        if not paged:
            return
        participant = self.participant  # (re)created lazily
        participant.committed_state = paged["state"]
        participant.prepares = paged["prepares"]
        participant.commits = paged["commits"]
        participant.aborts = paged["aborts"]
        participant.commit_log.extend(paged["commit_log"])
