"""Distributed ACID transactions over grains (Orleans Transactions).

The paper's *Orleans Transactions* implementation provides all-or-nothing
atomicity and concurrency control across grains, at "considerable
overhead".  This package reproduces both the guarantees and the cost
sources: strict two-phase locking with wait-die deadlock avoidance,
two-phase commit with durable log writes at every participant, and
abort/retry with the original priority preserved (so retried
transactions eventually win).
"""

from repro.txn.context import TransactionContext, TransactionStatus
from repro.txn.coordinator import TransactionRunner, TxnConfig, TxnStats
from repro.txn.errors import TransactionAborted, TransactionError
from repro.txn.locks import LockManager, LockMode
from repro.txn.participant import TransactionalGrain, TransactionParticipant

__all__ = [
    "LockManager",
    "LockMode",
    "TransactionAborted",
    "TransactionContext",
    "TransactionError",
    "TransactionParticipant",
    "TransactionRunner",
    "TransactionStatus",
    "TransactionalGrain",
    "TxnConfig",
    "TxnStats",
]
