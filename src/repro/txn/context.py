"""Transaction contexts: identity, priority and participant tracking."""

from __future__ import annotations

import enum
import itertools
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.txn.participant import TransactionParticipant

_txn_sequence = itertools.count(1)


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    PREPARING = "preparing"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionContext:
    """Identity and state of one distributed transaction attempt.

    ``priority`` orders transactions for wait-die: lower is older and
    wins conflicts.  A retried transaction keeps its original priority
    (pass ``inherit_priority``) so that it eventually acquires its locks
    instead of starving.
    """

    def __init__(self, start_time: float,
                 inherit_priority: tuple[float, int] | None = None) -> None:
        self.txid = next(_txn_sequence)
        self.start_time = start_time
        self.priority = inherit_priority or (start_time, self.txid)
        self.status = TransactionStatus.ACTIVE
        self.participants: dict[object, "TransactionParticipant"] = {}
        self.attempt = 1

    def register(self, participant: "TransactionParticipant") -> None:
        """Enlist a participant (idempotent)."""
        self.participants.setdefault(participant.identity, participant)

    @property
    def is_active(self) -> bool:
        return self.status is TransactionStatus.ACTIVE

    def older_than(self, other: "TransactionContext") -> bool:
        return self.priority < other.priority

    def __repr__(self) -> str:
        return (f"<Txn {self.txid} {self.status.value} "
                f"participants={len(self.participants)}>")
