"""Strict two-phase locking with wait-die deadlock avoidance."""

from __future__ import annotations

import collections
import enum
import typing

from repro.txn.context import TransactionContext
from repro.txn.errors import TransactionAborted

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class _Waiter:
    __slots__ = ("ctx", "mode", "event")

    def __init__(self, ctx: TransactionContext, mode: LockMode,
                 event) -> None:
        self.ctx = ctx
        self.mode = mode
        self.event = event


class LockManager:
    """A single lock protecting one participant's state.

    Wait-die: a requester that conflicts with current holders may wait
    only if it is *older* (lower priority tuple) than every conflicting
    holder; otherwise it dies immediately with
    :class:`TransactionAborted` (reason ``"wait-die"``).  Older
    transactions therefore never wait behind younger ones, which rules
    out deadlock cycles.
    """

    #: Class-level ablation switch (bench A1): when True, every acquire
    #: succeeds immediately and no isolation is provided.
    disabled = False

    def __init__(self, env: "Environment", name: str) -> None:
        self.env = env
        self.name = name
        self._holders: dict[int, tuple[TransactionContext, LockMode]] = {}
        self._queue: collections.deque[_Waiter] = collections.deque()
        self.waits = 0
        self.deaths = 0

    # ------------------------------------------------------------------
    def holders(self) -> list[tuple[TransactionContext, LockMode]]:
        return list(self._holders.values())

    def held_by(self, ctx: TransactionContext) -> LockMode | None:
        entry = self._holders.get(ctx.txid)
        return entry[1] if entry else None

    def _conflicts(self, ctx: TransactionContext,
                   mode: LockMode) -> list[TransactionContext]:
        conflicting = []
        for txid, (holder, held_mode) in self._holders.items():
            if txid == ctx.txid:
                continue
            if mode is LockMode.EXCLUSIVE or held_mode is LockMode.EXCLUSIVE:
                conflicting.append(holder)
        return conflicting

    # ------------------------------------------------------------------
    def acquire(self, ctx: TransactionContext, mode: LockMode):
        """Process helper: acquire (or upgrade to) ``mode`` for ``ctx``."""
        held = self.held_by(ctx)
        if self.disabled or (held is not None
                             and (held is mode
                                  or held is LockMode.EXCLUSIVE)):
            return
            yield  # pragma: no cover - generator marker
        while True:
            conflicting = self._conflicts(ctx, mode)
            if not conflicting:
                self._holders[ctx.txid] = (ctx, mode)
                return
            if any(not ctx.older_than(holder) for holder in conflicting):
                self.deaths += 1
                raise TransactionAborted(
                    f"txn {ctx.txid} died on lock {self.name!r} "
                    f"(wait-die, held by "
                    f"{[holder.txid for holder in conflicting]})",
                    reason="wait-die")
            # Older than every conflicting holder: wait politely.
            self.waits += 1
            waiter = _Waiter(ctx, mode, self.env.event())
            self._queue.append(waiter)
            yield waiter.event
            # Re-check conflicts after being woken (loop).

    def release(self, ctx: TransactionContext) -> None:
        """Release the lock held by ``ctx`` and wake eligible waiters."""
        self._holders.pop(ctx.txid, None)
        self._wake()

    def _wake(self) -> None:
        # Wake waiters whose request is now compatible, in FIFO order;
        # each woken waiter re-checks conflicts itself.
        still_waiting: collections.deque[_Waiter] = collections.deque()
        while self._queue:
            waiter = self._queue.popleft()
            if not self._conflicts(waiter.ctx, waiter.mode):
                waiter.event.succeed()
            else:
                still_waiting.append(waiter)
        self._queue = still_waiting
