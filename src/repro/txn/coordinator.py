"""The transaction coordinator: execution, 2PC and retry."""

from __future__ import annotations

import dataclasses
import typing

from repro.actors.errors import SiloUnavailable
from repro.txn.context import TransactionContext, TransactionStatus
from repro.txn.errors import TransactionAborted

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.actors.cluster import Cluster
    from repro.runtime import Event


@dataclasses.dataclass
class TxnConfig:
    """Cost model and retry policy for distributed transactions."""

    #: One-way latency of a coordinator <-> participant control message.
    control_latency: float = 0.0003
    #: Durable write of the coordinator's commit decision.
    coordinator_log_latency: float = 0.0005
    #: CPU charged on the coordinator side per 2PC round.
    coordinator_cpu: float = 0.00005
    max_retries: int = 8
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    #: Ablation switches (bench A1): disable pieces of the protocol.
    enable_locking: bool = True
    enable_two_phase_commit: bool = True


@dataclasses.dataclass
class TxnStats:
    started: int = 0
    committed: int = 0
    aborted: int = 0
    retries: int = 0
    wait_die_deaths: int = 0
    #: Retries caused by a silo crash/stop mid-transaction (membership
    #: churn), as opposed to concurrency-control aborts.
    silo_retries: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class TransactionRunner:
    """Runs application functions as distributed ACID transactions.

    ``run(body)`` executes ``body(ctx)`` — which issues grain calls that
    carry ``ctx`` — then drives two-phase commit over every participant
    the transaction touched.  On :class:`TransactionAborted` the attempt
    is rolled back and retried with exponential backoff, *keeping the
    original wait-die priority* so old transactions eventually win.
    """

    def __init__(self, cluster: "Cluster",
                 config: TxnConfig | None = None) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.config = config or TxnConfig()
        self.stats = TxnStats()
        self._rng = cluster.env.rng("txn-runner")

    # ------------------------------------------------------------------
    def run(self, body: typing.Callable[[TransactionContext], "Event"]):
        """Process helper: execute ``body`` transactionally with retry.

        ``body(ctx)`` must return an event (typically a grain-call
        promise); its value becomes the transaction's result.
        """
        priority: tuple[float, int] | None = None
        attempt = 0
        while True:
            attempt += 1
            ctx = TransactionContext(self.env.now,
                                     inherit_priority=priority)
            priority = ctx.priority
            ctx.attempt = attempt
            self.stats.started += 1
            try:
                result = yield body(ctx)
            except TransactionAborted as abort:
                yield from self._abort_all(ctx)
                if abort.reason == "wait-die":
                    self.stats.wait_die_deaths += 1
                if attempt > self.config.max_retries:
                    self.stats.aborted += 1
                    raise
                self.stats.retries += 1
                yield self.env.timeout(self._backoff(attempt))
                continue
            except SiloUnavailable:
                # A participant's silo crashed or stopped under the
                # transaction: roll back and retry — the next attempt
                # routes to the grain's new owner.  This is what makes
                # the transactional app ride through membership churn
                # (at the cost of retries the stats surface).
                yield from self._abort_all(ctx)
                if attempt > self.config.max_retries:
                    self.stats.aborted += 1
                    raise
                self.stats.retries += 1
                self.stats.silo_retries += 1
                yield self.env.timeout(self._backoff(attempt))
                continue
            except BaseException:
                # Non-transactional failure: roll back, do not retry.
                yield from self._abort_all(ctx)
                self.stats.aborted += 1
                raise
            committed = yield from self._commit(ctx)
            if committed:
                self.stats.committed += 1
                return result
            if attempt > self.config.max_retries:
                self.stats.aborted += 1
                raise TransactionAborted(
                    f"txn {ctx.txid} exceeded {self.config.max_retries} "
                    f"retries", reason="veto")
            self.stats.retries += 1
            yield self.env.timeout(self._backoff(attempt))

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        base = self.config.backoff_base * (
            self.config.backoff_factor ** (attempt - 1))
        jitter = 1.0 + self.config.backoff_jitter * self._rng.random()
        return base * jitter

    def _control_hop(self):
        yield self.env.timeout(self.config.control_latency)

    def _commit(self, ctx: TransactionContext):
        """Process helper: run 2PC; returns True on commit."""
        participants = list(ctx.participants.values())
        if not self.config.enable_two_phase_commit:
            # Ablation: one-shot parallel commit without a prepare round.
            if participants:
                yield self.env.all_of([
                    self.env.process(self._commit_one(participant, ctx),
                                     name="commit1p")
                    for participant in participants])
            ctx.status = TransactionStatus.COMMITTED
            return True
        ctx.status = TransactionStatus.PREPARING
        # Prepare phase: one control round-trip + log force, in parallel.
        votes = yield self.env.all_of([
            self.env.process(self._prepare_one(participant, ctx),
                             name=f"prepare:{participant.identity}")
            for participant in participants])
        if not all(votes.todict().values()):
            yield from self._abort_all(ctx)
            return False
        # Coordinator durably records the commit decision.
        yield self.env.timeout(self.config.coordinator_log_latency)
        # Commit phase, in parallel.
        yield self.env.all_of([
            self.env.process(self._commit_one(participant, ctx),
                             name=f"commit:{participant.identity}")
            for participant in participants])
        ctx.status = TransactionStatus.COMMITTED
        return True

    def _prepare_one(self, participant, ctx: TransactionContext):
        yield from self._control_hop()
        vote = yield from participant.prepare(ctx)
        yield from self._control_hop()
        return vote

    def _commit_one(self, participant, ctx: TransactionContext):
        yield from self._control_hop()
        yield from participant.commit(ctx)

    def _abort_all(self, ctx: TransactionContext):
        ctx.status = TransactionStatus.ABORTED
        for participant in ctx.participants.values():
            participant.abort(ctx)
        return
        yield  # pragma: no cover - generator marker
