"""Availability analysis for fault-injection runs.

Correlates a run's per-second throughput and error timelines with the
membership fault log to answer the questions a fault scenario exists
to ask: how deep was the outage, how long until the system was back to
its pre-fault throughput, and how much state did the fault destroy.

Definitions (all in whole measured-window seconds):

*pre-fault throughput*
    mean successful completions/second over the seconds strictly
    before the first disruptive fault (crash or drain).
*unavailable second*
    a second at/after the fault with at least one failed/aborted
    transaction, or with throughput below ``dip_fraction`` of the
    pre-fault mean.
*unavailability window*
    the span from the first to the last unavailable second.
*recovery time*
    seconds from the fault until the first second that is both
    error-free and at/above ``recovery_fraction`` of the pre-fault
    throughput; None when the run never recovers inside the window.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.driver.metrics import RunMetrics

#: Fault actions that take capacity away (joins only add it).
DISRUPTIVE_ACTIONS = ("crash_silo", "drain_silo")


@dataclasses.dataclass
class AvailabilityReport:
    """The availability story of one fault-injection run."""

    app: str
    #: Applied fault-log entries (time, second, action, target, ...).
    faults: list[dict]
    #: Measured second of the first disruptive fault, or None.
    fault_second: int | None
    #: Mean ok/s over the seconds before the fault (0.0 if none).
    pre_fault_tps: float
    #: Per-second rows: second, ok, errors, available.
    rows: list[dict]
    #: (first, last) unavailable second, or None when fully available.
    unavailability_window: tuple[int, int] | None
    #: Seconds from fault to recovery, or None (never recovered).
    recovery_time: float | None
    #: Volatile activations destroyed by crashes (state gone).
    state_loss_events: int
    #: Volatile activations deactivated by drain/migration handoffs.
    volatile_handoffs: int
    #: Messages re-placed and calls failed by membership churn.
    reroutes: int
    unavailable_failures: int

    @property
    def unavailable_seconds(self) -> int:
        return sum(1 for row in self.rows if not row["available"])

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def summary_row(self) -> dict:
        """One table row for cross-app comparisons."""
        window = self.unavailability_window
        return {
            "app": self.app,
            "fault_s": self.fault_second,
            "pre_tps": round(self.pre_fault_tps, 1),
            "unavail_s": self.unavailable_seconds,
            "window": (f"{window[0]}..{window[1]}" if window else "-"),
            "recovery_s": (round(self.recovery_time, 1)
                           if self.recovery_time is not None else "-"),
            "state_loss": self.state_loss_events,
            "reroutes": self.reroutes,
        }


def _membership_runtime(metrics: "RunMetrics") -> dict:
    return metrics.runtime.get("membership", {})


def availability_report(metrics: "RunMetrics",
                        dip_fraction: float = 0.5,
                        recovery_fraction: float = 0.7,
                        ) -> AvailabilityReport:
    """Compute the availability story of ``metrics``.

    Works on any open-loop run that carried a fault schedule; a run
    whose faults were all skipped (no actor cluster) yields a report
    with ``fault_second=None`` and every second available.
    """
    faults = [entry for entry
              in metrics.open_loop.get("fault_events", [])
              if entry.get("applied")]
    disruptions = [entry["second"] for entry in faults
                   if entry["action"] in DISRUPTIVE_ACTIONS]
    fault_second = min(disruptions) if disruptions else None

    ok = dict(metrics.timeline)
    errors = dict(metrics.error_timeline)
    # Whole seconds of the measured window only: the trailing partial
    # bucket (late drain completions) would read as a spurious dip.
    seconds = list(range(int(metrics.duration)))
    pre = [ok.get(second, 0) for second in seconds
           if fault_second is not None and 0 <= second < fault_second]
    pre_fault_tps = sum(pre) / len(pre) if pre else 0.0

    rows = []
    for second in seconds:
        ok_count = ok.get(second, 0)
        err_count = errors.get(second, 0)
        degraded = (fault_second is not None and second >= fault_second
                    and (err_count > 0
                         or ok_count < dip_fraction * pre_fault_tps))
        rows.append({"second": second, "ok": ok_count,
                     "errors": err_count, "available": not degraded})

    unavailable = [row["second"] for row in rows if not row["available"]]
    window = ((unavailable[0], unavailable[-1]) if unavailable else None)

    recovery_time = None
    if fault_second is not None:
        for row in rows:
            if row["second"] < fault_second:
                continue
            if (row["errors"] == 0
                    and row["ok"] >= recovery_fraction * pre_fault_tps):
                recovery_time = float(row["second"] - fault_second)
                break

    membership = _membership_runtime(metrics)
    return AvailabilityReport(
        app=metrics.app,
        faults=faults,
        fault_second=fault_second,
        pre_fault_tps=pre_fault_tps,
        rows=rows,
        unavailability_window=window,
        recovery_time=recovery_time,
        state_loss_events=membership.get("state_loss_events", 0),
        volatile_handoffs=membership.get("volatile_handoffs", 0),
        reroutes=membership.get("reroutes", 0),
        unavailable_failures=membership.get("unavailable_failures", 0))


def availability_rows(metrics: "RunMetrics") -> list[dict]:
    """Per-second availability rows (for CSV/markdown export)."""
    report = availability_report(metrics)
    return [dict(row, app=metrics.app) for row in report.rows]
