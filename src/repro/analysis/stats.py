"""Small, dependency-free statistics helpers.

Implemented by hand (rather than pulling in numpy for two functions) so
that the library's runtime dependencies stay empty; numpy remains a
dev/benchmark convenience only.
"""

from __future__ import annotations

import math
import typing


def mean(values: typing.Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: typing.Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches numpy's default ("linear") method.  Returns 0.0 for an
    empty sequence.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    fraction = rank - lower
    return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


def percentiles(values: typing.Sequence[float],
                qs: typing.Sequence[float] = (50, 95, 99)) -> dict[
                    float, float]:
    """Several percentiles at once (sorted once)."""
    ordered = sorted(values)
    return {q: percentile(ordered, q) for q in qs}


def describe(values: typing.Sequence[float]) -> dict[str, float]:
    """count/mean/p50/p95/p99/min/max summary of a latency sample."""
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "min": 0.0, "max": 0.0}
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "mean": mean(ordered),
        "p50": percentile(ordered, 50),
        "p95": percentile(ordered, 95),
        "p99": percentile(ordered, 99),
        "min": ordered[0],
        "max": ordered[-1],
    }
