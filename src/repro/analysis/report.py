"""Experiment report rendering: markdown and CSV exports.

Benchmark results (RunMetrics + CriteriaReport) rendered into the
artifacts a paper pipeline needs: markdown tables for docs, CSV for
plotting, and a combined experiment report that mirrors the layout of
EXPERIMENTS.md.
"""

from __future__ import annotations

import io
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.criteria import CriteriaReport
    from repro.core.driver.metrics import RunMetrics


def markdown_table(rows: list[dict], columns: list[str] | None = None,
                   ) -> str:
    """Render dict rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    out = io.StringIO()
    out.write("| " + " | ".join(str(col) for col in columns) + " |\n")
    out.write("|" + "|".join("---" for _ in columns) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(str(row.get(col, ""))
                                    for col in columns) + " |\n")
    return out.getvalue()


def csv_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render dict rows as CSV (no quoting needed for our numerics)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        text = str(value)
        if "," in text or '"' in text or "\n" in text:
            escaped = text.replace('"', '""')
            return f'"{escaped}"'
        return text

    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for row in rows:
        out.write(",".join(cell(row.get(col, "")) for col in columns)
                  + "\n")
    return out.getvalue()


def metrics_rows(metrics: "RunMetrics") -> list[dict]:
    """Flatten RunMetrics into per-operation export rows.

    Delegates to :meth:`RunMetrics.summary_rows` (one row builder to
    keep in sync), swapping the display-rounded ``tps`` column for a
    finer ``throughput_tps`` and adding ``mean_ms``.  Open-loop queue
    columns come along on every row, so markdown/CSV renderers that
    infer columns from the first row keep them.
    """
    rows = []
    for row, (_, op) in zip(metrics.summary_rows(),
                            sorted(metrics.ops.items())):
        row = dict(row)
        del row["tps"]
        row["throughput_tps"] = round(op.throughput, 2)
        row["mean_ms"] = round(op.latency["mean"] * 1000, 3)
        rows.append(row)
    return rows


def timeline_rows(metrics: "RunMetrics") -> list[dict]:
    """Per-second committed throughput: the saturation-knee series."""
    return [{"app": metrics.app, "second": second, "committed": count}
            for second, count in metrics.timeline]


def saturation_second(metrics: "RunMetrics",
                      fraction: float = 0.95) -> int | None:
    """First second whose completion count reaches ``fraction`` of the
    run's per-second peak — where the throughput curve flattens (the
    knee) on a ramped open-loop run.  ``None`` without a timeline."""
    if not metrics.timeline:
        return None
    peak = max(count for _, count in metrics.timeline)
    for second, count in metrics.timeline:
        if count >= fraction * peak:
            return second
    return None  # pragma: no cover - peak always reaches itself


def criteria_rows(reports: typing.Iterable["CriteriaReport"]) -> list[
        dict]:
    """One compliance-matrix row per app."""
    return [report.row() for report in reports]


def experiment_report(title: str,
                      metrics: typing.Sequence["RunMetrics"],
                      reports: typing.Sequence["CriteriaReport"] = (),
                      notes: str = "") -> str:
    """A full markdown experiment report (throughput + criteria)."""
    out = io.StringIO()
    out.write(f"# {title}\n\n")
    if notes:
        out.write(notes.rstrip() + "\n\n")
    out.write("## Throughput & latency\n\n")
    summary = [{
        "app": entry.app,
        "workers": entry.workers,
        "total_tps": round(entry.total_throughput, 1),
        "checkout_p50_ms": round(
            entry.latency_of("checkout") * 1000, 2),
        "checkout_p99_ms": round(
            entry.latency_of("checkout", "p99") * 1000, 2),
    } for entry in metrics]
    out.write(markdown_table(summary))
    out.write("\n## Per-operation detail\n\n")
    detail: list[dict] = []
    for entry in metrics:
        detail.extend(metrics_rows(entry))
    out.write(markdown_table(detail))
    if reports:
        out.write("\n## Criteria compliance\n\n")
        out.write(markdown_table(criteria_rows(reports)))
    return out.getvalue()
