"""Anomaly reporting: criteria violations normalised per 10k transactions.

Used by the F6 experiment to compare how many anomalies each platform
accumulates under identical workloads (optionally with injected message
loss or failures).
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.criteria import CriteriaReport
    from repro.core.driver.metrics import RunMetrics


@dataclasses.dataclass
class AnomalyReport:
    """Violations per criterion, absolute and per 10k transactions."""

    app: str
    transactions: int
    violations: dict[str, int]

    @property
    def total_violations(self) -> int:
        return sum(self.violations.values())

    def per_10k(self, criterion: str | None = None) -> float:
        if self.transactions == 0:
            return 0.0
        count = (self.total_violations if criterion is None
                 else self.violations.get(criterion, 0))
        return 10_000.0 * count / self.transactions

    def row(self) -> dict:
        row: dict[str, object] = {
            "app": self.app, "transactions": self.transactions}
        for criterion, count in sorted(self.violations.items()):
            row[criterion] = count
        row["total_per_10k"] = round(self.per_10k(), 2)
        return row

    @classmethod
    def from_report(cls, report: "CriteriaReport",
                    metrics: "RunMetrics") -> "AnomalyReport":
        transactions = sum(op.count for op in metrics.ops.values())
        return cls(
            app=report.app, transactions=transactions,
            violations={name: result.violations
                        for name, result in report.results.items()})
