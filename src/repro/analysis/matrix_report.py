"""Cross-run merge and rendering of experiment-matrix results.

Takes the per-cell results of a :func:`repro.core.matrix.run_matrix`
run and folds them into the comparison surface the paper reports: one
table per scenario with a row per (app, rate-scale), aggregated over
the seed sweep — mean plus sample standard deviation (the error bars)
for throughput and checkout latency, an availability percentage for
fault scenarios, and the worst criteria score any seed produced.

Pure functions over plain data: cells come in as
:class:`repro.core.matrix.CellResult` (their ``payload`` dicts are
canonical, wall-clock-free simulated-time records), tables go out as
dict rows ready for :func:`format_table` (console),
:func:`repro.analysis.report.markdown_table` (docs) or JSON export.
"""

from __future__ import annotations

import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.matrix import CellResult, MatrixResult


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _stdev(values: list[float]) -> float:
    """Sample standard deviation (0.0 below two samples)."""
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(sum((value - mean) ** 2 for value in values)
                     / (len(values) - 1))


def _checkout_ms(payload: dict, field: str) -> float:
    """Checkout latency column (ms) from a cell payload, 0.0 if the
    mix produced no checkouts."""
    for row in payload.get("ops", ()):
        if row.get("operation") == "checkout":
            return float(row.get(field, 0.0))
    return 0.0


def availability_pct(payload: dict) -> float:
    """Percentage of measured seconds the cell was available.

    100.0 for runs without (applied) faults; otherwise derived from
    the availability summary's unavailable-second count.
    """
    summary = payload.get("availability")
    duration = payload.get("duration") or 0.0
    if not summary or duration <= 0:
        return 100.0
    unavailable = summary.get("unavailable_seconds", 0)
    return max(0.0, 100.0 * (1.0 - unavailable / duration))


def _criteria_score(payload: dict) -> tuple[int, int]:
    criteria = payload.get("criteria", {})
    passed = sum(1 for entry in criteria.values() if entry["passed"])
    return passed, len(criteria)


def merge_cells(results: "typing.Sequence[CellResult]",
                ) -> dict[str, list[dict]]:
    """Fold cell results into per-scenario comparison tables.

    Returns ``{scenario: [row, ...]}``; each row aggregates one
    (app, rate-scale) group over its seed sweep.  ``*_sd`` columns are
    sample standard deviations across seeds — 0.0 for single-seed
    sweeps.  Failed/crashed cells are counted per group (``failed``)
    and excluded from the aggregates.
    """
    groups: dict[tuple[str, str, float], list[CellResult]] = {}
    order: list[tuple[str, str, float]] = []
    for result in results:
        key = (result.cell.scenario, result.cell.app,
               result.cell.rate_scale)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(result)

    tables: dict[str, list[dict]] = {}
    for key in order:
        scenario, app, rate_scale = key
        members = groups[key]
        payloads = [member.payload for member in members
                    if member.ok and member.payload is not None]
        tps = [payload["total_tps"] for payload in payloads]
        p50 = [_checkout_ms(payload, "p50_ms") for payload in payloads]
        p99 = [_checkout_ms(payload, "p99_ms") for payload in payloads]
        avail = [availability_pct(payload) for payload in payloads]
        scores = [_criteria_score(payload) for payload in payloads]
        worst = min(scores, default=(0, 0))
        row = {
            "app": app,
            "rate_scale": rate_scale,
            "seeds": len(payloads),
            "failed": len(members) - len(payloads),
            "tps": round(_mean(tps), 1),
            "tps_sd": round(_stdev(tps), 1),
            "checkout_p50_ms": round(_mean(p50), 2),
            "p50_sd": round(_stdev(p50), 2),
            "checkout_p99_ms": round(_mean(p99), 2),
            "p99_sd": round(_stdev(p99), 2),
            "avail_pct": round(_mean(avail), 1) if avail else 0.0,
            "criteria": f"{worst[0]}/{worst[1]}" if scores else "-",
        }
        tables.setdefault(scenario, []).append(row)
    return tables


def format_table(rows: list[dict],
                 columns: list[str] | None = None) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: max(len(str(col)),
                       *(len(str(row.get(col, ""))) for row in rows))
              for col in columns}
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    lines = [header, "-" * len(header)]
    lines.extend("  ".join(str(row.get(col, "")).ljust(widths[col])
                           for col in columns) for row in rows)
    return "\n".join(lines) + "\n"


def _display_rows(rows: list[dict]) -> list[dict]:
    """Collapse mean/sd column pairs into ``mean ±sd`` console cells
    (the sd is omitted for single-seed sweeps, where it is 0 by
    construction)."""
    collapsed = []
    for row in rows:
        multi = row["seeds"] > 1
        collapsed.append({
            "app": row["app"],
            "rate": f"{row['rate_scale']:g}x",
            "seeds": row["seeds"],
            "tps": (f"{row['tps']} ±{row['tps_sd']}" if multi
                    else f"{row['tps']}"),
            "checkout p50 ms": (
                f"{row['checkout_p50_ms']} ±{row['p50_sd']}" if multi
                else f"{row['checkout_p50_ms']}"),
            "checkout p99 ms": (
                f"{row['checkout_p99_ms']} ±{row['p99_sd']}" if multi
                else f"{row['checkout_p99_ms']}"),
            "avail %": row["avail_pct"],
            "criteria": row["criteria"],
            "failed": row["failed"] or "",
        })
    return collapsed


def render_matrix_report(result: "MatrixResult") -> str:
    """The merged console report: header, one table per scenario
    (per-app throughput/latency/availability columns, seed-sweep error
    bars) and a failure list."""
    lines = [
        f"matrix: {len(result.cells)} cells  "
        f"workers: {result.workers}  "
        f"wall: {result.wall_s:.1f}s  "
        f"ok: {len(result.completed)}  "
        f"failed: {len(result.failures)}",
    ]
    tables = merge_cells(result.cells)
    for scenario, rows in tables.items():
        lines.append(f"\nscenario: {scenario}")
        lines.append(format_table(_display_rows(rows)).rstrip("\n"))
    if result.failures:
        lines.append("\nfailed cells:")
        for failure in result.failures:
            lines.append(f"  {failure.cell.cell_id:40s} "
                         f"{failure.status}: {failure.error}")
    return "\n".join(lines) + "\n"


def matrix_report_json(result: "MatrixResult") -> dict:
    """The full machine-readable export: per-cell records (status,
    wall time, canonical payload) plus the merged per-scenario
    tables."""
    return dict(result.as_dict(), tables=merge_cells(result.cells))
