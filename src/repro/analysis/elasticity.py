"""Elasticity analysis for autoscaled runs.

Turns the control block an autoscaled open-loop run exports (the
per-interval :class:`~repro.control.autoscaler.Autoscaler` samples plus
the audited action log) into the questions an elasticity experiment
exists to ask: how long did the controller take to react, how long
until the SLO held again, and how many silo-seconds were wasted above —
or missing below — the ideal capacity curve.

Definitions:

*ideal capacity*
    per sample, ``clamp(ceil(arrival_rate / rate_per_silo), min_silos,
    max_silos)`` — the silo count a clairvoyant provisioner running the
    controller's own capacity model would hold.  ``rate_per_silo``
    comes from the autoscaler config; when the config leaves it None it
    is derived from the run's mean arrival rate and starting shape.
*scaling lag*
    seconds from the first SLO-breaching sample to the first applied
    ``add_silo`` (None when nothing breached or nothing was applied).
*recovery time*
    seconds from the first breaching sample to the start of the final
    breach-free suffix of the sample series; None when the last sample
    still breaches (the run ended out of SLO).
*over-/under-provisioning area*
    silo-seconds spent above/below the ideal curve, each sample
    counting for one controller interval.

The report is embedded in matrix cell payloads (``elasticity`` key) by
:func:`repro.core.matrix.cell_payload` and drives
``benchmarks/bench_e0_elasticity.py``; ``docs/elasticity.md`` walks
through the semantics.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass
class ElasticityReport:
    """The elasticity story of one autoscaled run."""

    app: str
    #: SLO the controller defended (queue_delay_p95, error_rate).
    slo: dict
    #: Whether the controller was allowed to act (False = the
    #: fixed-provisioning baseline, observing only).
    enabled: bool
    #: Arrivals/second one silo is provisioned for in the ideal curve.
    rate_per_silo: float
    #: Samples with the p95 or error bound breached, in seconds.
    slo_violation_seconds: float
    #: First breach -> first applied add_silo, or None.
    scaling_lag: float | None
    #: First breach -> start of the final breach-free suffix, or None
    #: when the run ended still in breach.
    recovery_time: float | None
    #: True when the sample series ends inside the SLO.
    recovered: bool
    #: Silo-seconds above / below the ideal capacity curve.
    over_provisioned_area: float
    under_provisioned_area: float
    #: Integral of live silos over the sampled run, in silo-seconds.
    silo_seconds: float
    ideal_silo_seconds: float
    peak_silos: int
    min_silos: int
    #: Applied membership actions by kind (autoscaler source only).
    scale_ups: int
    scale_downs: int

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def summary_row(self) -> dict:
        """One table row for cross-app comparisons."""
        return {
            "app": self.app,
            "violation_s": round(self.slo_violation_seconds, 2),
            "lag_s": (round(self.scaling_lag, 2)
                      if self.scaling_lag is not None else "-"),
            "recovery_s": (round(self.recovery_time, 2)
                           if self.recovery_time is not None else "-"),
            "silos": f"{self.min_silos}..{self.peak_silos}",
            "over_area": round(self.over_provisioned_area, 2),
            "under_area": round(self.under_provisioned_area, 2),
            "actions": f"+{self.scale_ups}/-{self.scale_downs}",
        }


def elasticity_report(control: dict,
                      app: str = "") -> ElasticityReport | None:
    """Compute the elasticity story of one run's ``control`` block.

    ``control`` is the ``open_loop["control"]`` dict an autoscaled run
    exports (SLO, bounds, samples, actions); returns None when there
    are no samples to analyse.
    """
    samples = control.get("samples") or []
    if not samples:
        return None
    interval = control.get("interval") or 1.0
    min_bound = control.get("min_silos", 1)
    max_bound = control.get("max_silos", max(s["silos"] for s in samples))

    rate_per_silo = control.get("rate_per_silo")
    if not rate_per_silo:
        mean_rate = (sum(s["arrival_rate"] for s in samples)
                     / len(samples))
        rate_per_silo = max(mean_rate / samples[0]["silos"], 1e-9)

    over = under = silo_seconds = ideal_seconds = 0.0
    for sample in samples:
        ideal = math.ceil(sample["arrival_rate"] / rate_per_silo)
        ideal = min(max(ideal, min_bound), max_bound)
        over += max(0, sample["silos"] - ideal) * interval
        under += max(0, ideal - sample["silos"]) * interval
        silo_seconds += sample["silos"] * interval
        ideal_seconds += ideal * interval

    breaches = [s["time"] for s in samples if s["breach"]]
    first_breach = breaches[0] if breaches else None
    last_breach = breaches[-1] if breaches else None
    recovered = not samples[-1]["breach"]

    scaling_lag = None
    recovery_time = None
    if first_breach is not None:
        adds = [entry["time"] for entry in control.get("actions", [])
                if entry["action"] == "add_silo" and entry["applied"]
                and entry.get("source") == "autoscaler"
                and entry["time"] >= first_breach]
        if adds:
            scaling_lag = adds[0] - first_breach
        if recovered:
            # The SLO holds again from the sample after the last
            # breach; the final suffix of the series is breach-free.
            recovery_time = (last_breach + interval) - first_breach

    actions = [entry for entry in control.get("actions", [])
               if entry["applied"] and entry.get("source") == "autoscaler"]
    return ElasticityReport(
        app=app,
        slo=dict(control.get("slo", {})),
        enabled=control.get("enabled", True),
        rate_per_silo=rate_per_silo,
        slo_violation_seconds=len(breaches) * interval,
        scaling_lag=scaling_lag,
        recovery_time=recovery_time,
        recovered=recovered,
        over_provisioned_area=over,
        under_provisioned_area=under,
        silo_seconds=silo_seconds,
        ideal_silo_seconds=ideal_seconds,
        peak_silos=max(s["silos"] for s in samples),
        min_silos=min(s["silos"] for s in samples),
        scale_ups=sum(1 for entry in actions
                      if entry["action"] == "add_silo"),
        scale_downs=sum(1 for entry in actions
                        if entry["action"] == "drain_silo"))


def elasticity_rows(reports: "list[ElasticityReport]") -> list[dict]:
    """Summary rows for CSV/markdown export, one per report."""
    return [report.summary_row() for report in reports]
