"""Statistics helpers and anomaly analysis for benchmark reports."""

from repro.analysis.anomalies import AnomalyReport
from repro.analysis.availability import (
    AvailabilityReport,
    availability_report,
    availability_rows,
)
from repro.analysis.report import (
    criteria_rows,
    csv_table,
    experiment_report,
    markdown_table,
    metrics_rows,
    saturation_second,
    timeline_rows,
)
from repro.analysis.stats import (
    describe,
    mean,
    percentile,
    percentiles,
)

__all__ = [
    "AnomalyReport",
    "AvailabilityReport",
    "availability_report",
    "availability_rows",
    "criteria_rows",
    "csv_table",
    "describe",
    "experiment_report",
    "markdown_table",
    "mean",
    "metrics_rows",
    "percentile",
    "percentiles",
    "saturation_second",
    "timeline_rows",
]
