"""Statistics helpers and anomaly analysis for benchmark reports."""

from repro.analysis.anomalies import AnomalyReport
from repro.analysis.availability import (
    AvailabilityReport,
    availability_report,
    availability_rows,
)
from repro.analysis.elasticity import (
    ElasticityReport,
    elasticity_report,
    elasticity_rows,
)
from repro.analysis.matrix_report import (
    availability_pct,
    format_table,
    matrix_report_json,
    merge_cells,
    render_matrix_report,
)
from repro.analysis.report import (
    criteria_rows,
    csv_table,
    experiment_report,
    markdown_table,
    metrics_rows,
    saturation_second,
    timeline_rows,
)
from repro.analysis.stats import (
    describe,
    mean,
    percentile,
    percentiles,
)

__all__ = [
    "AnomalyReport",
    "AvailabilityReport",
    "ElasticityReport",
    "availability_pct",
    "availability_report",
    "availability_rows",
    "criteria_rows",
    "csv_table",
    "describe",
    "elasticity_report",
    "elasticity_rows",
    "experiment_report",
    "format_table",
    "markdown_table",
    "matrix_report_json",
    "mean",
    "merge_cells",
    "metrics_rows",
    "percentile",
    "percentiles",
    "render_matrix_report",
    "saturation_second",
    "timeline_rows",
]
