"""Statistics helpers and anomaly analysis for benchmark reports."""

from repro.analysis.stats import (
    describe,
    mean,
    percentile,
    percentiles,
)
from repro.analysis.anomalies import AnomalyReport
from repro.analysis.report import (
    criteria_rows,
    csv_table,
    experiment_report,
    markdown_table,
    metrics_rows,
)

__all__ = [
    "AnomalyReport",
    "criteria_rows",
    "csv_table",
    "experiment_report",
    "markdown_table",
    "metrics_rows",
    "describe",
    "mean",
    "percentile",
    "percentiles",
]
