"""The app interface the benchmark driver runs against.

Every implementation exposes the same operations — the five business
transactions of Online Marketplace plus cart item management and data
ingestion.  Operations are *process helpers* (``yield from app.op(...)``)
so that every implementation charges its own simulated costs.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.control.signals import PlatformStats
    from repro.core.workload.dataset import Dataset
    from repro.runtime import Environment


@dataclasses.dataclass
class AppConfig:
    """Deployment knobs shared by all implementations."""

    silos: int = 4
    cores_per_silo: int = 4
    #: Message-loss probability (exercised by the anomaly experiments).
    drop_probability: float = 0.0
    #: Payment approval rate (deterministic per order id).
    approval_rate: float = 1.0
    #: Replication lag of the KV replica tier (customized app only).
    replication_lag: float = 0.0005
    #: Checkpoint interval (statefun app only; 0 disables).
    checkpoint_interval: float = 0.5
    #: Working-set budget: max resident grain activations per silo
    #: (statefun: max resident addresses per worker).  None = unbounded,
    #: the historical behaviour.  Under a budget, least-recently-used
    #: idle grains persist their state and deactivate; re-activation
    #: re-reads it (see ``actors/cluster.py``).
    activation_limit: int | None = None


@dataclasses.dataclass
class OperationResult:
    """Uniform result record handed back to the driver."""

    status: str  # "ok" | "rejected" | "failed" | "aborted"
    operation: str
    payload: dict = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class MarketplaceApp:
    """Abstract base for the four implementations."""

    name = "abstract"

    def __init__(self, env: "Environment",
                 config: AppConfig | None = None) -> None:
        self.env = env
        self.config = config or AppConfig()
        self.dataset: "Dataset | None" = None
        self._touched_sellers: set[int] = set()
        self._touched_customers: set[int] = set()
        self._touched_products: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def ingest(self, dataset: "Dataset") -> None:
        """Install the dataset (zero simulated latency).

        Eager datasets are installed up front in the historical order —
        every product (with its replica state), then stock, sellers,
        customers — via the per-record ``_ingest_*`` hooks each
        implementation provides.  Lazy datasets install nothing here;
        records arrive through :meth:`touch_product` & co. on first use.
        Ingestion models out-of-band data loading, so implementations
        install state directly rather than spending simulated time.
        """
        self.dataset = dataset
        if not getattr(dataset, "lazy", False):
            for product in dataset.all_products():
                self._ingest_product(product)
            for key, stock_item in dataset.stock.items():
                self._ingest_stock(stock_item)
            for seller in dataset.sellers:
                self._ingest_seller(seller)
            for customer in dataset.customers:
                self._ingest_customer(customer)
        self._post_ingest()

    # Per-record ingestion hooks.  Implementations override these; the
    # base ingest driver (eager path) and the touch_* methods (lazy
    # path) share them so both paths install identical state.
    def _ingest_product(self, product) -> None:
        raise NotImplementedError

    def _ingest_stock(self, stock_item) -> None:
        raise NotImplementedError

    def _ingest_seller(self, seller) -> None:
        raise NotImplementedError

    def _ingest_customer(self, customer) -> None:
        raise NotImplementedError

    def _post_ingest(self) -> None:
        """Hook run once after ingestion (eager or lazy)."""

    # ------------------------------------------------------------------
    # on-demand ingestion (lazy datasets)
    # ------------------------------------------------------------------
    def touch_seller(self, seller_id: int) -> None:
        """Ensure the seller's record is installed (no-op when eager)."""
        dataset = self.dataset
        if dataset is None or not dataset.lazy:
            return
        if seller_id in self._touched_sellers:
            return
        self._touched_sellers.add(seller_id)
        self._ingest_seller(dataset.seller(seller_id))

    def touch_customer(self, customer_id: int) -> None:
        """Ensure the customer's record is installed (no-op when eager)."""
        dataset = self.dataset
        if dataset is None or not dataset.lazy:
            return
        if customer_id in self._touched_customers:
            return
        self._touched_customers.add(customer_id)
        self._ingest_customer(dataset.customer(customer_id))

    def touch_product(self, seller_id: int, product_id: int) -> None:
        """Ensure the product, its stock and its seller are installed."""
        dataset = self.dataset
        if dataset is None or not dataset.lazy:
            return
        key = (seller_id, product_id)
        if key in self._touched_products:
            return
        self._touched_products.add(key)
        self.touch_seller(seller_id)
        self._ingest_product(dataset.product(seller_id, product_id))
        self._ingest_stock(dataset.stock_item(seller_id, product_id))

    # ------------------------------------------------------------------
    # workload operations (process helpers)
    # ------------------------------------------------------------------
    def add_item(self, customer_id: int, seller_id: int, product_id: int,
                 quantity: int, voucher_cents: int = 0):
        """Add a product to the customer's cart at the replicated price."""
        raise NotImplementedError

    def checkout(self, customer_id: int, order_id: str,
                 payment_method: str):
        """The Customer Checkout business transaction."""
        raise NotImplementedError

    def update_price(self, seller_id: int, product_id: int,
                     price_cents: int):
        """The Price Update business transaction."""
        raise NotImplementedError

    def delete_product(self, seller_id: int, product_id: int):
        """The Product Delete business transaction."""
        raise NotImplementedError

    def update_delivery(self):
        """The Update Delivery business transaction (10 sellers)."""
        raise NotImplementedError

    def dashboard(self, seller_id: int):
        """The Seller Dashboard (two queries; see snapshot criterion)."""
        raise NotImplementedError

    def submit_external(self, platform: str, shop_id: int,
                        ext_order_no: str, customer_id: int,
                        items: list[dict]):
        """Ingest one external-platform order, exactly once per
        ``(platform, shop_id, ext_order_no)`` — duplicates must return
        the originally created order."""
        raise NotImplementedError

    def request_return(self, customer_id: int, order_id: str):
        """The return/refund compensation saga for a completed order."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # audits (zero-latency state inspection for the criteria checkers)
    # ------------------------------------------------------------------
    def audit_views(self) -> dict:
        """Return raw state views keyed by service name."""
        raise NotImplementedError

    def runtime_stats(self) -> dict:
        """Platform counters (messages, aborts, checkpoints, ...).

        Free-form and stack-specific by design — these dicts land in
        committed payloads, so their shapes are frozen.  Control-plane
        consumers use :meth:`platform_stats` instead, whose schema is
        uniform across stacks.
        """
        return {}

    def platform_stats(self) -> "PlatformStats":
        """Typed control-plane snapshot; same schema on every stack.

        The documented contract is :data:`repro.control.signals.
        PLATFORM_SCHEMA` (see :meth:`stats_schema`); the control-plane
        contract test holds all four implementations to it.  The base
        implementation reports the static configured shape with
        nothing resident — correct for apps without a scalable
        runtime, e.g. test stubs.
        """
        from repro.control.signals import PlatformStats

        return PlatformStats(
            silos_live=self.config.silos, silos_draining=0,
            silos_total=self.config.silos, resident=0, paged=0,
            messages=0)

    @classmethod
    def stats_schema(cls) -> dict[str, type]:
        """The :meth:`platform_stats` field contract: name -> type."""
        from repro.control.signals import PLATFORM_SCHEMA

        return dict(PLATFORM_SCHEMA)


def ok(operation: str, **payload) -> OperationResult:
    return OperationResult(status="ok", operation=operation,
                           payload=payload)


def rejected(operation: str, **payload) -> OperationResult:
    return OperationResult(status="rejected", operation=operation,
                           payload=payload)


def failed(operation: str, **payload) -> OperationResult:
    return OperationResult(status="failed", operation=operation,
                           payload=payload)


def aborted(operation: str, **payload) -> OperationResult:
    return OperationResult(status="aborted", operation=operation,
                           payload=payload)
