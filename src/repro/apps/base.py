"""The app interface the benchmark driver runs against.

Every implementation exposes the same operations — the five business
transactions of Online Marketplace plus cart item management and data
ingestion.  Operations are *process helpers* (``yield from app.op(...)``)
so that every implementation charges its own simulated costs.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.workload.dataset import Dataset
    from repro.runtime import Environment


@dataclasses.dataclass
class AppConfig:
    """Deployment knobs shared by all implementations."""

    silos: int = 4
    cores_per_silo: int = 4
    #: Message-loss probability (exercised by the anomaly experiments).
    drop_probability: float = 0.0
    #: Payment approval rate (deterministic per order id).
    approval_rate: float = 1.0
    #: Replication lag of the KV replica tier (customized app only).
    replication_lag: float = 0.0005
    #: Checkpoint interval (statefun app only; 0 disables).
    checkpoint_interval: float = 0.5


@dataclasses.dataclass
class OperationResult:
    """Uniform result record handed back to the driver."""

    status: str  # "ok" | "rejected" | "failed" | "aborted"
    operation: str
    payload: dict = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class MarketplaceApp:
    """Abstract base for the four implementations."""

    name = "abstract"

    def __init__(self, env: "Environment",
                 config: AppConfig | None = None) -> None:
        self.env = env
        self.config = config or AppConfig()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def ingest(self, dataset: "Dataset") -> None:
        """Install the generated dataset (zero simulated latency).

        Ingestion happens before the measured window, so implementations
        install state directly rather than spending simulated time.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # workload operations (process helpers)
    # ------------------------------------------------------------------
    def add_item(self, customer_id: int, seller_id: int, product_id: int,
                 quantity: int, voucher_cents: int = 0):
        """Add a product to the customer's cart at the replicated price."""
        raise NotImplementedError

    def checkout(self, customer_id: int, order_id: str,
                 payment_method: str):
        """The Customer Checkout business transaction."""
        raise NotImplementedError

    def update_price(self, seller_id: int, product_id: int,
                     price_cents: int):
        """The Price Update business transaction."""
        raise NotImplementedError

    def delete_product(self, seller_id: int, product_id: int):
        """The Product Delete business transaction."""
        raise NotImplementedError

    def update_delivery(self):
        """The Update Delivery business transaction (10 sellers)."""
        raise NotImplementedError

    def dashboard(self, seller_id: int):
        """The Seller Dashboard (two queries; see snapshot criterion)."""
        raise NotImplementedError

    def submit_external(self, platform: str, shop_id: int,
                        ext_order_no: str, customer_id: int,
                        items: list[dict]):
        """Ingest one external-platform order, exactly once per
        ``(platform, shop_id, ext_order_no)`` — duplicates must return
        the originally created order."""
        raise NotImplementedError

    def request_return(self, customer_id: int, order_id: str):
        """The return/refund compensation saga for a completed order."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # audits (zero-latency state inspection for the criteria checkers)
    # ------------------------------------------------------------------
    def audit_views(self) -> dict:
        """Return raw state views keyed by service name."""
        raise NotImplementedError

    def runtime_stats(self) -> dict:
        """Platform counters (messages, aborts, checkpoints, ...)."""
        return {}


def ok(operation: str, **payload) -> OperationResult:
    return OperationResult(status="ok", operation=operation,
                           payload=payload)


def rejected(operation: str, **payload) -> OperationResult:
    return OperationResult(status="rejected", operation=operation,
                           payload=payload)


def failed(operation: str, **payload) -> OperationResult:
    return OperationResult(status="failed", operation=operation,
                           payload=payload)


def aborted(operation: str, **payload) -> OperationResult:
    return OperationResult(status="aborted", operation=operation,
                           payload=payload)
