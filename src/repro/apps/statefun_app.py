"""Apache Flink Statefun implementation of Online Marketplace.

"Statefun is a dataflow-based platform that provides exactly-once
processing.  This implementation shows lower scalability compared to
Orleans Eventual but outperforms Orleans Transactions by 2 times."
(paper §III)
"""

from __future__ import annotations

import itertools
import typing
import zlib

from repro.apps import statefun_fns as fns
from repro.apps.base import AppConfig, MarketplaceApp, failed, ok, rejected
from repro.dataflow import StatefunConfig, StatefunRuntime

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.workload.dataset import Dataset
    from repro.runtime import Environment


class StatefunApp(MarketplaceApp):
    """Online Marketplace as stateful functions with exactly-once."""

    name = "statefun"
    shipment_partitions = 4

    def __init__(self, env: "Environment",
                 config: AppConfig | None = None,
                 statefun_config: StatefunConfig | None = None) -> None:
        super().__init__(env, config)
        self.runtime = StatefunRuntime(env, statefun_config or
                                       StatefunConfig(
                                           partitions=self.config.silos,
                                           cores_per_partition=self
                                           .config.cores_per_silo,
                                           checkpoint_interval=self
                                           .config.checkpoint_interval,
                                           max_resident_addresses=self
                                           .config.activation_limit))
        for name, cls in (
                ("product", fns.ProductFn), ("replica", fns.ReplicaFn),
                ("stock", fns.StockFn), ("cart", fns.CartFn),
                ("order", fns.OrderFn), ("payment", fns.PaymentFn),
                ("shipment", fns.ShipmentFn), ("delivery", fns.DeliveryFn),
                ("customer", fns.CustomerFn), ("seller", fns.SellerFn),
                ("ingestion", fns.IngestionFn)):
            self.runtime.register(name, cls(self))
        self.dataset: "Dataset | None" = None
        self.event_log: list[dict] = []
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------
    def shipment_partition(self, order_id: str) -> str:
        digest = zlib.crc32(order_id.encode())
        return f"part-{digest % self.shipment_partitions}"

    def record_event(self, order_id: str, kind: str) -> None:
        """Audit hook: seller-side lifecycle event processed."""
        self.event_log.append({"subscriber": "seller-service",
                               "time": self.env.now,
                               "order_id": order_id, "kind": kind})

    def _request_id(self, prefix: str) -> str:
        return f"{prefix}-{next(self._request_ids)}"

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _ingest_product(self, product) -> None:
        data = product.as_dict()
        self._install("product", product.key, data)
        self._install("replica", product.key, {
            "price_cents": data["price_cents"],
            "version": data["version"], "active": data["active"]})

    def _ingest_stock(self, stock_item) -> None:
        self._install("stock", stock_item.key, stock_item.as_dict())

    def _ingest_seller(self, seller) -> None:
        from repro.marketplace.logic import seller as seller_logic
        self._install("seller", str(seller.seller_id),
                      seller_logic.new_seller(
                          seller.seller_id, seller.name, seller.city))

    def _ingest_customer(self, customer) -> None:
        from repro.marketplace.logic import customer as customer_logic
        self._install("customer", str(customer.customer_id),
                      customer_logic.new_customer(
                          customer.customer_id, customer.name,
                          customer.city))

    def _post_ingest(self) -> None:
        # Ingested data is durable: it survives a crash that happens
        # before the first periodic checkpoint.  Lazily-touched records
        # become durable at the next periodic checkpoint instead.
        self.runtime.seal_initial_state()

    def _install(self, type_name: str, key: str, state: dict) -> None:
        worker = self.runtime.worker_for((type_name, key))
        # state_for (rather than a raw dict insert) marks the address
        # dirty for the incremental checkpointer.
        worker.state_for((type_name, key)).update(state)

    # ------------------------------------------------------------------
    # workload operations
    # ------------------------------------------------------------------
    def _await(self, operation: str, target: tuple[str, str],
               payload: dict, request_id: str):
        promise = self.runtime.request(target[0], target[1], payload,
                                       request_id=request_id)
        try:
            outcome = yield promise
        except Exception:
            return failed(operation, reason="unreachable")
        status = outcome.pop("status", "ok")
        if status == "ok":
            return ok(operation, **outcome)
        if status == "rejected":
            return rejected(operation, **outcome)
        return failed(operation, **outcome)

    def add_item(self, customer_id: int, seller_id: int, product_id: int,
                 quantity: int, voucher_cents: int = 0):
        request_id = self._request_id("add")
        result = yield from self._await(
            "add_item", ("cart", str(customer_id)), {
                "kind": "add_item", "seller_id": seller_id,
                "product_id": product_id, "quantity": quantity,
                "voucher_cents": voucher_cents,
                "pending_id": request_id},
            request_id)
        return result

    def checkout(self, customer_id: int, order_id: str,
                 payment_method: str):
        result = yield from self._await(
            "checkout", ("cart", str(customer_id)), {
                "kind": "checkout", "order_id": order_id,
                "method": payment_method},
            order_id)
        return result

    def submit_external(self, platform: str, shop_id: int,
                        ext_order_no: str, customer_id: int,
                        items: list[dict]):
        from repro.marketplace.logic import ingestion as ingestion_logic
        request_id = self._request_id("ext")
        result = yield from self._await(
            "submit_external",
            ("ingestion", ingestion_logic.shard_key(platform, shop_id)), {
                "kind": "submit", "platform": platform,
                "shop_id": shop_id, "ext_order_no": ext_order_no,
                "customer_id": customer_id, "items": items},
            request_id)
        return result

    def request_return(self, customer_id: int, order_id: str):
        request_id = self._request_id("return")
        result = yield from self._await(
            "request_return", ("order", str(customer_id)), {
                "kind": "request_return", "order_id": order_id},
            request_id)
        return result

    def update_price(self, seller_id: int, product_id: int,
                     price_cents: int):
        request_id = self._request_id("price")
        result = yield from self._await(
            "update_price", ("product", f"{seller_id}/{product_id}"), {
                "kind": "update_price", "price_cents": price_cents},
            request_id)
        return result

    def delete_product(self, seller_id: int, product_id: int):
        request_id = self._request_id("delete")
        result = yield from self._await(
            "delete_product", ("product", f"{seller_id}/{product_id}"), {
                "kind": "delete"},
            request_id)
        return result

    def update_delivery(self):
        request_id = self._request_id("delivery")
        result = yield from self._await(
            "update_delivery", ("delivery", request_id),
            {"kind": "start"}, request_id)
        return result

    def dashboard(self, seller_id: int):
        """Two separate requests -> two separate function invocations:
        no shared snapshot, as on the real platform."""
        rid1 = self._request_id("dash-amount")
        promise1 = self.runtime.request(
            "seller", str(seller_id), {"kind": "dashboard_amount"}, rid1)
        amount_reply = yield promise1
        rid2 = self._request_id("dash-entries")
        promise2 = self.runtime.request(
            "seller", str(seller_id), {"kind": "dashboard_entries"}, rid2)
        entries_reply = yield promise2
        entries = entries_reply["entries"]
        return ok("dashboard", amount_cents=amount_reply["amount_cents"],
                  entries=entries,
                  entries_total_cents=sum(entry["amount_cents"]
                                          for entry in entries))

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------
    def audit_views(self) -> dict:
        views: dict[str, dict] = {
            "products": {}, "replicas": {}, "stock": {}, "orders": {},
            "payments": {}, "shipments": {}, "customers": {},
            "sellers": {}, "carts": {}, "ingestion": {},
        }
        type_to_view = {
            "product": "products", "replica": "replicas", "stock": "stock",
            "order": "orders", "payment": "payments",
            "shipment": "shipments", "customer": "customers",
            "seller": "sellers", "cart": "carts",
            "ingestion": "ingestion",
        }
        for worker in self.runtime.workers:
            # Cold (spilled) addresses are the same logical state.
            for states in (worker.state, worker.cold):
                for (type_name, key), state in states.items():
                    view = type_to_view.get(type_name)
                    if view is not None and state:
                        views[view][key] = state
        views["event_log"] = list(self.event_log)
        return views

    def runtime_stats(self) -> dict:
        return {
            "messages_processed": self.runtime.messages_processed,
            "checkpoints": self.runtime.checkpoints_taken,
            "recoveries": self.runtime.recoveries,
            "egress_events": len(self.runtime.egress_log),
            "ingress_compacted": self.runtime.ingress_compacted,
            "working_set": self.runtime.working_set_stats(),
        }

    def platform_stats(self):
        from repro.control.signals import PlatformStats

        return PlatformStats(**self.runtime.control_stats())
