"""Orleans Transactions: ACID distributed transactions over actors.

"We use Orleans Transactions to implement ACID transactional guarantees
to ensure all-or-nothing atomicity and concurrency control.  However,
this comes at a considerable overhead." (paper §III)

The overhead here is mechanical, not scripted: lock waits and wait-die
retries on hot products, prepare/commit rounds with durable log forces
at every participant, and a coordinator log write per transaction.
"""

from __future__ import annotations

import typing
import zlib

from repro.actors import Cluster, ClusterConfig
from repro.apps.base import AppConfig, MarketplaceApp, failed, ok, rejected
from repro.apps.grains_txn import TXN_GRAINS, PaymentDeclined
from repro.broker import Broker, DeliveryMode
from repro.marketplace.constants import Topics
from repro.txn import TransactionAborted, TransactionRunner, TxnConfig

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.workload.dataset import Dataset
    from repro.runtime import Environment


class OrleansTransactionsApp(MarketplaceApp):
    """ACID Online Marketplace on transactional actors."""

    name = "orleans-transactions"
    delivery_mode = DeliveryMode.UNORDERED
    shipment_partitions = 4

    def __init__(self, env: "Environment",
                 config: AppConfig | None = None,
                 txn_config: TxnConfig | None = None) -> None:
        super().__init__(env, config)
        broker = Broker(env, default_mode=self.delivery_mode)
        self.cluster = Cluster(env, ClusterConfig(
            silos=self.config.silos,
            cores_per_silo=self.config.cores_per_silo,
            drop_probability=self.config.drop_probability,
            activation_limit=self.config.activation_limit),
            broker=broker)
        self.cluster.app = self
        self.runner = TransactionRunner(self.cluster, txn_config)
        self._grains = dict(TXN_GRAINS)
        for grain_type in self._grains.values():
            self.cluster.register_grain(grain_type)
        self._subscribe()
        self.dataset: "Dataset | None" = None

    # ------------------------------------------------------------------
    def _grain(self, service: str, key: str):
        return self.cluster.grain_ref(self._grains[service], key)

    def shipment_partition(self, order_id: str) -> str:
        digest = zlib.crc32(order_id.encode())
        return f"part-{digest % self.shipment_partitions}"

    def _subscribe(self) -> None:
        # Replica maintenance is still event-driven (the platform has no
        # replication primitive); seller entries are transactional, so
        # order events feed no state here — they remain observable for
        # the event-ordering audit.
        self.cluster.broker.subscribe(
            Topics.PRICE_UPDATES, "cart-replica-service",
            self._on_price_event)
        self.cluster.broker.subscribe(
            Topics.ORDER_EVENTS, "notification-service", lambda e: None)

    def _on_price_event(self, envelope) -> None:
        payload = envelope.payload
        key = payload["key"]
        if payload["kind"] == "price_updated":
            self._grain("replica", key).tell(
                "apply_update", payload["price_cents"], payload["version"])
        elif payload["kind"] == "product_deleted":
            self._grain("replica", key).tell(
                "apply_delete", payload["version"])

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _ingest_product(self, product) -> None:
        data = product.as_dict()
        self._install("product", product.key, data)
        self._install("replica", product.key, {
            "price_cents": data["price_cents"],
            "version": data["version"], "active": data["active"]})

    def _ingest_stock(self, stock_item) -> None:
        self._install("stock", stock_item.key, stock_item.as_dict())

    def _ingest_seller(self, seller) -> None:
        from repro.marketplace.logic import seller as seller_logic
        self._install("seller", str(seller.seller_id),
                      seller_logic.new_seller(
                          seller.seller_id, seller.name, seller.city))

    def _ingest_customer(self, customer) -> None:
        from repro.marketplace.logic import customer as customer_logic
        self._install("customer", str(customer.customer_id),
                      customer_logic.new_customer(
                          customer.customer_id, customer.name,
                          customer.city))

    def _install(self, service: str, key: str, state: dict) -> None:
        grain = self.cluster.grain_instance(self._grain(service, key))
        grain.participant.write_committed(state)

    # ------------------------------------------------------------------
    # workload operations (each one a distributed transaction)
    # ------------------------------------------------------------------
    def _transact(self, operation: str, body):
        """Run ``body(ctx)`` transactionally, mapping failures."""
        try:
            result = yield from self.runner.run(body)
        except PaymentDeclined as declined:
            return failed(operation, reason="payment",
                          order_id=str(declined))
        except TransactionAborted as abort:
            return failed(operation, reason=f"aborted:{abort.reason}")
        except Exception:
            return failed(operation, reason="unreachable")
        return result

    def add_item(self, customer_id: int, seller_id: int, product_id: int,
                 quantity: int, voucher_cents: int = 0):
        cart = self._grain("cart", str(customer_id))

        def body(ctx):
            return cart.call("add_item", seller_id, product_id, quantity,
                             voucher_cents, txn=ctx)

        outcome = yield from self._transact("add_item", body)
        if isinstance(outcome, dict):
            if not outcome["added"]:
                return rejected("add_item", reason=outcome["reason"])
            return ok("add_item", price_version=outcome["price_version"])
        return outcome

    def checkout(self, customer_id: int, order_id: str,
                 payment_method: str):
        cart = self._grain("cart", str(customer_id))

        def body(ctx):
            return cart.call("checkout", order_id, payment_method,
                             txn=ctx)

        outcome = yield from self._transact("checkout", body)
        if isinstance(outcome, dict):
            status = outcome.pop("status")
            if status == "ok":
                return ok("checkout", **outcome)
            if status == "failed":
                return failed("checkout", **outcome)
            return rejected("checkout", **outcome)
        return outcome

    def submit_external(self, platform: str, shop_id: int,
                        ext_order_no: str, customer_id: int,
                        items: list[dict]):
        """Idempotent external-order ingestion: dedup registration and
        order creation commit in one distributed transaction."""
        from repro.marketplace.logic import ingestion as ingestion_logic
        shard = self._grain("ingestion",
                            ingestion_logic.shard_key(platform, shop_id))

        def body(ctx):
            return shard.call("submit", platform, shop_id, ext_order_no,
                              customer_id, items, txn=ctx)

        outcome = yield from self._transact("submit_external", body)
        if isinstance(outcome, dict):
            status = outcome.pop("status")
            if status == "ok":
                return ok("submit_external", **outcome)
            return rejected("submit_external", **outcome)
        return outcome

    def request_return(self, customer_id: int, order_id: str):
        """Return/refund compensation saga as one ACID transaction."""
        orders = self._grain("order", str(customer_id))

        def body(ctx):
            return orders.call("process_return", order_id, txn=ctx)

        outcome = yield from self._transact("request_return", body)
        if isinstance(outcome, dict):
            status = outcome.pop("status")
            if status == "ok":
                return ok("request_return", **outcome)
            return rejected("request_return", **outcome)
        return outcome

    def update_price(self, seller_id: int, product_id: int,
                     price_cents: int):
        product = self._grain("product", f"{seller_id}/{product_id}")

        def body(ctx):
            return product.call("update_price", price_cents, txn=ctx)

        outcome = yield from self._transact("update_price", body)
        if isinstance(outcome, dict):
            if not outcome["applied"]:
                return rejected("update_price", reason="inactive")
            return ok("update_price", version=outcome["version"])
        return outcome

    def delete_product(self, seller_id: int, product_id: int):
        product = self._grain("product", f"{seller_id}/{product_id}")

        def body(ctx):
            return product.call("delete", txn=ctx)

        outcome = yield from self._transact("delete_product", body)
        if isinstance(outcome, dict):
            if not outcome["applied"]:
                return rejected("delete_product", reason="inactive")
            return ok("delete_product", version=outcome["version"])
        return outcome

    def update_delivery(self):
        """Query phase on committed state, then one transaction per
        package delivery.

        A single transaction spanning every shipment partition would
        S-lock the whole shipment service for the duration of the batch
        and serialise all checkouts behind it; scoping each package's
        delivery (shipment + order + customer + seller entries) to its
        own ACID transaction keeps the all-or-nothing property that
        matters — a package delivery and its downstream updates — while
        letting the batch make progress under load.
        """
        partitions = [self._grain("shipment", f"part-{index}")
                      for index in range(self.shipment_partitions)]
        earliest: dict[int, float] = {}
        for ref in partitions:
            try:
                pairs = yield ref.call("undelivered_seller_times")
            except Exception:
                continue
            for seller_id, when in pairs:
                if seller_id not in earliest or when < earliest[seller_id]:
                    earliest[seller_id] = when
        chosen = [seller for seller, _ in
                  sorted(earliest.items(),
                         key=lambda item: (item[1], item[0]))[:10]]
        delivered = 0
        for seller_id in chosen:
            best, best_ref = None, None
            for ref in partitions:
                try:
                    package = yield ref.call("oldest_package", seller_id)
                except Exception:
                    continue
                if package is not None and (
                        best is None
                        or package["shipped_at"] < best["shipped_at"]):
                    best, best_ref = package, ref
            if best is None:
                continue

            def body(ctx, ref=best_ref, pkg=best):
                return ref.call("mark_delivered", pkg["order_id"],
                                pkg["package_id"], txn=ctx)

            try:
                outcome = yield from self.runner.run(body)
            except TransactionAborted:
                continue
            except Exception:
                continue
            if outcome is not None:
                delivered += 1
        return ok("update_delivery", sellers=len(chosen),
                  packages_delivered=delivered)

    def dashboard(self, seller_id: int):
        """Two separate committed reads — the platform cannot give the
        dashboard a shared snapshot (paper §III)."""
        seller = self._grain("seller", str(seller_id))
        try:
            amount = yield seller.call("dashboard_amount")
            entries = yield seller.call("dashboard_entries")
        except Exception:
            return failed("dashboard", reason="unreachable")
        return ok("dashboard", amount_cents=amount, entries=entries,
                  entries_total_cents=sum(entry["amount_cents"]
                                          for entry in entries))

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------
    def audit_views(self) -> dict:
        views: dict[str, dict] = {
            "products": {}, "replicas": {}, "stock": {}, "orders": {},
            "payments": {}, "shipments": {}, "customers": {},
            "sellers": {}, "carts": {}, "ingestion": {},
        }
        service_to_view = {
            "product": "products", "replica": "replicas",
            "stock": "stock", "order": "orders", "payment": "payments",
            "shipment": "shipments", "customer": "customers",
            "seller": "sellers", "cart": "carts",
            "ingestion": "ingestion",
        }
        type_to_service = {grain_type.__name__: service
                           for service, grain_type in self._grains.items()}
        for silo in self.cluster.silos:
            for (type_name, key), activation in silo.activations.items():
                service = type_to_service.get(type_name)
                if service is None:
                    continue
                grain = activation.grain
                if grain._participant is not None \
                        and grain.participant.committed_state:
                    views[service_to_view[service]][key] = \
                        grain.participant.committed_state
        # Grains paged out under the activation budget are still part
        # of the logical state the audits check.
        for (type_name, key), paged in self.cluster.paged_states().items():
            service = type_to_service.get(type_name)
            if service is None or not paged:
                continue
            state = paged.get("state")
            if state:
                views[service_to_view[service]].setdefault(key, state)
        views["event_log"] = [
            {"subscriber": name, "time": when,
             "order_id": envelope.key, "kind": envelope.payload["kind"]}
            for name, when, envelope in
            self.cluster.broker.deliveries(Topics.ORDER_EVENTS)]
        return views

    def runtime_stats(self) -> dict:
        return {
            "messages_sent": self.cluster.messages_sent,
            "messages_dropped": self.cluster.messages_dropped,
            "activations": self.cluster.total_activations,
            "transactions": self.runner.stats.as_dict(),
            "membership": self.cluster.membership_stats(),
            "utilisation": self.cluster.utilisation(),
            "working_set": self.cluster.working_set_stats(),
        }

    def platform_stats(self):
        from repro.control.signals import PlatformStats

        return PlatformStats(**self.cluster.control_stats())
