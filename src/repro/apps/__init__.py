"""The four Online Marketplace implementations.

Each app wires the shared business logic of :mod:`repro.marketplace`
onto a different data management stack:

* :class:`OrleansEventualApp` — virtual actors, eventual consistency
  (fire-and-forget side effects, unordered events, no transactions).
* :class:`OrleansTransactionsApp` — the same actors under distributed
  ACID transactions (2PL + 2PC).
* :class:`StatefunApp` — dataflow stateful functions with exactly-once
  processing (checkpoint/replay).
* :class:`CustomizedOrleansApp` — transactions plus an MVCC store for
  snapshot-consistent dashboards, a causally-replicated KV store for
  product data, and causally-ordered event topics.
"""

from repro.apps.base import AppConfig, MarketplaceApp, OperationResult
from repro.apps.customized import CustomizedOrleansApp
from repro.apps.orleans_eventual import OrleansEventualApp
from repro.apps.orleans_transactions import OrleansTransactionsApp
from repro.apps.statefun_app import StatefunApp

ALL_APPS = {
    "orleans-eventual": OrleansEventualApp,
    "orleans-transactions": OrleansTransactionsApp,
    "statefun": StatefunApp,
    "customized-orleans": CustomizedOrleansApp,
}

__all__ = [
    "ALL_APPS",
    "AppConfig",
    "CustomizedOrleansApp",
    "MarketplaceApp",
    "OperationResult",
    "OrleansEventualApp",
    "OrleansTransactionsApp",
    "StatefunApp",
]
