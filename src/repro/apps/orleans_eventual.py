"""Orleans Eventual: virtual actors with eventual consistency.

The paper's baseline: "it does not ensure all actions are complete as
part of a business transaction but exhibits the highest throughput."
Events flow over unordered topics, side effects are fire-and-forget,
and nothing coordinates concurrent checkouts beyond per-grain turn
concurrency.
"""

from __future__ import annotations

import typing

from repro.actors import Cluster, ClusterConfig
from repro.apps import grains_eventual as grains
from repro.apps.base import AppConfig, MarketplaceApp, failed, ok, rejected
from repro.broker import Broker, DeliveryMode
from repro.marketplace.constants import Topics

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.workload.dataset import Dataset
    from repro.runtime import Environment


class OrleansEventualApp(MarketplaceApp):
    """Eventually-consistent Online Marketplace on virtual actors."""

    name = "orleans-eventual"
    delivery_mode = DeliveryMode.UNORDERED
    shipment_partitions = 4

    def __init__(self, env: "Environment",
                 config: AppConfig | None = None) -> None:
        super().__init__(env, config)
        # In the eventual architecture, replica propagation delay IS the
        # broker delivery latency — tie it to the replication_lag knob
        # so the replication ablation sweeps both stacks comparably.
        broker = Broker(env, default_mode=self.delivery_mode,
                        base_latency=self.config.replication_lag,
                        jitter=3 * self.config.replication_lag)
        self.cluster = Cluster(env, ClusterConfig(
            silos=self.config.silos,
            cores_per_silo=self.config.cores_per_silo,
            drop_probability=self.config.drop_probability,
            activation_limit=self.config.activation_limit),
            broker=broker)
        self.cluster.app = self
        self._grains = dict(grains.EVENTUAL_GRAINS)
        for grain_type in self._grains.values():
            self.cluster.register_grain(grain_type)
        self._subscribe()
        self.dataset: "Dataset | None" = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _grain(self, service: str, key: str):
        return self.cluster.grain_ref(self._grains[service], key)

    def shipment_partition(self, order_id: str) -> str:
        import zlib
        digest = zlib.crc32(order_id.encode())
        return f"part-{digest % self.shipment_partitions}"

    def _subscribe(self) -> None:
        broker = self.cluster.broker
        broker.subscribe(Topics.PRICE_UPDATES, "cart-replica-service",
                         self._on_price_event)
        broker.subscribe(Topics.ORDER_EVENTS, "seller-service",
                         self._on_order_event)

    def _on_price_event(self, envelope) -> None:
        """Route product events to the cart-side replica and stock."""
        payload = envelope.payload
        key = payload["key"]
        if payload["kind"] == "price_updated":
            self._grain("replica", key).tell(
                "apply_update", payload["price_cents"], payload["version"])
        elif payload["kind"] == "product_deleted":
            self._grain("replica", key).tell(
                "apply_delete", payload["version"])
            self._grain("stock", key).tell(
                "deactivate", payload["version"])

    def _on_order_event(self, envelope) -> None:
        """Route order lifecycle events to the affected seller grains."""
        payload = envelope.payload
        for seller_id in payload.get("sellers", ()):
            self._grain("seller", str(seller_id)).tell(
                "apply_order_event", payload)

    # ------------------------------------------------------------------
    # ingestion (zero simulated latency; happens before the run)
    # ------------------------------------------------------------------
    def _ingest_product(self, product) -> None:
        data = product.as_dict()
        self._install("product", product.key, {"data": data})
        self._install("replica", product.key, {"data": {
            "price_cents": data["price_cents"],
            "version": data["version"], "active": data["active"]}})

    def _ingest_stock(self, stock_item) -> None:
        self._install("stock", stock_item.key,
                      {"data": stock_item.as_dict()})

    def _ingest_seller(self, seller) -> None:
        from repro.marketplace.logic import seller as seller_logic
        self._install("seller", str(seller.seller_id), {
            "data": seller_logic.new_seller(
                seller.seller_id, seller.name, seller.city)})

    def _ingest_customer(self, customer) -> None:
        from repro.marketplace.logic import customer as customer_logic
        self._install("customer", str(customer.customer_id), {
            "data": customer_logic.new_customer(
                customer.customer_id, customer.name, customer.city)})

    def _install(self, service: str, key: str,
                 attrs: dict[str, object]) -> None:
        grain = self.cluster.grain_instance(self._grain(service, key))
        for attr, value in attrs.items():
            setattr(grain, attr, value)

    # ------------------------------------------------------------------
    # workload operations
    # ------------------------------------------------------------------
    def add_item(self, customer_id: int, seller_id: int, product_id: int,
                 quantity: int, voucher_cents: int = 0):
        cart = self._grain("cart", str(customer_id))
        try:
            result = yield cart.call("add_item", seller_id, product_id,
                                     quantity, voucher_cents)
        except Exception:
            return failed("add_item", reason="unreachable")
        if not result["added"]:
            return rejected("add_item", reason=result["reason"])
        return ok("add_item", price_version=result["price_version"])

    def checkout(self, customer_id: int, order_id: str,
                 payment_method: str):
        cart = self._grain("cart", str(customer_id))
        try:
            result = yield cart.call("checkout", order_id, payment_method)
        except Exception:
            return failed("checkout", reason="unreachable",
                          order_id=order_id)
        status = result.pop("status")
        if status == "ok":
            return ok("checkout", **result)
        if status == "rejected":
            return rejected("checkout", **result)
        return failed("checkout", **result)

    def submit_external(self, platform: str, shop_id: int,
                        ext_order_no: str, customer_id: int,
                        items: list[dict]):
        """External-order ingestion through the dedup shard.

        The registry call itself is awaited, but the shard's downstream
        order creation is at-least-once — the duplicate-order anomaly
        lives inside the shard, not here."""
        from repro.marketplace.logic import ingestion as ingestion_logic
        shard = self._grain("ingestion",
                            ingestion_logic.shard_key(platform, shop_id))
        try:
            result = yield shard.call("submit", platform, shop_id,
                                      ext_order_no, customer_id, items)
        except Exception:
            return failed("submit_external", reason="unreachable")
        status = result.pop("status")
        if status == "ok":
            return ok("submit_external", **result)
        if status == "rejected":
            return rejected("submit_external", **result)
        return failed("submit_external", **result)

    def request_return(self, customer_id: int, order_id: str):
        """Return/refund compensation chain on the order grain."""
        orders = self._grain("order", str(customer_id))
        try:
            result = yield orders.call("process_return", order_id)
        except Exception:
            return failed("request_return", reason="unreachable",
                          order_id=order_id)
        status = result.pop("status")
        if status == "ok":
            return ok("request_return", **result)
        if status == "rejected":
            return rejected("request_return", **result)
        return failed("request_return", **result)

    def update_price(self, seller_id: int, product_id: int,
                     price_cents: int):
        product = self._grain("product", f"{seller_id}/{product_id}")
        try:
            result = yield product.call("update_price", price_cents)
        except Exception:
            return failed("update_price", reason="unreachable")
        if not result["applied"]:
            return rejected("update_price", reason="inactive")
        return ok("update_price", version=result["version"])

    def delete_product(self, seller_id: int, product_id: int):
        product = self._grain("product", f"{seller_id}/{product_id}")
        try:
            result = yield product.call("delete")
        except Exception:
            return failed("delete_product", reason="unreachable")
        if not result["applied"]:
            return rejected("delete_product", reason="inactive")
        return ok("delete_product", version=result["version"])

    def update_delivery(self):
        partitions = [self._grain("shipment", f"part-{index}")
                      for index in range(self.shipment_partitions)]
        per_partition = yield self.env.all_of([
            self.env.process(grains._safe_call(
                None, ref.call("undelivered_seller_times")))
            for ref in partitions])
        earliest: dict[int, float] = {}
        for pairs in per_partition.todict().values():
            for seller_id, when in pairs or ():
                if seller_id not in earliest or when < earliest[seller_id]:
                    earliest[seller_id] = when
        chosen = [seller for seller, _ in
                  sorted(earliest.items(),
                         key=lambda item: (item[1], item[0]))[:10]]
        delivered = 0
        for seller_id in chosen:
            candidates = yield self.env.all_of([
                self.env.process(grains._safe_call(
                    None, ref.call("oldest_package", seller_id)))
                for ref in partitions])
            best, best_ref = None, None
            for ref, package in zip(partitions,
                                    candidates.todict().values()):
                if package is not None and (
                        best is None
                        or package["shipped_at"] < best["shipped_at"]):
                    best, best_ref = package, ref
            if best is None:
                continue
            done = yield from grains._safe_call(None, best_ref.call(
                "mark_delivered", best["order_id"], best["package_id"]))
            if done:
                delivered += 1
        return ok("update_delivery", sellers=len(chosen),
                  packages_delivered=delivered)

    def dashboard(self, seller_id: int):
        """Two *separate* grain calls: updates may interleave between
        them, which is exactly the snapshot criterion's failure mode."""
        seller = self._grain("seller", str(seller_id))
        try:
            amount = yield seller.call("dashboard_amount")
            entries = yield seller.call("dashboard_entries")
        except Exception:
            return failed("dashboard", reason="unreachable")
        return ok("dashboard", amount_cents=amount, entries=entries,
                  entries_total_cents=sum(entry["amount_cents"]
                                          for entry in entries))

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------
    def audit_views(self) -> dict:
        views: dict[str, dict] = {
            "products": {}, "replicas": {}, "stock": {}, "orders": {},
            "payments": {}, "shipments": {}, "customers": {},
            "sellers": {}, "carts": {}, "ingestion": {},
        }
        service_to_view = {
            "product": "products", "replica": "replicas",
            "stock": "stock", "order": "orders", "payment": "payments",
            "shipment": "shipments", "customer": "customers",
            "seller": "sellers", "cart": "carts",
            "ingestion": "ingestion",
        }
        for silo in self.cluster.silos:
            for (type_name, key), activation in silo.activations.items():
                service = _TYPE_TO_SERVICE.get(type_name)
                if service is None:
                    continue
                data = getattr(activation.grain, "data", None)
                if data is not None:
                    views[service_to_view[service]][key] = data
        # Grains paged out under the activation budget are still part
        # of the logical state the audits check.
        for (type_name, key), paged in self.cluster.paged_states().items():
            service = _TYPE_TO_SERVICE.get(type_name)
            if service is None or not paged:
                continue
            data = paged.get("data")
            if data is not None:
                views[service_to_view[service]].setdefault(key, data)
        views["event_log"] = [
            {"subscriber": name, "time": when,
             "order_id": envelope.key, "kind": envelope.payload["kind"]}
            for name, when, envelope in
            self.cluster.broker.deliveries(Topics.ORDER_EVENTS)]
        return views

    def runtime_stats(self) -> dict:
        return {
            "messages_sent": self.cluster.messages_sent,
            "messages_dropped": self.cluster.messages_dropped,
            "activations": self.cluster.total_activations,
            "membership": self.cluster.membership_stats(),
            "utilisation": self.cluster.utilisation(),
            "working_set": self.cluster.working_set_stats(),
        }

    def platform_stats(self):
        from repro.control.signals import PlatformStats

        return PlatformStats(**self.cluster.control_stats())


_TYPE_TO_SERVICE = {
    grain_type.__name__: service
    for service, grain_type in grains.EVENTUAL_GRAINS.items()
}
