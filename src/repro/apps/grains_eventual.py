"""Grain classes of the eventually-consistent implementation.

State lives in plain grain memory; cross-service effects are either
awaited calls (stock reservation, payment) or fire-and-forget ``tell``s
and unordered broker events (stock confirmation, shipment creation,
statistics).  Nothing is transactional: a lost message or an ill-timed
interleaving leaves partial effects behind — precisely the anomalies
the benchmark's criteria are designed to expose.
"""

from __future__ import annotations


from repro.actors import Grain
from repro.marketplace.constants import OrderStatus, Topics
from repro.marketplace.logic import (
    cart as cart_logic,
    customer as customer_logic,
    ingestion as ingestion_logic,
    lifecycle,
    order as order_logic,
    payment as payment_logic,
    product as product_logic,
    seller as seller_logic,
    shipment as shipment_logic,
    stock as stock_logic,
)


def _safe_call(grain: Grain, promise):
    """Await a promise, mapping failures (e.g. dropped messages) to None."""
    try:
        value = yield promise
    except Exception:
        return None
    return value


class ProductGrain(Grain):
    """Authoritative product record (source of truth for price)."""

    #: All state lives in ``data`` -> pageable under an
    #: activation budget.
    paged_attrs = ("data",)

    def __init__(self) -> None:
        super().__init__()
        self.data: dict | None = None

    def install(self, data: dict):
        self.data = dict(data)
        return True
        yield  # pragma: no cover - generator marker

    def get(self):
        return dict(self.data) if self.data else None
        yield  # pragma: no cover - generator marker

    def update_price(self, price_cents: int):
        if self.data is None or not self.data["active"]:
            return {"applied": False}
        self.data = product_logic.update_price(self.data, price_cents)
        self.publish(Topics.PRICE_UPDATES, self.key, {
            "kind": "price_updated", "key": self.key,
            "price_cents": price_cents, "version": self.data["version"],
        })
        return {"applied": True, "version": self.data["version"]}
        yield  # pragma: no cover - generator marker

    def delete(self):
        if self.data is None or not self.data["active"]:
            return {"applied": False}
        self.data = product_logic.delete(self.data)
        self.publish(Topics.PRICE_UPDATES, self.key, {
            "kind": "product_deleted", "key": self.key,
            "version": self.data["version"],
        })
        return {"applied": True, "version": self.data["version"]}
        yield  # pragma: no cover - generator marker


class ReplicaGrain(Grain):
    """Cart-side replica of product price/existence (eventually fresh)."""

    #: All state lives in ``data`` -> pageable under an
    #: activation budget.
    paged_attrs = ("data",)

    def __init__(self) -> None:
        super().__init__()
        self.data: dict | None = None

    def install(self, data: dict):
        self.data = {"price_cents": data["price_cents"],
                     "version": data["version"],
                     "active": data["active"]}
        return True
        yield  # pragma: no cover - generator marker

    def get_price(self):
        if self.data is None or not self.data["active"]:
            return None
        return dict(self.data)
        yield  # pragma: no cover - generator marker

    def apply_update(self, price_cents: int, version: int):
        if self.data is None:
            self.data = {"price_cents": price_cents, "version": version,
                         "active": True}
            return True
        if self.data["version"] >= version:
            return False  # stale event: last-writer-wins
        self.data = {**self.data, "price_cents": price_cents,
                     "version": version}
        return True
        yield  # pragma: no cover - generator marker

    def apply_delete(self, version: int):
        if self.data is None or self.data["version"] >= version:
            return False
        self.data = {**self.data, "active": False, "version": version}
        return True
        yield  # pragma: no cover - generator marker


class StockGrain(Grain):
    """Inventory item with the reserve/confirm/cancel protocol."""

    #: All state lives in ``data`` -> pageable under an
    #: activation budget.
    paged_attrs = ("data",)

    def __init__(self) -> None:
        super().__init__()
        self.data: dict | None = None

    def install(self, data: dict):
        self.data = dict(data)
        return True
        yield  # pragma: no cover - generator marker

    def reserve(self, quantity: int):
        if self.data is None:
            return False
        self.data, ok = stock_logic.reserve(self.data, quantity)
        return ok
        yield  # pragma: no cover - generator marker

    def confirm(self, quantity: int):
        self.data = stock_logic.confirm_reservation(self.data, quantity)
        return True
        yield  # pragma: no cover - generator marker

    def cancel(self, quantity: int):
        self.data = stock_logic.cancel_reservation(self.data, quantity)
        return True
        yield  # pragma: no cover - generator marker

    def allocate(self, quantity: int):
        """Reserve-and-confirm in one step (external-order ingestion)."""
        if self.data is None or not self.data.get("active", True):
            return False
        available = self.data["qty_available"] - self.data["qty_reserved"]
        if available < quantity:
            return False
        self.data = {**self.data,
                     "qty_available": self.data["qty_available"] - quantity}
        return True
        yield  # pragma: no cover - generator marker

    def restock(self, quantity: int):
        """Hand returned units back (return-saga compensation)."""
        if self.data is None:
            return False
        self.data = stock_logic.restock(self.data, quantity)
        return True
        yield  # pragma: no cover - generator marker

    def deactivate(self, version: int):
        if self.data is None:
            return False
        self.data = stock_logic.deactivate(self.data, version)
        return True
        yield  # pragma: no cover - generator marker


class CartGrain(Grain):
    """Per-customer cart; prices come from the cart-side replicas."""

    #: All state lives in ``data`` -> pageable under an
    #: activation budget.
    paged_attrs = ("data",)

    def __init__(self) -> None:
        super().__init__()
        self.data: dict | None = None

    def _ensure(self) -> dict:
        if self.data is None:
            self.data = cart_logic.new_cart(int(self.key))
        return self.data

    def add_item(self, seller_id: int, product_id: int, quantity: int,
                 voucher_cents: int = 0):
        self._ensure()
        key = f"{seller_id}/{product_id}"
        replica = self.grain_ref(ReplicaGrain, key)
        price = yield from _safe_call(
            self, self.call(replica, "get_price"))
        if price is None:
            return {"added": False, "reason": "unavailable"}
        self.data = cart_logic.add_item(self.data, {
            "seller_id": seller_id, "product_id": product_id,
            "quantity": quantity,
            "unit_price_cents": price["price_cents"],
            "price_version": price["version"],
            "voucher_cents": voucher_cents,
        })
        return {"added": True, "price_version": price["version"]}

    def checkout(self, order_id: str, payment_method: str):
        self._ensure()
        try:
            self.data, items = cart_logic.seal_for_checkout(self.data)
        except ValueError:
            return {"status": "rejected", "reason": "empty_cart"}
        orders = self.grain_ref(OrderGrain, self.key)
        result = yield from _safe_call(
            self, self.call(orders, "process_checkout", order_id, items,
                            payment_method))
        if result is None:
            return {"status": "failed", "reason": "order_unreachable"}
        return result


class OrderGrain(Grain):
    """Per-customer order manager: the checkout orchestrator."""

    #: All state lives in ``data`` -> pageable under an
    #: activation budget.
    paged_attrs = ("data",)

    def __init__(self) -> None:
        super().__init__()
        self.data = None

    def _ensure(self) -> dict:
        if self.data is None:
            self.data = order_logic.new_customer_orders(int(self.key))
        return self.data

    # ------------------------------------------------------------------
    def process_checkout(self, order_id: str, items: list[dict],
                         payment_method: str):
        app = self.cluster.app
        self._ensure()
        # 1. Reserve stock for every item (parallel awaited calls).
        outcomes = yield self.env.all_of([
            self.env.process(_safe_call(self, self.call(
                self.grain_ref(StockGrain,
                               f"{item['seller_id']}/{item['product_id']}"),
                "reserve", item["quantity"])))
            for item in items])
        flags = list(outcomes.todict().values())
        confirmed = [item for item, flag in zip(items, flags) if flag]
        reserved = list(confirmed)
        if not confirmed:
            return {"status": "rejected", "reason": "no_stock",
                    "order_id": order_id}
        # 2. Assemble the order (invoice, totals).
        self.data, order = order_logic.assemble(
            self.data, order_id, confirmed, self.env.now)
        sellers = order_logic.seller_ids(order)
        created = self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "order_created", "order": order, "sellers": sellers})
        # 3. Process payment synchronously.
        payment_ref = self.grain_ref(PaymentGrain, order_id)
        payment = yield from _safe_call(self, self.call(
            payment_ref, "process", order, payment_method,
            app.config.approval_rate))
        if payment is None or not payment_logic.is_approved(payment):
            # Roll back reservations (fire-and-forget: may be lost).
            for item in reserved:
                self.grain_ref(
                    StockGrain,
                    f"{item['seller_id']}/{item['product_id']}").tell(
                        "cancel", item["quantity"])
            self.data = order_logic.set_status(
                self.data, order_id, OrderStatus.PAYMENT_FAILED,
                self.env.now)
            # Close the compensation chain locally: a failed payment
            # cancels the order (the stock cancels above may be lost —
            # that gap is what the criteria audit measures).
            self.data = order_logic.set_status(
                self.data, order_id, OrderStatus.CANCELED, self.env.now)
            self.grain_ref(CustomerGrain, self.key).tell(
                "record_payment", order["total_cents"], False)
            self.publish(Topics.ORDER_EVENTS, order_id, {
                "kind": "payment_failed", "order_id": order_id,
                "customer_id": order["customer_id"], "sellers": sellers},
                causal_deps=[created.sequence])
            return {"status": "failed", "reason": "payment",
                    "order_id": order_id,
                    "total_cents": order["total_cents"]}
        # 4. Payment confirmed: async effects (all droppable/unordered).
        self.data = order_logic.set_status(
            self.data, order_id, OrderStatus.PAYMENT_PROCESSED,
            self.env.now)
        paid = self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "payment_confirmed", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": sellers,
            "amount_cents": order["total_cents"]},
            causal_deps=[created.sequence])
        for item in reserved:
            self.grain_ref(
                StockGrain,
                f"{item['seller_id']}/{item['product_id']}").tell(
                    "confirm", item["quantity"])
        shipment_ref = self.grain_ref(
            ShipmentGrain, app.shipment_partition(order_id))
        shipment_ref.tell("create", order, paid.sequence)
        self.grain_ref(CustomerGrain, self.key).tell(
            "record_payment", order["total_cents"], True)
        return {"status": "ok", "order_id": order_id,
                "invoice": order["invoice"],
                "total_cents": order["total_cents"]}

    # ------------------------------------------------------------------
    def ingest_external(self, order_id: str, items: list[dict], ext: str):
        """Create a prepaid external-platform order.

        Stock is allocated with awaited one-step calls (no dangling
        reservations); the downstream effects mirror the post-payment
        half of checkout and are just as droppable.
        """
        self._ensure()
        outcomes = yield self.env.all_of([
            self.env.process(_safe_call(self, self.call(
                self.grain_ref(StockGrain,
                               f"{item['seller_id']}/{item['product_id']}"),
                "allocate", item["quantity"])))
            for item in items])
        flags = list(outcomes.todict().values())
        confirmed = [item for item, flag in zip(items, flags) if flag]
        if not confirmed:
            return {"status": "rejected", "reason": "no_stock",
                    "order_id": order_id}
        self.data, order = order_logic.assemble(
            self.data, order_id, confirmed, self.env.now, ext=ext)
        sellers = order_logic.seller_ids(order)
        created = self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "order_created", "order": order, "sellers": sellers})
        self.data = order_logic.set_status(
            self.data, order_id, OrderStatus.PAYMENT_PROCESSED,
            self.env.now)
        paid = self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "payment_confirmed", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": sellers,
            "amount_cents": order["total_cents"]},
            causal_deps=[created.sequence])
        app = self.cluster.app
        shipment_ref = self.grain_ref(
            ShipmentGrain, app.shipment_partition(order_id))
        shipment_ref.tell("create", order, paid.sequence)
        self.grain_ref(CustomerGrain, self.key).tell(
            "record_payment", order["total_cents"], True)
        return {"status": "ok", "order_id": order_id,
                "invoice": order["invoice"],
                "total_cents": order["total_cents"]}

    def process_return(self, order_id: str):
        """Return/refund as a compensating event chain.

        The refund is awaited (the saga must not proceed without it);
        restocks, the seller ledger reversal and the customer refund
        ride on fire-and-forget tells and unordered events.  A dropped
        refund call strands the order in RETURN_REQUESTED — the
        anomaly window the criteria audit quantifies.
        """
        self._ensure()
        if order_id not in self.data["orders"]:
            return {"status": "rejected", "reason": "unknown_order",
                    "order_id": order_id}
        order = self.data["orders"][order_id]
        if order["status"] != OrderStatus.COMPLETED:
            return {"status": "rejected", "reason": "not_completed",
                    "order_id": order_id, "state": order["status"]}
        outcome = lifecycle.disposition(order_id)
        self.data = order_logic.set_status(
            self.data, order_id, OrderStatus.RETURN_REQUESTED,
            self.env.now)
        sellers = order_logic.seller_ids(order)
        requested = self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "return_requested", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": sellers})
        payment_ref = self.grain_ref(PaymentGrain, order_id)
        refunded = yield from _safe_call(
            self, self.call(payment_ref, "refund"))
        if not refunded:
            return {"status": "failed", "reason": "refund_unreachable",
                    "order_id": order_id}
        for hop in lifecycle.return_hops(outcome)[1:]:
            self.data = order_logic.set_status(self.data, order_id, hop,
                                               self.env.now)
        if outcome != OrderStatus.DEFECT:
            for item in order["items"]:
                self.grain_ref(
                    StockGrain,
                    f"{item['seller_id']}/{item['product_id']}").tell(
                        "restock", item["quantity"])
        self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "order_returned", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": sellers,
            "order": order, "outcome": outcome},
            causal_deps=[requested.sequence])
        self.grain_ref(CustomerGrain, self.key).tell(
            "record_refund", order["total_cents"])
        return {"status": "ok", "order_id": order_id, "outcome": outcome,
                "refund_cents": order["total_cents"]}

    # ------------------------------------------------------------------
    def record_shipment(self, order_id: str, package_count: int):
        self._ensure()
        if order_id not in self.data["orders"]:
            return False
        self.data = order_logic.record_shipment(
            self.data, order_id, package_count, self.env.now)
        return True
        yield  # pragma: no cover - generator marker

    def record_delivery(self, order_id: str, event_sequence: int = 0):
        self._ensure()
        if order_id not in self.data["orders"]:
            return False
        self.data, completed = order_logic.record_delivery(
            self.data, order_id, self.env.now)
        if completed:
            order = self.data["orders"][order_id]
            self.publish(Topics.ORDER_EVENTS, order_id, {
                "kind": "order_completed", "order_id": order_id,
                "customer_id": self.data["customer_id"],
                "sellers": order_logic.seller_ids(order)},
                causal_deps=[event_sequence] if event_sequence else ())
            self.grain_ref(CustomerGrain, self.key).tell("record_delivery")
        return completed
        yield  # pragma: no cover - generator marker


class PaymentGrain(Grain):
    """Per-order payment processor."""

    #: All state lives in ``data`` -> pageable under an
    #: activation budget.
    paged_attrs = ("data",)

    def __init__(self) -> None:
        super().__init__()
        self.data: dict | None = None

    def process(self, order: dict, method: str, approval_rate: float):
        payment = payment_logic.build_payment(
            order["order_id"], order["customer_id"],
            order["total_cents"], method, self.env.now)
        self.data = payment_logic.authorize(payment, approval_rate)
        return dict(self.data)
        yield  # pragma: no cover - generator marker

    def refund(self):
        if self.data is None or not payment_logic.is_approved(self.data):
            return False
        self.data = payment_logic.refund(self.data)
        return True
        yield  # pragma: no cover - generator marker

    def get(self):
        return dict(self.data) if self.data else None
        yield  # pragma: no cover - generator marker


class ShipmentGrain(Grain):
    """A shipment partition holding many orders' packages."""

    #: All state lives in ``data`` -> pageable under an
    #: activation budget.
    paged_attrs = ("data",)

    def __init__(self) -> None:
        super().__init__()
        self.data = shipment_logic.new_shipments()

    def create(self, order: dict, payment_sequence: int):
        if order["order_id"] in self.data["shipments"]:
            return False
        self.data, shipment = shipment_logic.create_shipment(
            self.data, order["order_id"], order["customer_id"],
            order["items"], self.env.now)
        count = len(shipment["packages"])
        self.grain_ref(OrderGrain, str(order["customer_id"])).tell(
            "record_shipment", order["order_id"], count)
        self.publish(Topics.ORDER_EVENTS, order["order_id"], {
            "kind": "shipment_notification", "order_id": order["order_id"],
            "customer_id": order["customer_id"], "package_count": count,
            "sellers": order_logic.seller_ids(order)},
            causal_deps=[payment_sequence])
        return True
        yield  # pragma: no cover - generator marker

    def undelivered_sellers(self, limit: int = 10):
        return shipment_logic.undelivered_sellers(self.data, limit)
        yield  # pragma: no cover - generator marker

    def undelivered_seller_times(self):
        return shipment_logic.undelivered_seller_times(self.data)
        yield  # pragma: no cover - generator marker

    def oldest_package(self, seller_id: int):
        package = shipment_logic.oldest_undelivered_package(
            self.data, seller_id)
        return dict(package) if package else None
        yield  # pragma: no cover - generator marker

    def mark_delivered(self, order_id: str, package_id: str):
        try:
            self.data, package = shipment_logic.mark_delivered(
                self.data, order_id, package_id, self.env.now)
        except KeyError:
            return False
        shipment = self.data["shipments"][order_id]
        delivery = self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "delivery_notification", "order_id": order_id,
            "seller_id": package["seller_id"], "sellers": [],
            "package_id": package_id})
        self.grain_ref(OrderGrain, str(shipment["customer_id"])).tell(
            "record_delivery", order_id, delivery.sequence)
        return True
        yield  # pragma: no cover - generator marker


class CustomerGrain(Grain):
    """Customer profile and running statistics."""

    #: All state lives in ``data`` -> pageable under an
    #: activation budget.
    paged_attrs = ("data",)

    def __init__(self) -> None:
        super().__init__()
        self.data: dict | None = None

    def _ensure(self) -> dict:
        if self.data is None:
            self.data = customer_logic.new_customer(int(self.key))
        return self.data

    def install(self, data: dict):
        self.data = customer_logic.new_customer(
            data["customer_id"], data.get("name", ""),
            data.get("city", ""))
        return True
        yield  # pragma: no cover - generator marker

    def record_payment(self, amount_cents: int, approved: bool):
        self._ensure()
        self.data = customer_logic.record_payment(
            self.data, amount_cents, approved)
        return True
        yield  # pragma: no cover - generator marker

    def record_delivery(self):
        self._ensure()
        self.data = customer_logic.record_delivery(self.data)
        return True
        yield  # pragma: no cover - generator marker

    def record_refund(self, amount_cents: int):
        self._ensure()
        self.data = customer_logic.record_refund(self.data, amount_cents)
        return True
        yield  # pragma: no cover - generator marker

    def get(self):
        return dict(self._ensure())
        yield  # pragma: no cover - generator marker


class SellerGrain(Grain):
    """Seller profile plus the dashboard's materialised view."""

    #: All state lives in ``data`` -> pageable under an
    #: activation budget.
    paged_attrs = ("data",)

    def __init__(self) -> None:
        super().__init__()
        self.data: dict | None = None

    def _ensure(self) -> dict:
        if self.data is None:
            self.data = seller_logic.new_seller(int(self.key))
        return self.data

    def install(self, data: dict):
        self.data = seller_logic.new_seller(
            data["seller_id"], data.get("name", ""), data.get("city", ""))
        return True
        yield  # pragma: no cover - generator marker

    def apply_order_event(self, payload: dict):
        """Entry maintenance driven by the order-events topic."""
        self._ensure()
        kind = payload["kind"]
        if kind == "order_created":
            self.data = seller_logic.upsert_entry(self.data,
                                                  payload["order"])
        elif kind == "payment_confirmed":
            self.data = seller_logic.update_entry_status(
                self.data, payload["order_id"],
                OrderStatus.PAYMENT_PROCESSED, self.env.now)
        elif kind == "payment_failed":
            self.data = seller_logic.update_entry_status(
                self.data, payload["order_id"], OrderStatus.CANCELED,
                self.env.now)
        elif kind == "shipment_notification":
            self.data = seller_logic.update_entry_status(
                self.data, payload["order_id"], OrderStatus.IN_TRANSIT,
                self.env.now)
        elif kind == "order_completed":
            self.data = seller_logic.update_entry_status(
                self.data, payload["order_id"], OrderStatus.COMPLETED,
                self.env.now)
        elif kind == "order_returned":
            amount = seller_logic.seller_share_cents(
                payload["order"], self.data["seller_id"])
            if amount:
                self.data = seller_logic.record_return(self.data, amount)
        return True
        yield  # pragma: no cover - generator marker

    def dashboard_amount(self):
        """Dashboard query 1: total in-progress amount."""
        return seller_logic.dashboard_amount(self._ensure())
        yield  # pragma: no cover - generator marker

    def dashboard_entries(self):
        """Dashboard query 2: the tuples behind query 1."""
        return seller_logic.dashboard_entries(self._ensure())
        yield  # pragma: no cover - generator marker


class IngestionGrain(Grain):
    """Dedup registry shard for one external ``(platform, shop_id)``.

    Registration is grain-local, but order creation is a separate
    at-least-once call: when it times out the grain retries with a
    fresh internal order id.  If the first attempt actually committed
    and only its reply was lost, the retry mints a *duplicate* order
    (and decrements stock twice) — the exactly-once anomaly the C6
    audit quantifies on this stack.
    """

    #: All state lives in ``data`` -> pageable under an
    #: activation budget.
    paged_attrs = ("data",)

    def __init__(self) -> None:
        super().__init__()
        self.data: dict | None = None

    def submit(self, platform: str, shop_id: int, ext_order_no: str,
               customer_id: int, items: list[dict]):
        if self.data is None:
            self.data = ingestion_logic.new_registry(self.key)
        key = ingestion_logic.dedup_key(platform, shop_id, ext_order_no)
        self.data, order_id, created = ingestion_logic.register(
            self.data, key)
        if not created:
            return {"status": "ok", "order_id": order_id,
                    "idempotent": True}
        order_ref = self.grain_ref(OrderGrain, str(customer_id))
        result = yield from _safe_call(self, self.call(
            order_ref, "ingest_external", order_id, items, key))
        if result is None:
            retry_id = f"{order_id}.r1"
            result = yield from _safe_call(self, self.call(
                order_ref, "ingest_external", retry_id, items, key))
            if result is None:
                # Registered but (as far as we know) never created: an
                # orphaned registration the audit counts.
                return {"status": "failed", "reason": "order_unreachable",
                        "order_id": order_id}
        if result.get("status") != "ok":
            # Nothing was created: roll the local registration back so
            # a later submit can retry from scratch.
            entries = dict(self.data["entries"])
            entries.pop(key, None)
            self.data = {**self.data, "entries": entries}
            return {"status": "rejected",
                    "reason": result.get("reason", "rejected"),
                    "order_id": order_id}
        if result["order_id"] != order_id:
            entries = dict(self.data["entries"])
            entries[key] = result["order_id"]
            self.data = {**self.data, "entries": entries}
        return {"status": "ok", "order_id": result["order_id"],
                "idempotent": False, "invoice": result["invoice"],
                "total_cents": result["total_cents"]}


#: Grain classes registered by the eventual app, keyed by service name.
EVENTUAL_GRAINS: dict[str, type[Grain]] = {
    "product": ProductGrain,
    "replica": ReplicaGrain,
    "stock": StockGrain,
    "cart": CartGrain,
    "order": OrderGrain,
    "payment": PaymentGrain,
    "shipment": ShipmentGrain,
    "customer": CustomerGrain,
    "seller": SellerGrain,
    "ingestion": IngestionGrain,
}
