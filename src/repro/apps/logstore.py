"""Append-only audit log storage (Figure 1: "log storage to store
audit logging").

The customized stack records every completed business transaction to an
append-only log, asynchronously (audit writes must not sit on the
critical path).  The log supports range and type queries — enough for
compliance-style "what happened to order X" questions.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment

_sequence = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class AuditRecord:
    """One audited business transaction."""

    sequence: int
    time: float
    operation: str
    subject: str  # order id / product key / seller id
    payload: dict


class AuditLogStore:
    """Asynchronous append-only audit log with simulated write latency."""

    def __init__(self, env: "Environment",
                 write_latency: float = 0.0003) -> None:
        self.env = env
        self.write_latency = write_latency
        self._records: list[AuditRecord] = []
        self.pending = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append_async(self, operation: str, subject: str,
                     payload: dict | None = None) -> None:
        """Fire-and-forget append (does not block the caller)."""
        self.pending += 1
        self.env.process(self._write(operation, subject, payload or {}),
                         name="audit-append")

    def _write(self, operation: str, subject: str, payload: dict):
        yield self.env.timeout(self.write_latency)
        self._records.append(AuditRecord(
            sequence=next(_sequence), time=self.env.now,
            operation=operation, subject=subject, payload=dict(payload)))
        self.pending -= 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> list[AuditRecord]:
        return list(self._records)

    def by_operation(self, operation: str) -> list[AuditRecord]:
        return [record for record in self._records
                if record.operation == operation]

    def by_subject(self, subject: str) -> list[AuditRecord]:
        """The full audited history of one order/product/seller."""
        return [record for record in self._records
                if record.subject == subject]

    def between(self, start: float, end: float) -> list[AuditRecord]:
        """Records with start <= time < end."""
        if end < start:
            raise ValueError("end must be >= start")
        return [record for record in self._records
                if start <= record.time < end]

    def tail(self, count: int) -> list[AuditRecord]:
        if count < 0:
            raise ValueError("count must be >= 0")
        return self._records[-count:] if count else []
