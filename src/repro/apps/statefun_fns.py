"""Stateful functions of the dataflow (Statefun) implementation.

Function-to-function communication is one-way messaging, so multi-step
interactions (price lookup, stock reservation, payment) are explicit
state machines keyed by order/request id.  Delivery is guaranteed
(at-least-once + replay + deduplicated egress = exactly-once), which is
why this implementation keeps all-or-nothing *completeness* without
transactions — at the cost of the dataflow envelope overhead and
checkpoint stalls the benchmark measures.
"""

from __future__ import annotations

import typing

from repro.dataflow import Context, StatefulFunction
from repro.marketplace.constants import OrderStatus
from repro.marketplace.logic import (
    cart as cart_logic,
    customer as customer_logic,
    ingestion as ingestion_logic,
    lifecycle,
    order as order_logic,
    payment as payment_logic,
    product as product_logic,
    seller as seller_logic,
    shipment as shipment_logic,
    stock as stock_logic,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.statefun_app import StatefunApp


class _AppFunction(StatefulFunction):
    """Base: functions hold a reference to the app for config/audit."""

    def __init__(self, app: "StatefunApp") -> None:
        self.app = app


class ProductFn(_AppFunction):
    """Authoritative product record; pushes updates to the replica."""

    def invoke(self, context: Context, payload: dict):
        kind = payload["kind"]
        state = context.state
        if kind == "update_price":
            if not state or not state.get("active", False):
                context.egress("update_price",
                               {"status": "rejected", "reason": "inactive"})
                return None
            updated = product_logic.update_price(dict(state),
                                                 payload["price_cents"])
            state.clear()
            state.update(updated)
            context.send("replica", context.key, {
                "kind": "apply_update",
                "price_cents": updated["price_cents"],
                "version": updated["version"]})
        elif kind == "delete":
            if not state or not state.get("active", False):
                context.egress("delete_product",
                               {"status": "rejected", "reason": "inactive"})
                return None
            deleted = product_logic.delete(dict(state))
            state.clear()
            state.update(deleted)
            context.send("replica", context.key, {
                "kind": "apply_delete", "version": deleted["version"]})
        return None


class ReplicaFn(_AppFunction):
    """Cart-side replica; acks seller operations once applied."""

    def invoke(self, context: Context, payload: dict):
        kind = payload["kind"]
        state = context.state
        if kind == "get_price":
            if state and state.get("active", False):
                reply = {"price_cents": state["price_cents"],
                         "version": state["version"]}
            else:
                reply = None
            context.send("cart", payload["reply_to"], {
                "kind": "price_reply", "key": context.key,
                "price": reply, "pending_id": payload["pending_id"]})
        elif kind == "apply_update":
            if not state or state.get("version", 0) < payload["version"]:
                state["price_cents"] = payload["price_cents"]
                state["version"] = payload["version"]
                state.setdefault("active", True)
            # The seller's update is acknowledged only after the replica
            # applied it: per-product read-your-writes holds.
            context.egress("update_price",
                           {"status": "ok", "version": payload["version"]})
        elif kind == "apply_delete":
            if not state or state.get("version", 0) < payload["version"]:
                state["active"] = False
                state["version"] = payload["version"]
            context.send("stock", context.key, {
                "kind": "deactivate", "version": payload["version"]})
        return None


class StockFn(_AppFunction):
    """Inventory item; replies reservation outcomes to the order fn."""

    def invoke(self, context: Context, payload: dict):
        kind = payload["kind"]
        state = context.state
        if kind == "reserve":
            ok = False
            if state:
                new_state, ok = stock_logic.reserve(dict(state),
                                                    payload["quantity"])
                if ok:
                    state.clear()
                    state.update(new_state)
            context.send("order", payload["reply_to"], {
                "kind": "reserve_result", "order_id": payload["order_id"],
                "key": context.key, "ok": ok})
        elif kind == "confirm":
            updated = stock_logic.confirm_reservation(
                dict(state), payload["quantity"])
            state.clear()
            state.update(updated)
        elif kind == "cancel":
            updated = stock_logic.cancel_reservation(
                dict(state), payload["quantity"])
            state.clear()
            state.update(updated)
        elif kind == "allocate":
            # Reserve-and-confirm in one step (external-order ingestion).
            ok = False
            if state and state.get("active", True):
                free = state["qty_available"] - state["qty_reserved"]
                if free >= payload["quantity"]:
                    state["qty_available"] -= payload["quantity"]
                    ok = True
            context.send("order", payload["reply_to"], {
                "kind": "allocate_result", "order_id": payload["order_id"],
                "key": context.key, "ok": ok})
        elif kind == "restock":
            if state:
                updated = stock_logic.restock(dict(state),
                                              payload["quantity"])
                state.clear()
                state.update(updated)
        elif kind == "deactivate":
            if state:
                updated = stock_logic.deactivate(dict(state),
                                                 payload["version"])
                state.clear()
                state.update(updated)
            context.egress("delete_product",
                           {"status": "ok", "version": payload["version"]},
                           effect_id=f"{context.request_id}:delete_product")
        return None


class CartFn(_AppFunction):
    """Per-customer cart with a pending-add state machine."""

    def invoke(self, context: Context, payload: dict):
        kind = payload["kind"]
        state = context.state
        if not state:
            state.update(cart_logic.new_cart(int(context.key)))
            state["pending_adds"] = {}
        if kind == "add_item":
            pending_id = payload["pending_id"]
            state["pending_adds"][pending_id] = {
                "seller_id": payload["seller_id"],
                "product_id": payload["product_id"],
                "quantity": payload["quantity"],
                "voucher_cents": payload.get("voucher_cents", 0)}
            key = f"{payload['seller_id']}/{payload['product_id']}"
            context.send("replica", key, {
                "kind": "get_price", "reply_to": context.key,
                "pending_id": pending_id})
        elif kind == "price_reply":
            pending = state["pending_adds"].pop(payload["pending_id"],
                                                None)
            if pending is None:
                return None
            if payload["price"] is None:
                context.egress("add_item",
                               {"status": "rejected",
                                "reason": "unavailable"},
                               effect_id=f"{context.request_id}:add_item")
            else:
                updated = cart_logic.add_item(
                    {key: value for key, value in state.items()
                     if key not in ("pending_adds", "parked_checkout")},
                    {**pending,
                     "unit_price_cents": payload["price"]["price_cents"],
                     "price_version": payload["price"]["version"]})
                self._merge(state, updated)
                context.egress(
                    "add_item",
                    {"status": "ok",
                     "price_version": payload["price"]["version"]},
                    effect_id=f"{context.request_id}:add_item")
            # Replay safety: a checkout that arrived while adds were in
            # flight was parked; run it once the last add resolves.
            parked = state.get("parked_checkout")
            if parked is not None and not state["pending_adds"]:
                state["parked_checkout"] = None
                self._checkout(context, parked, state)
        elif kind == "checkout":
            if state["pending_adds"]:
                # Adds still doing their replica round-trip: defer the
                # checkout so outcomes do not depend on message timing
                # (crash replay collapses inter-arrival gaps).
                state["parked_checkout"] = {
                    "order_id": payload["order_id"],
                    "method": payload["method"],
                    "request_id": context.request_id}
                return None
            self._checkout(context, {
                "order_id": payload["order_id"],
                "method": payload["method"],
                "request_id": context.request_id}, state)
        return None

    @staticmethod
    def _merge(state, updated):
        pending_adds = state["pending_adds"]
        parked = state.get("parked_checkout")
        state.clear()
        state.update(updated)
        state["pending_adds"] = pending_adds
        state["parked_checkout"] = parked

    def _checkout(self, context, request, state):
        base = {key: value for key, value in state.items()
                if key not in ("pending_adds", "parked_checkout")}
        try:
            sealed, items = cart_logic.seal_for_checkout(base)
        except ValueError:
            context.egress("checkout",
                           {"status": "rejected", "reason": "empty_cart",
                            "order_id": request["order_id"]},
                           effect_id=f"{request['order_id']}:checkout")
            return
        self._merge(state, sealed)
        context.send("order", context.key, {
            "kind": "create_order", "order_id": request["order_id"],
            "items": items, "method": request["method"]},
            request_id=request["order_id"])


class OrderFn(_AppFunction):
    """Checkout orchestrator as an explicit state machine."""

    def invoke(self, context: Context, payload: dict):
        kind = payload["kind"]
        state = context.state
        if not state:
            state.update(order_logic.new_customer_orders(int(context.key)))
            state["pending"] = {}
        handler = getattr(self, f"_{kind}", None)
        if handler is None:
            return None
        return handler(context, payload, state)

    # -- phase 1: reserve stock -----------------------------------------
    def _create_order(self, context, payload, state):
        order_id = payload["order_id"]
        items = payload["items"]
        state["pending"][order_id] = {
            "items": items, "method": payload["method"],
            "awaiting": len(items), "confirmed": []}
        for item in items:
            key = f"{item['seller_id']}/{item['product_id']}"
            context.send("stock", key, {
                "kind": "reserve", "order_id": order_id,
                "quantity": item["quantity"], "reply_to": context.key})
        return None

    def _reserve_result(self, context, payload, state):
        order_id = payload["order_id"]
        pending = state["pending"].get(order_id)
        if pending is None:
            return None
        pending["awaiting"] -= 1
        if payload["ok"]:
            matched = [item for item in pending["items"]
                       if f"{item['seller_id']}/{item['product_id']}"
                       == payload["key"]]
            pending["confirmed"].extend(matched)
        if pending["awaiting"] > 0:
            return None
        # All reservation replies are in.
        if not pending["confirmed"]:
            state["pending"].pop(order_id)
            context.egress("checkout",
                           {"status": "rejected", "reason": "no_stock",
                            "order_id": order_id},
                           effect_id=f"{order_id}:checkout")
            return None
        base = {key: value for key, value in state.items()
                if key != "pending"}
        new_base, order = order_logic.assemble(
            base, order_id, pending["confirmed"],
            context.worker.env.now)
        pending_map = state["pending"]
        state.clear()
        state.update(new_base)
        state["pending"] = pending_map
        pending_map[order_id]["order"] = order
        for seller_id in order_logic.seller_ids(order):
            context.send("seller", str(seller_id), {
                "kind": "upsert_entry", "order": order})
        context.send("payment", order_id, {
            "kind": "process", "order": order,
            "method": pending["method"], "reply_to": context.key})
        return None

    # -- external-order ingestion (prepaid, no reservation round) ---------
    def _ingest_external(self, context, payload, state):
        order_id = payload["order_id"]
        state["pending"][order_id] = {
            "items": payload["items"], "awaiting": len(payload["items"]),
            "confirmed": [], "ext": payload["ext"], "external": True,
            "reply_shard": payload["reply_shard"]}
        for item in payload["items"]:
            key = f"{item['seller_id']}/{item['product_id']}"
            context.send("stock", key, {
                "kind": "allocate", "order_id": order_id,
                "quantity": item["quantity"], "reply_to": context.key})
        return None

    def _allocate_result(self, context, payload, state):
        order_id = payload["order_id"]
        pending = state["pending"].get(order_id)
        if pending is None:
            return None
        pending["awaiting"] -= 1
        if payload["ok"]:
            matched = [item for item in pending["items"]
                       if f"{item['seller_id']}/{item['product_id']}"
                       == payload["key"]]
            pending["confirmed"].extend(matched)
        if pending["awaiting"] > 0:
            return None
        state["pending"].pop(order_id)
        if not pending["confirmed"]:
            # Nothing allocated: un-register the dedup entry so a later
            # submit can retry from scratch.
            context.send("ingestion", pending["reply_shard"], {
                "kind": "release", "key": pending["ext"]})
            context.egress("submit_external",
                           {"status": "rejected", "reason": "no_stock",
                            "order_id": order_id})
            return None
        base = {key: value for key, value in state.items()
                if key != "pending"}
        base, order = order_logic.assemble(
            base, order_id, pending["confirmed"],
            context.worker.env.now, ext=pending["ext"])
        base = order_logic.set_status(
            base, order_id, OrderStatus.PAYMENT_PROCESSED,
            context.worker.env.now)
        self._replace(state, base, pending_map=None)
        for seller_id in order_logic.seller_ids(order):
            context.send("seller", str(seller_id), {
                "kind": "upsert_entry", "order": order})
            context.send("seller", str(seller_id), {
                "kind": "update_entry_status", "order_id": order_id,
                "status": OrderStatus.PAYMENT_PROCESSED})
        context.send("customer", context.key, {
            "kind": "record_payment",
            "amount_cents": order["total_cents"], "approved": True})
        context.send("shipment", self.app.shipment_partition(order_id), {
            "kind": "create", "order": order, "external": True})
        context.egress("submit_external",
                       {"status": "ok", "order_id": order_id,
                        "idempotent": False, "invoice": order["invoice"],
                        "total_cents": order["total_cents"]})
        return None

    # -- return/refund compensation saga ----------------------------------
    def _request_return(self, context, payload, state):
        order_id = payload["order_id"]
        base = {key: value for key, value in state.items()
                if key != "pending"}
        if order_id not in base["orders"]:
            context.egress("request_return",
                           {"status": "rejected",
                            "reason": "unknown_order",
                            "order_id": order_id})
            return None
        order = base["orders"][order_id]
        if order["status"] != OrderStatus.COMPLETED:
            context.egress("request_return",
                           {"status": "rejected",
                            "reason": "not_completed",
                            "order_id": order_id,
                            "state": order["status"]})
            return None
        base = order_logic.set_status(
            base, order_id, OrderStatus.RETURN_REQUESTED,
            context.worker.env.now)
        self._replace(state, base, pending_map=None)
        state["pending"][f"return:{order_id}"] = {
            "outcome": lifecycle.disposition(order_id)}
        context.send("payment", order_id, {
            "kind": "refund", "order_id": order_id,
            "reply_to": context.key})
        return None

    def _refund_result(self, context, payload, state):
        order_id = payload["order_id"]
        pending = state["pending"].pop(f"return:{order_id}", None)
        if pending is None:
            return None
        if not payload["ok"]:
            # Order stays in RETURN_REQUESTED — the audit counts it.
            context.egress("request_return",
                           {"status": "failed",
                            "reason": "refund_unreachable",
                            "order_id": order_id})
            return None
        outcome = pending["outcome"]
        base = {key: value for key, value in state.items()
                if key != "pending"}
        for hop in lifecycle.return_hops(outcome)[1:]:
            base = order_logic.set_status(base, order_id, hop,
                                          context.worker.env.now)
        self._replace(state, base, pending_map=None)
        order = base["orders"][order_id]
        if outcome != OrderStatus.DEFECT:
            for item in order["items"]:
                key = f"{item['seller_id']}/{item['product_id']}"
                context.send("stock", key, {
                    "kind": "restock", "quantity": item["quantity"]})
        for seller_id in order_logic.seller_ids(order):
            amount = seller_logic.seller_share_cents(order, seller_id)
            if amount:
                context.send("seller", str(seller_id), {
                    "kind": "record_return", "order_id": order_id,
                    "amount_cents": amount})
        context.send("customer", context.key, {
            "kind": "record_refund",
            "amount_cents": order["total_cents"]})
        context.egress("request_return",
                       {"status": "ok", "order_id": order_id,
                        "outcome": outcome,
                        "refund_cents": order["total_cents"]})
        return None

    # -- phase 2: payment -------------------------------------------------
    def _payment_result(self, context, payload, state):
        order_id = payload["order_id"]
        pending = state["pending"].pop(order_id, None)
        if pending is None:
            return None
        order = pending["order"]
        sellers = order_logic.seller_ids(order)
        base = {key: value for key, value in state.items()
                if key != "pending"}
        if not payload["approved"]:
            for item in pending["confirmed"]:
                key = f"{item['seller_id']}/{item['product_id']}"
                context.send("stock", key, {
                    "kind": "cancel", "quantity": item["quantity"]})
            base = order_logic.set_status(
                base, order_id, OrderStatus.PAYMENT_FAILED,
                context.worker.env.now)
            base = order_logic.set_status(
                base, order_id, OrderStatus.CANCELED,
                context.worker.env.now)
            self._replace(state, base, pending_map=None)
            for seller_id in sellers:
                context.send("seller", str(seller_id), {
                    "kind": "update_entry_status", "order_id": order_id,
                    "status": OrderStatus.CANCELED})
            context.send("customer", context.key, {
                "kind": "record_payment",
                "amount_cents": order["total_cents"], "approved": False})
            context.egress("checkout",
                           {"status": "failed", "reason": "payment",
                            "order_id": order_id,
                            "total_cents": order["total_cents"]},
                           effect_id=f"{order_id}:checkout")
            return None
        for item in pending["confirmed"]:
            key = f"{item['seller_id']}/{item['product_id']}"
            context.send("stock", key, {
                "kind": "confirm", "quantity": item["quantity"]})
        base = order_logic.set_status(
            base, order_id, OrderStatus.PAYMENT_PROCESSED,
            context.worker.env.now)
        self._replace(state, base, pending_map=None)
        for seller_id in sellers:
            context.send("seller", str(seller_id), {
                "kind": "update_entry_status", "order_id": order_id,
                "status": OrderStatus.PAYMENT_PROCESSED})
        context.send("customer", context.key, {
            "kind": "record_payment",
            "amount_cents": order["total_cents"], "approved": True})
        context.send("shipment", self.app.shipment_partition(order_id), {
            "kind": "create", "order": order})
        return None

    # -- phase 3: shipment / delivery --------------------------------------
    def _record_shipment(self, context, payload, state):
        base = {key: value for key, value in state.items()
                if key != "pending"}
        if payload["order_id"] not in base["orders"]:
            return None
        base = order_logic.record_shipment(
            base, payload["order_id"], payload["package_count"],
            context.worker.env.now)
        self._replace(state, base, pending_map=None)
        return None

    def _record_delivery(self, context, payload, state):
        order_id = payload["order_id"]
        base = {key: value for key, value in state.items()
                if key != "pending"}
        if order_id not in base["orders"]:
            return None
        base, completed = order_logic.record_delivery(
            base, order_id, context.worker.env.now)
        self._replace(state, base, pending_map=None)
        if completed:
            order = base["orders"][order_id]
            for seller_id in order_logic.seller_ids(order):
                context.send("seller", str(seller_id), {
                    "kind": "update_entry_status", "order_id": order_id,
                    "status": OrderStatus.COMPLETED})
            context.send("customer", context.key,
                         {"kind": "record_delivery"})
        return None

    @staticmethod
    def _replace(state, base, pending_map):
        pending = pending_map if pending_map is not None \
            else state.get("pending", {})
        state.clear()
        state.update(base)
        state["pending"] = pending


class PaymentFn(_AppFunction):
    """Per-order payment processor."""

    def invoke(self, context: Context, payload: dict):
        kind = payload["kind"]
        if kind == "process":
            order = payload["order"]
            payment = payment_logic.build_payment(
                order["order_id"], order["customer_id"],
                order["total_cents"], payload["method"],
                context.worker.env.now)
            payment = payment_logic.authorize(
                payment, self.app.config.approval_rate)
            context.state.clear()
            context.state.update(payment)
            context.send("order", payload["reply_to"], {
                "kind": "payment_result", "order_id": order["order_id"],
                "approved": payment_logic.is_approved(payment)})
        elif kind == "refund":
            state = context.state
            done = bool(state) and payment_logic.is_approved(state)
            if done:
                updated = payment_logic.refund(dict(state))
                state.clear()
                state.update(updated)
            context.send("order", payload["reply_to"], {
                "kind": "refund_result", "order_id": payload["order_id"],
                "ok": done})
        return None


class ShipmentFn(_AppFunction):
    """Shipment partition; completes the checkout egress."""

    def invoke(self, context: Context, payload: dict):
        kind = payload["kind"]
        state = context.state
        if not state:
            state.update(shipment_logic.new_shipments())
        if kind == "create":
            order = payload["order"]
            if order["order_id"] in state["shipments"]:
                return None
            updated, shipment = shipment_logic.create_shipment(
                dict(state), order["order_id"], order["customer_id"],
                order["items"], context.worker.env.now)
            state.clear()
            state.update(updated)
            count = len(shipment["packages"])
            context.send("order", str(order["customer_id"]), {
                "kind": "record_shipment", "order_id": order["order_id"],
                "package_count": count})
            for seller_id in order_logic.seller_ids(order):
                context.send("seller", str(seller_id), {
                    "kind": "update_entry_status",
                    "order_id": order["order_id"],
                    "status": OrderStatus.IN_TRANSIT})
            if not payload.get("external"):
                # External orders resolve their submit at creation; only
                # checkouts complete on the shipment egress.
                context.egress("checkout",
                               {"status": "ok",
                                "order_id": order["order_id"],
                                "total_cents": order["total_cents"],
                                "package_count": count},
                               effect_id=f"{order['order_id']}:checkout")
        elif kind == "collect_undelivered":
            summary = []
            for seller_id, when in shipment_logic.undelivered_seller_times(
                    state):
                package = shipment_logic.oldest_undelivered_package(
                    state, seller_id)
                summary.append({
                    "seller_id": seller_id, "shipped_at": when,
                    "order_id": package["order_id"],
                    "package_id": package["package_id"]})
            context.send("delivery", payload["reply_to"], {
                "kind": "partition_summary",
                "partition": context.key, "summary": summary})
        elif kind == "mark_delivered":
            existing = state["shipments"].get(payload["order_id"], {})
            package = existing.get("packages", {}).get(
                payload["package_id"])
            if package is None or package["status"] == "delivered":
                context.send("delivery", payload["reply_to"], {
                    "kind": "delivered_ack", "ok": False})
                return None
            updated, package = shipment_logic.mark_delivered(
                dict(state), payload["order_id"],
                payload["package_id"], context.worker.env.now)
            state.clear()
            state.update(updated)
            shipment = state["shipments"][payload["order_id"]]
            context.send("order", str(shipment["customer_id"]), {
                "kind": "record_delivery",
                "order_id": payload["order_id"]})
            context.send("delivery", payload["reply_to"], {
                "kind": "delivered_ack", "ok": True})
        return None


class DeliveryFn(_AppFunction):
    """Coordinator of the Update Delivery batch (keyed per request)."""

    def invoke(self, context: Context, payload: dict):
        kind = payload["kind"]
        state = context.state
        if kind == "start":
            state["awaiting"] = self.app.shipment_partitions
            state["summaries"] = []
            state["acks_expected"] = 0
            state["acks_seen"] = 0
            state["delivered"] = 0
            for index in range(self.app.shipment_partitions):
                context.send("shipment", f"part-{index}", {
                    "kind": "collect_undelivered",
                    "reply_to": context.key})
        elif kind == "partition_summary":
            state["awaiting"] -= 1
            state["summaries"].extend(
                [{**entry, "partition": payload["partition"]}
                 for entry in payload["summary"]])
            if state["awaiting"] > 0:
                return None
            best: dict[int, dict] = {}
            for entry in state["summaries"]:
                current = best.get(entry["seller_id"])
                if current is None \
                        or entry["shipped_at"] < current["shipped_at"]:
                    best[entry["seller_id"]] = entry
            chosen = sorted(best.values(),
                            key=lambda entry: (entry["shipped_at"],
                                               entry["seller_id"]))[:10]
            if not chosen:
                context.egress("update_delivery",
                               {"status": "ok", "sellers": 0,
                                "packages_delivered": 0})
                return None
            state["acks_expected"] = len(chosen)
            for entry in chosen:
                context.send("shipment", entry["partition"], {
                    "kind": "mark_delivered",
                    "order_id": entry["order_id"],
                    "package_id": entry["package_id"],
                    "reply_to": context.key})
        elif kind == "delivered_ack":
            state["acks_seen"] += 1
            if payload["ok"]:
                state["delivered"] += 1
            if state["acks_seen"] >= state["acks_expected"]:
                context.egress("update_delivery",
                               {"status": "ok",
                                "sellers": state["acks_expected"],
                                "packages_delivered": state["delivered"]})
        return None


class CustomerFn(_AppFunction):
    """Customer statistics."""

    def invoke(self, context: Context, payload: dict):
        state = context.state
        if not state:
            state.update(customer_logic.new_customer(int(context.key)))
        kind = payload["kind"]
        if kind == "record_payment":
            updated = customer_logic.record_payment(
                dict(state), payload["amount_cents"], payload["approved"])
        elif kind == "record_delivery":
            updated = customer_logic.record_delivery(dict(state))
        elif kind == "record_refund":
            updated = customer_logic.record_refund(
                dict(state), payload["amount_cents"])
        else:
            return None
        state.clear()
        state.update(updated)
        return None


class SellerFn(_AppFunction):
    """Seller dashboard view plus the two dashboard queries."""

    def invoke(self, context: Context, payload: dict):
        state = context.state
        if not state:
            state.update(seller_logic.new_seller(int(context.key)))
        kind = payload["kind"]
        if kind == "upsert_entry":
            self.app.record_event(payload["order"]["order_id"],
                                  "order_created")
            updated = seller_logic.upsert_entry(dict(state),
                                                payload["order"])
        elif kind == "update_entry_status":
            self.app.record_event(
                payload["order_id"],
                _STATUS_TO_EVENT.get(payload["status"],
                                     payload["status"]))
            updated = seller_logic.update_entry_status(
                dict(state), payload["order_id"], payload["status"],
                context.worker.env.now)
        elif kind == "record_return":
            self.app.record_event(payload["order_id"], "order_returned")
            updated = seller_logic.record_return(dict(state),
                                                 payload["amount_cents"])
        elif kind == "dashboard_amount":
            context.egress("dashboard_amount",
                           {"amount_cents":
                            seller_logic.dashboard_amount(state)})
            return None
        elif kind == "dashboard_entries":
            context.egress("dashboard_entries",
                           {"entries":
                            seller_logic.dashboard_entries(state)})
            return None
        else:
            return None
        state.clear()
        state.update(updated)
        return None


class IngestionFn(_AppFunction):
    """Dedup registry shard for one external ``(platform, shop_id)``.

    Registration and order creation both run under the platform's
    exactly-once envelope, so a duplicate submit resolves from the
    registry without ever re-creating the order — the transactional
    stacks get the same guarantee from atomic commit, the eventual
    stack gets neither."""

    def invoke(self, context: Context, payload: dict):
        kind = payload["kind"]
        state = context.state
        if not state:
            state.update(ingestion_logic.new_registry(context.key))
        if kind == "submit":
            key = ingestion_logic.dedup_key(
                payload["platform"], payload["shop_id"],
                payload["ext_order_no"])
            updated, order_id, created = ingestion_logic.register(
                dict(state), key)
            if not created:
                context.egress("submit_external",
                               {"status": "ok", "order_id": order_id,
                                "idempotent": True})
                return None
            state.clear()
            state.update(updated)
            context.send("order", str(payload["customer_id"]), {
                "kind": "ingest_external", "order_id": order_id,
                "items": payload["items"], "ext": key,
                "reply_shard": context.key})
        elif kind == "release":
            # The order side rejected the ingest (no stock): drop the
            # registration so a later submit can retry.
            entries = dict(state["entries"])
            entries.pop(payload["key"], None)
            state["entries"] = entries
        return None


#: Seller-entry status changes mapped back to the lifecycle event that
#: caused them (for the event-ordering audit log).
_STATUS_TO_EVENT = {
    OrderStatus.PAYMENT_PROCESSED: "payment_confirmed",
    OrderStatus.CANCELED: "payment_failed",
    OrderStatus.IN_TRANSIT: "shipment_notification",
    OrderStatus.COMPLETED: "order_completed",
}
