"""Grain classes of the ACID-transactional implementation.

Every grain's state is guarded by a :class:`TransactionParticipant`
(strict 2PL, wait-die); the checkout, delivery, return and ingestion
operations run as distributed transactions committed with 2PC.  A
payment decline compensates inside the same transaction (stock release
+ a PAYMENT_FAILED -> CANCELED order tombstone), so the unhappy paths
are exactly as atomic as the happy one.
"""

from __future__ import annotations

from repro.marketplace.constants import OrderStatus, Topics
from repro.marketplace.logic import (
    cart as cart_logic,
    customer as customer_logic,
    ingestion as ingestion_logic,
    lifecycle,
    order as order_logic,
    payment as payment_logic,
    product as product_logic,
    seller as seller_logic,
    shipment as shipment_logic,
    stock as stock_logic,
)
from repro.txn import TransactionalGrain


class PaymentDeclined(Exception):
    """Payment authorisation failed: abort the checkout, do not retry."""


class TxnProductGrain(TransactionalGrain):
    """Authoritative product record under transactional state."""

    def get(self):
        state = yield from self.txn_read()
        return state or None

    def update_price(self, price_cents: int):
        state = yield from self.txn_read()
        if not state or not state["active"]:
            return {"applied": False}
        state = product_logic.update_price(state, price_cents)
        yield from self.txn_write(state)
        self.publish(Topics.PRICE_UPDATES, self.key, {
            "kind": "price_updated", "key": self.key,
            "price_cents": price_cents, "version": state["version"]})
        return {"applied": True, "version": state["version"]}

    def delete(self):
        state = yield from self.txn_read()
        if not state or not state["active"]:
            return {"applied": False}
        state = product_logic.delete(state)
        yield from self.txn_write(state)
        # Deactivate the stock item inside the same transaction —
        # referential integrity is enforced, not hoped for.
        stock_ref = self.grain_ref(TxnStockGrain, self.key)
        yield self.call(stock_ref, "deactivate", state["version"])
        self.publish(Topics.PRICE_UPDATES, self.key, {
            "kind": "product_deleted", "key": self.key,
            "version": state["version"]})
        return {"applied": True, "version": state["version"]}


class TxnReplicaGrain(TransactionalGrain):
    """Cart-side replica; still maintained by (eventual) events —
    Orleans Transactions offers no replication primitive (paper §III)."""

    def get_price(self):
        state = yield from self.txn_read()
        if not state or not state.get("active", False):
            return None
        return state

    def apply_update(self, price_cents: int, version: int):
        # Event-driven replica maintenance is non-transactional — the
        # platform has no replication primitive, so writes go straight
        # to committed state (the source of the staleness the paper's
        # replication criterion measures).
        state = self.participant.read_committed()
        if state and state.get("version", 0) >= version:
            return False
        self.non_txn_write({
            "price_cents": price_cents, "version": version,
            "active": state.get("active", True) if state else True})
        return True
        yield  # pragma: no cover - generator marker

    def apply_delete(self, version: int):
        state = self.participant.read_committed()
        if not state or state.get("version", 0) >= version:
            return False
        self.non_txn_write({**state, "active": False, "version": version})
        return True
        yield  # pragma: no cover - generator marker


class TxnStockGrain(TransactionalGrain):
    """Inventory under ACID: checkout decrements atomically."""

    def allocate(self, quantity: int):
        """Reserve-and-confirm in one transactional step."""
        state = yield from self.txn_read()
        if not state or not state.get("active", True):
            return False
        if state["qty_available"] - state["qty_reserved"] < quantity:
            return False
        yield from self.txn_write(
            {**state, "qty_available": state["qty_available"] - quantity})
        return True

    def release(self, quantity: int):
        """Hand allocated units back (compensation: abort or return)."""
        state = yield from self.txn_read()
        if not state:
            return False
        yield from self.txn_write(stock_logic.restock(state, quantity))
        return True

    def deactivate(self, version: int):
        state = yield from self.txn_read()
        if not state:
            return False
        yield from self.txn_write(stock_logic.deactivate(state, version))
        return True


class TxnCartGrain(TransactionalGrain):
    """Per-customer cart under transactional state."""

    def add_item(self, seller_id: int, product_id: int, quantity: int,
                 voucher_cents: int = 0):
        state = yield from self.txn_read()
        if not state:
            state = cart_logic.new_cart(int(self.key))
        key = f"{seller_id}/{product_id}"
        replica = self.grain_ref(TxnReplicaGrain, key)
        price = yield self.call(replica, "get_price")
        if price is None:
            return {"added": False, "reason": "unavailable"}
        state = cart_logic.add_item(state, {
            "seller_id": seller_id, "product_id": product_id,
            "quantity": quantity,
            "unit_price_cents": price["price_cents"],
            "price_version": price["version"],
            "voucher_cents": voucher_cents})
        yield from self.txn_write(state)
        return {"added": True, "price_version": price["version"]}

    def checkout(self, order_id: str, payment_method: str):
        state = yield from self.txn_read()
        if not state:
            state = cart_logic.new_cart(int(self.key))
        try:
            state, items = cart_logic.seal_for_checkout(state)
        except ValueError:
            return {"status": "rejected", "reason": "empty_cart"}
        yield from self.txn_write(state)
        orders = self.grain_ref(TxnOrderGrain, self.key)
        result = yield self.call(orders, "process_checkout", order_id,
                                 items, payment_method)
        return result


class TxnOrderGrain(TransactionalGrain):
    """Checkout orchestrator: every effect inside one transaction."""

    def process_checkout(self, order_id: str, items: list[dict],
                         payment_method: str):
        app = self.cluster.app
        state = yield from self.txn_read()
        if not state:
            state = order_logic.new_customer_orders(int(self.key))
        # 1. Allocate stock transactionally (sequential: lock ordering
        #    by product key avoids pointless wait-die churn).
        confirmed = []
        for item in sorted(items, key=lambda entry:
                           (entry["seller_id"], entry["product_id"])):
            ref = self.grain_ref(
                TxnStockGrain, f"{item['seller_id']}/{item['product_id']}")
            granted = yield self.call(ref, "allocate", item["quantity"])
            if granted:
                confirmed.append(item)
        if not confirmed:
            return {"status": "rejected", "reason": "no_stock",
                    "order_id": order_id}
        # 2. Assemble order.
        state, order = order_logic.assemble(state, order_id, confirmed,
                                            self.env.now)
        # 3. Payment inside the transaction; declines abort everything.
        payment_ref = self.grain_ref(TxnPaymentGrain, order_id)
        payment = yield self.call(payment_ref, "process", order,
                                  payment_method, app.config.approval_rate)
        if not payment_logic.is_approved(payment):
            # Payment-failure abort as an explicit compensation inside
            # the same ACID transaction: hand the allocated stock back
            # and keep the order as an auditable PAYMENT_FAILED ->
            # CANCELED tombstone (all-or-nothing with the release).
            for item in confirmed:
                ref = self.grain_ref(
                    TxnStockGrain,
                    f"{item['seller_id']}/{item['product_id']}")
                yield self.call(ref, "release", item["quantity"])
            state = order_logic.set_status(
                state, order_id, OrderStatus.PAYMENT_FAILED, self.env.now)
            state = order_logic.set_status(
                state, order_id, OrderStatus.CANCELED, self.env.now)
            yield from self.txn_write(state)
            customer_ref = self.grain_ref(TxnCustomerGrain, self.key)
            yield self.call(customer_ref, "record_payment",
                            order["total_cents"], False)
            self.publish(Topics.ORDER_EVENTS, order_id, {
                "kind": "payment_failed", "order_id": order_id,
                "customer_id": order["customer_id"], "sellers": [],
                "amount_cents": order["total_cents"]})
            return {"status": "failed", "reason": "payment",
                    "order_id": order_id}
        state = order_logic.set_status(
            state, order_id, OrderStatus.PAYMENT_PROCESSED, self.env.now)
        # 4. Shipment, seller dashboard entries and customer statistics —
        #    all participants of the same transaction.
        shipment_ref = self.grain_ref(
            TxnShipmentGrain, app.shipment_partition(order_id))
        package_count = yield self.call(shipment_ref, "create", order)
        state = order_logic.record_shipment(state, order_id,
                                            package_count, self.env.now)
        yield from self.txn_write(state)
        for seller_id in order_logic.seller_ids(order):
            seller_ref = self.grain_ref(TxnSellerGrain, str(seller_id))
            yield self.call(seller_ref, "upsert_entry",
                            {**order, "status": OrderStatus.IN_TRANSIT})
        customer_ref = self.grain_ref(TxnCustomerGrain, self.key)
        yield self.call(customer_ref, "record_payment",
                        order["total_cents"], True)
        # Events still published (unordered) for external consumers.
        created = self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "payment_confirmed", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": [],
            "amount_cents": order["total_cents"]})
        self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "shipment_notification", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": [],
            "package_count": package_count},
            causal_deps=[created.sequence])
        return {"status": "ok", "order_id": order_id,
                "invoice": order["invoice"],
                "total_cents": order["total_cents"]}

    def record_delivery(self, order_id: str):
        state = yield from self.txn_read()
        if not state or order_id not in state["orders"]:
            return {"completed": False, "known": False}
        state, completed = order_logic.record_delivery(
            state, order_id, self.env.now)
        yield from self.txn_write(state)
        if completed:
            customer_ref = self.grain_ref(TxnCustomerGrain, self.key)
            yield self.call(customer_ref, "record_delivery")
        return {"completed": completed, "known": True,
                "sellers": order_logic.seller_ids(
                    state["orders"][order_id])}

    def ingest_external(self, order_id: str, items: list[dict], ext: str):
        """Create a prepaid external-platform order (one transaction).

        The external channel already collected payment, so the order
        goes straight to PAYMENT_PROCESSED and ships; stock allocation,
        seller entries and customer statistics commit atomically with
        it — and with the caller's dedup registration.
        """
        app = self.cluster.app
        state = yield from self.txn_read()
        if not state:
            state = order_logic.new_customer_orders(int(self.key))
        confirmed = []
        for item in sorted(items, key=lambda entry:
                           (entry["seller_id"], entry["product_id"])):
            ref = self.grain_ref(
                TxnStockGrain, f"{item['seller_id']}/{item['product_id']}")
            granted = yield self.call(ref, "allocate", item["quantity"])
            if granted:
                confirmed.append(item)
        if not confirmed:
            return {"status": "rejected", "reason": "no_stock",
                    "order_id": order_id}
        state, order = order_logic.assemble(state, order_id, confirmed,
                                            self.env.now, ext=ext)
        state = order_logic.set_status(
            state, order_id, OrderStatus.PAYMENT_PROCESSED, self.env.now)
        shipment_ref = self.grain_ref(
            TxnShipmentGrain, app.shipment_partition(order_id))
        package_count = yield self.call(shipment_ref, "create", order)
        state = order_logic.record_shipment(state, order_id,
                                            package_count, self.env.now)
        yield from self.txn_write(state)
        for seller_id in order_logic.seller_ids(order):
            seller_ref = self.grain_ref(TxnSellerGrain, str(seller_id))
            yield self.call(seller_ref, "upsert_entry",
                            {**order, "status": OrderStatus.IN_TRANSIT})
        customer_ref = self.grain_ref(TxnCustomerGrain, self.key)
        yield self.call(customer_ref, "record_payment",
                        order["total_cents"], True)
        created = self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "payment_confirmed", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": [],
            "amount_cents": order["total_cents"]})
        self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "shipment_notification", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": [],
            "package_count": package_count},
            causal_deps=[created.sequence])
        return {"status": "ok", "order_id": order_id,
                "invoice": order["invoice"],
                "total_cents": order["total_cents"]}

    def process_return(self, order_id: str):
        """Return/refund compensation saga as one ACID transaction.

        Restock (unless the return is defective), refund the payment,
        reverse the sellers' recognised revenue and the customer's
        spend — all participants of the same transaction, so the saga
        can never be observed half-applied on this stack.
        """
        state = yield from self.txn_read()
        if not state or order_id not in state["orders"]:
            return {"status": "rejected", "reason": "unknown_order",
                    "order_id": order_id}
        order = state["orders"][order_id]
        if order["status"] != OrderStatus.COMPLETED:
            return {"status": "rejected", "reason": "not_completed",
                    "order_id": order_id, "state": order["status"]}
        outcome = lifecycle.disposition(order_id)
        for hop in lifecycle.return_hops(outcome):
            state = order_logic.set_status(state, order_id, hop,
                                           self.env.now)
        yield from self.txn_write(state)
        order = state["orders"][order_id]
        payment_ref = self.grain_ref(TxnPaymentGrain, order_id)
        yield self.call(payment_ref, "refund")
        if outcome != OrderStatus.DEFECT:
            for item in sorted(order["items"], key=lambda entry:
                               (entry["seller_id"], entry["product_id"])):
                ref = self.grain_ref(
                    TxnStockGrain,
                    f"{item['seller_id']}/{item['product_id']}")
                yield self.call(ref, "release", item["quantity"])
        for seller_id in order_logic.seller_ids(order):
            amount = seller_logic.seller_share_cents(order, seller_id)
            if amount:
                seller_ref = self.grain_ref(TxnSellerGrain, str(seller_id))
                yield self.call(seller_ref, "record_return", amount)
        customer_ref = self.grain_ref(TxnCustomerGrain, self.key)
        yield self.call(customer_ref, "record_refund",
                        order["total_cents"])
        created = self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "return_requested", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": []})
        self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "order_returned", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": [],
            "outcome": outcome},
            causal_deps=[created.sequence])
        return {"status": "ok", "order_id": order_id, "outcome": outcome,
                "refund_cents": order["total_cents"]}


class TxnPaymentGrain(TransactionalGrain):
    """Per-order payment record under transactional state."""

    def process(self, order: dict, method: str, approval_rate: float):
        payment = payment_logic.build_payment(
            order["order_id"], order["customer_id"],
            order["total_cents"], method, self.env.now)
        payment = payment_logic.authorize(payment, approval_rate)
        yield from self.txn_write(payment)
        return payment

    def refund(self):
        payment = yield from self.txn_read()
        if not payment:
            return False
        yield from self.txn_write(payment_logic.refund(payment))
        return True


class TxnShipmentGrain(TransactionalGrain):
    """Shipment partition under transactional state."""

    def create(self, order: dict):
        state = yield from self.txn_read()
        if not state:
            state = shipment_logic.new_shipments()
        if order["order_id"] in state["shipments"]:
            return len(state["shipments"][order["order_id"]]["packages"])
        state, shipment = shipment_logic.create_shipment(
            state, order["order_id"], order["customer_id"],
            order["items"], self.env.now)
        yield from self.txn_write(state)
        return len(shipment["packages"])

    def undelivered_seller_times(self):
        state = yield from self.txn_read()
        if not state:
            return []
        return shipment_logic.undelivered_seller_times(state)

    def oldest_package(self, seller_id: int):
        state = yield from self.txn_read()
        if not state:
            return None
        return shipment_logic.oldest_undelivered_package(state, seller_id)

    def mark_delivered(self, order_id: str, package_id: str):
        state = yield from self.txn_read()
        if not state:
            return None
        try:
            state, package = shipment_logic.mark_delivered(
                state, order_id, package_id, self.env.now)
        except KeyError:
            return None
        yield from self.txn_write(state)
        customer_id = state["shipments"][order_id]["customer_id"]
        order_ref = self.grain_ref(TxnOrderGrain, str(customer_id))
        outcome = yield self.call(order_ref, "record_delivery", order_id)
        if outcome["completed"]:
            # Retire the sellers' dashboard entries in the same txn.
            for seller_id in outcome.get("sellers", []):
                seller_ref = self.grain_ref(TxnSellerGrain, str(seller_id))
                yield self.call(seller_ref, "update_entry_status",
                                order_id, OrderStatus.COMPLETED)
        self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "delivery_notification", "order_id": order_id,
            "seller_id": package["seller_id"], "sellers": [],
            "package_id": package_id})
        return {"seller_id": package["seller_id"],
                "completed": outcome["completed"],
                "sellers": outcome.get("sellers", [])}


class TxnCustomerGrain(TransactionalGrain):
    """Customer statistics under transactional state."""

    def record_payment(self, amount_cents: int, approved: bool):
        state = yield from self.txn_read()
        if not state:
            state = customer_logic.new_customer(int(self.key))
        yield from self.txn_write(customer_logic.record_payment(
            state, amount_cents, approved))
        return True

    def record_delivery(self):
        state = yield from self.txn_read()
        if not state:
            state = customer_logic.new_customer(int(self.key))
        yield from self.txn_write(customer_logic.record_delivery(state))
        return True

    def record_refund(self, amount_cents: int):
        state = yield from self.txn_read()
        if not state:
            state = customer_logic.new_customer(int(self.key))
        yield from self.txn_write(customer_logic.record_refund(
            state, amount_cents))
        return True

    def get(self):
        state = yield from self.txn_read()
        return state or customer_logic.new_customer(int(self.key))


class TxnSellerGrain(TransactionalGrain):
    """Seller dashboard view, maintained transactionally."""

    def upsert_entry(self, order: dict):
        state = yield from self.txn_read()
        if not state:
            state = seller_logic.new_seller(int(self.key))
        yield from self.txn_write(seller_logic.upsert_entry(state, order))
        return True

    def update_entry_status(self, order_id: str, status: str):
        state = yield from self.txn_read()
        if not state:
            return False
        yield from self.txn_write(seller_logic.update_entry_status(
            state, order_id, status, self.env.now))
        return True

    def record_return(self, amount_cents: int):
        state = yield from self.txn_read()
        if not state:
            return False
        yield from self.txn_write(seller_logic.record_return(
            state, amount_cents))
        return True

    def dashboard_amount(self):
        """Non-transactional read: Orleans Transactions has no snapshot
        queries, so the dashboard reads committed state directly."""
        state = yield from self.txn_read()
        if not state:
            return 0
        return seller_logic.dashboard_amount(state)

    def dashboard_entries(self):
        state = yield from self.txn_read()
        if not state:
            return []
        return seller_logic.dashboard_entries(state)


class TxnIngestionGrain(TransactionalGrain):
    """Dedup registry shard for one external ``(platform, shop_id)``.

    Registration and internal-order creation are participants of the
    same transaction, so a duplicate submit is exactly-once by
    construction: either the key committed with its order, or neither
    exists and a retry starts from scratch.
    """

    def submit(self, platform: str, shop_id: int, ext_order_no: str,
               customer_id: int, items: list[dict]):
        state = yield from self.txn_read()
        if not state:
            state = ingestion_logic.new_registry(self.key)
        key = ingestion_logic.dedup_key(platform, shop_id, ext_order_no)
        state, order_id, created = ingestion_logic.register(state, key)
        if not created:
            return {"status": "ok", "order_id": order_id,
                    "idempotent": True}
        order_ref = self.grain_ref(TxnOrderGrain, str(customer_id))
        result = yield self.call(order_ref, "ingest_external", order_id,
                                 items, key)
        if result.get("status") != "ok":
            # No txn_write: the registration is dropped with the rest
            # of the transaction's effects, so a retry can succeed.
            return {"status": "rejected",
                    "reason": result.get("reason", "rejected"),
                    "order_id": order_id}
        yield from self.txn_write(state)
        return {"status": "ok", "order_id": order_id, "idempotent": False,
                "invoice": result["invoice"],
                "total_cents": result["total_cents"]}


#: Grain classes of the transactional app, keyed by service name.
TXN_GRAINS = {
    "product": TxnProductGrain,
    "replica": TxnReplicaGrain,
    "stock": TxnStockGrain,
    "cart": TxnCartGrain,
    "order": TxnOrderGrain,
    "payment": TxnPaymentGrain,
    "shipment": TxnShipmentGrain,
    "customer": TxnCustomerGrain,
    "seller": TxnSellerGrain,
    "ingestion": TxnIngestionGrain,
}
