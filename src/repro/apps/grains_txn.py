"""Grain classes of the ACID-transactional implementation.

Every grain's state is guarded by a :class:`TransactionParticipant`
(strict 2PL, wait-die); the checkout, delivery and seller operations run
as distributed transactions committed with 2PC.  Payment declines raise
:class:`PaymentDeclined` — a *non-retryable* abort, unlike wait-die
victims, which the coordinator retries with preserved priority.
"""

from __future__ import annotations

from repro.marketplace.constants import OrderStatus, Topics
from repro.marketplace.logic import (
    cart as cart_logic,
    customer as customer_logic,
    order as order_logic,
    payment as payment_logic,
    product as product_logic,
    seller as seller_logic,
    shipment as shipment_logic,
    stock as stock_logic,
)
from repro.txn import TransactionalGrain


class PaymentDeclined(Exception):
    """Payment authorisation failed: abort the checkout, do not retry."""


class TxnProductGrain(TransactionalGrain):
    """Authoritative product record under transactional state."""

    def get(self):
        state = yield from self.txn_read()
        return state or None

    def update_price(self, price_cents: int):
        state = yield from self.txn_read()
        if not state or not state["active"]:
            return {"applied": False}
        state = product_logic.update_price(state, price_cents)
        yield from self.txn_write(state)
        self.publish(Topics.PRICE_UPDATES, self.key, {
            "kind": "price_updated", "key": self.key,
            "price_cents": price_cents, "version": state["version"]})
        return {"applied": True, "version": state["version"]}

    def delete(self):
        state = yield from self.txn_read()
        if not state or not state["active"]:
            return {"applied": False}
        state = product_logic.delete(state)
        yield from self.txn_write(state)
        # Deactivate the stock item inside the same transaction —
        # referential integrity is enforced, not hoped for.
        stock_ref = self.grain_ref(TxnStockGrain, self.key)
        yield self.call(stock_ref, "deactivate", state["version"])
        self.publish(Topics.PRICE_UPDATES, self.key, {
            "kind": "product_deleted", "key": self.key,
            "version": state["version"]})
        return {"applied": True, "version": state["version"]}


class TxnReplicaGrain(TransactionalGrain):
    """Cart-side replica; still maintained by (eventual) events —
    Orleans Transactions offers no replication primitive (paper §III)."""

    def get_price(self):
        state = yield from self.txn_read()
        if not state or not state.get("active", False):
            return None
        return state

    def apply_update(self, price_cents: int, version: int):
        # Event-driven replica maintenance is non-transactional — the
        # platform has no replication primitive, so writes go straight
        # to committed state (the source of the staleness the paper's
        # replication criterion measures).
        state = self.participant.read_committed()
        if state and state.get("version", 0) >= version:
            return False
        self.non_txn_write({
            "price_cents": price_cents, "version": version,
            "active": state.get("active", True) if state else True})
        return True
        yield  # pragma: no cover - generator marker

    def apply_delete(self, version: int):
        state = self.participant.read_committed()
        if not state or state.get("version", 0) >= version:
            return False
        self.non_txn_write({**state, "active": False, "version": version})
        return True
        yield  # pragma: no cover - generator marker


class TxnStockGrain(TransactionalGrain):
    """Inventory under ACID: checkout decrements atomically."""

    def allocate(self, quantity: int):
        """Reserve-and-confirm in one transactional step."""
        state = yield from self.txn_read()
        if not state or not state.get("active", True):
            return False
        if state["qty_available"] - state["qty_reserved"] < quantity:
            return False
        yield from self.txn_write(
            {**state, "qty_available": state["qty_available"] - quantity})
        return True

    def deactivate(self, version: int):
        state = yield from self.txn_read()
        if not state:
            return False
        yield from self.txn_write(stock_logic.deactivate(state, version))
        return True


class TxnCartGrain(TransactionalGrain):
    """Per-customer cart under transactional state."""

    def add_item(self, seller_id: int, product_id: int, quantity: int,
                 voucher_cents: int = 0):
        state = yield from self.txn_read()
        if not state:
            state = cart_logic.new_cart(int(self.key))
        key = f"{seller_id}/{product_id}"
        replica = self.grain_ref(TxnReplicaGrain, key)
        price = yield self.call(replica, "get_price")
        if price is None:
            return {"added": False, "reason": "unavailable"}
        state = cart_logic.add_item(state, {
            "seller_id": seller_id, "product_id": product_id,
            "quantity": quantity,
            "unit_price_cents": price["price_cents"],
            "price_version": price["version"],
            "voucher_cents": voucher_cents})
        yield from self.txn_write(state)
        return {"added": True, "price_version": price["version"]}

    def checkout(self, order_id: str, payment_method: str):
        state = yield from self.txn_read()
        if not state:
            state = cart_logic.new_cart(int(self.key))
        try:
            state, items = cart_logic.seal_for_checkout(state)
        except ValueError:
            return {"status": "rejected", "reason": "empty_cart"}
        yield from self.txn_write(state)
        orders = self.grain_ref(TxnOrderGrain, self.key)
        result = yield self.call(orders, "process_checkout", order_id,
                                 items, payment_method)
        return result


class TxnOrderGrain(TransactionalGrain):
    """Checkout orchestrator: every effect inside one transaction."""

    def process_checkout(self, order_id: str, items: list[dict],
                         payment_method: str):
        app = self.cluster.app
        state = yield from self.txn_read()
        if not state:
            state = order_logic.new_customer_orders(int(self.key))
        # 1. Allocate stock transactionally (sequential: lock ordering
        #    by product key avoids pointless wait-die churn).
        confirmed = []
        for item in sorted(items, key=lambda entry:
                           (entry["seller_id"], entry["product_id"])):
            ref = self.grain_ref(
                TxnStockGrain, f"{item['seller_id']}/{item['product_id']}")
            granted = yield self.call(ref, "allocate", item["quantity"])
            if granted:
                confirmed.append(item)
        if not confirmed:
            return {"status": "rejected", "reason": "no_stock",
                    "order_id": order_id}
        # 2. Assemble order.
        state, order = order_logic.assemble(state, order_id, confirmed,
                                            self.env.now)
        # 3. Payment inside the transaction; declines abort everything.
        payment_ref = self.grain_ref(TxnPaymentGrain, order_id)
        payment = yield self.call(payment_ref, "process", order,
                                  payment_method, app.config.approval_rate)
        if not payment_logic.is_approved(payment):
            raise PaymentDeclined(order_id)
        state = order_logic.set_status(
            state, order_id, OrderStatus.PAYMENT_PROCESSED, self.env.now)
        # 4. Shipment, seller dashboard entries and customer statistics —
        #    all participants of the same transaction.
        shipment_ref = self.grain_ref(
            TxnShipmentGrain, app.shipment_partition(order_id))
        package_count = yield self.call(shipment_ref, "create", order)
        state = order_logic.record_shipment(state, order_id,
                                            package_count, self.env.now)
        yield from self.txn_write(state)
        for seller_id in order_logic.seller_ids(order):
            seller_ref = self.grain_ref(TxnSellerGrain, str(seller_id))
            yield self.call(seller_ref, "upsert_entry",
                            {**order, "status": OrderStatus.IN_TRANSIT})
        customer_ref = self.grain_ref(TxnCustomerGrain, self.key)
        yield self.call(customer_ref, "record_payment",
                        order["total_cents"], True)
        # Events still published (unordered) for external consumers.
        created = self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "payment_confirmed", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": [],
            "amount_cents": order["total_cents"]})
        self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "shipment_notification", "order_id": order_id,
            "customer_id": order["customer_id"], "sellers": [],
            "package_count": package_count},
            causal_deps=[created.sequence])
        return {"status": "ok", "order_id": order_id,
                "invoice": order["invoice"],
                "total_cents": order["total_cents"]}

    def record_delivery(self, order_id: str):
        state = yield from self.txn_read()
        if not state or order_id not in state["orders"]:
            return {"completed": False, "known": False}
        state, completed = order_logic.record_delivery(
            state, order_id, self.env.now)
        yield from self.txn_write(state)
        if completed:
            customer_ref = self.grain_ref(TxnCustomerGrain, self.key)
            yield self.call(customer_ref, "record_delivery")
        return {"completed": completed, "known": True,
                "sellers": order_logic.seller_ids(
                    state["orders"][order_id])}


class TxnPaymentGrain(TransactionalGrain):
    """Per-order payment record under transactional state."""

    def process(self, order: dict, method: str, approval_rate: float):
        payment = payment_logic.build_payment(
            order["order_id"], order["customer_id"],
            order["total_cents"], method, self.env.now)
        payment = payment_logic.authorize(payment, approval_rate)
        yield from self.txn_write(payment)
        return payment


class TxnShipmentGrain(TransactionalGrain):
    """Shipment partition under transactional state."""

    def create(self, order: dict):
        state = yield from self.txn_read()
        if not state:
            state = shipment_logic.new_shipments()
        if order["order_id"] in state["shipments"]:
            return len(state["shipments"][order["order_id"]]["packages"])
        state, shipment = shipment_logic.create_shipment(
            state, order["order_id"], order["customer_id"],
            order["items"], self.env.now)
        yield from self.txn_write(state)
        return len(shipment["packages"])

    def undelivered_seller_times(self):
        state = yield from self.txn_read()
        if not state:
            return []
        return shipment_logic.undelivered_seller_times(state)

    def oldest_package(self, seller_id: int):
        state = yield from self.txn_read()
        if not state:
            return None
        return shipment_logic.oldest_undelivered_package(state, seller_id)

    def mark_delivered(self, order_id: str, package_id: str):
        state = yield from self.txn_read()
        if not state:
            return None
        try:
            state, package = shipment_logic.mark_delivered(
                state, order_id, package_id, self.env.now)
        except KeyError:
            return None
        yield from self.txn_write(state)
        customer_id = state["shipments"][order_id]["customer_id"]
        order_ref = self.grain_ref(TxnOrderGrain, str(customer_id))
        outcome = yield self.call(order_ref, "record_delivery", order_id)
        if outcome["completed"]:
            # Retire the sellers' dashboard entries in the same txn.
            for seller_id in outcome.get("sellers", []):
                seller_ref = self.grain_ref(TxnSellerGrain, str(seller_id))
                yield self.call(seller_ref, "update_entry_status",
                                order_id, OrderStatus.COMPLETED)
        self.publish(Topics.ORDER_EVENTS, order_id, {
            "kind": "delivery_notification", "order_id": order_id,
            "seller_id": package["seller_id"], "sellers": [],
            "package_id": package_id})
        return {"seller_id": package["seller_id"],
                "completed": outcome["completed"],
                "sellers": outcome.get("sellers", [])}


class TxnCustomerGrain(TransactionalGrain):
    """Customer statistics under transactional state."""

    def record_payment(self, amount_cents: int, approved: bool):
        state = yield from self.txn_read()
        if not state:
            state = customer_logic.new_customer(int(self.key))
        yield from self.txn_write(customer_logic.record_payment(
            state, amount_cents, approved))
        return True

    def record_delivery(self):
        state = yield from self.txn_read()
        if not state:
            state = customer_logic.new_customer(int(self.key))
        yield from self.txn_write(customer_logic.record_delivery(state))
        return True

    def get(self):
        state = yield from self.txn_read()
        return state or customer_logic.new_customer(int(self.key))


class TxnSellerGrain(TransactionalGrain):
    """Seller dashboard view, maintained transactionally."""

    def upsert_entry(self, order: dict):
        state = yield from self.txn_read()
        if not state:
            state = seller_logic.new_seller(int(self.key))
        yield from self.txn_write(seller_logic.upsert_entry(state, order))
        return True

    def update_entry_status(self, order_id: str, status: str):
        state = yield from self.txn_read()
        if not state:
            return False
        yield from self.txn_write(seller_logic.update_entry_status(
            state, order_id, status, self.env.now))
        return True

    def dashboard_amount(self):
        """Non-transactional read: Orleans Transactions has no snapshot
        queries, so the dashboard reads committed state directly."""
        state = yield from self.txn_read()
        if not state:
            return 0
        return seller_logic.dashboard_amount(state)

    def dashboard_entries(self):
        state = yield from self.txn_read()
        if not state:
            return []
        return seller_logic.dashboard_entries(state)


#: Grain classes of the transactional app, keyed by service name.
TXN_GRAINS = {
    "product": TxnProductGrain,
    "replica": TxnReplicaGrain,
    "stock": TxnStockGrain,
    "cart": TxnCartGrain,
    "order": TxnOrderGrain,
    "payment": TxnPaymentGrain,
    "shipment": TxnShipmentGrain,
    "customer": TxnCustomerGrain,
    "seller": TxnSellerGrain,
}
