"""Customized Orleans: the paper's full-featured stack (Figure 1).

Orleans Transactions for business transactions, plus:

* a Redis-style primary-secondary KV store for *causal* replication of
  product data into carts (reads go through a causal session and never
  observe a state older than an acknowledged update);
* a PostgreSQL-style MVCC store so both seller-dashboard queries read
  one snapshot;
* causally-ordered event topics (payment before shipment per order).

"Our implementation introduces low overhead, hence its performance is
comparable to Orleans transactions." (paper §III)
"""

from __future__ import annotations

import typing

from repro.apps.base import AppConfig, ok
from repro.apps.grains_txn import TxnCartGrain
from repro.apps.logstore import AuditLogStore
from repro.apps.orleans_transactions import OrleansTransactionsApp
from repro.broker import DeliveryMode
from repro.kvstore import CausalSession, ReplicatedKV
from repro.marketplace.constants import OrderStatus
from repro.marketplace.logic import cart as cart_logic
from repro.marketplace.logic import order as order_logic
from repro.marketplace.logic import seller as seller_logic
from repro.sqlstore import MVCCEngine, Predicate, eq
from repro.txn import TxnConfig

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.workload.dataset import Dataset
    from repro.runtime import Environment

#: Simulated latency of one MVCC (PostgreSQL) round trip.
SQL_WRITE_LATENCY = 0.0004
SQL_QUERY_LATENCY = 0.0008


class CausalCartGrain(TxnCartGrain):
    """Cart whose price reads go through the causal KV replica tier."""

    def add_item(self, seller_id: int, product_id: int, quantity: int,
                 voucher_cents: int = 0):
        state = yield from self.txn_read()
        if not state:
            state = cart_logic.new_cart(int(self.key))
        key = f"{seller_id}/{product_id}"
        app = self.cluster.app
        entry = yield from app.kv.get_causal(key, app.session)
        if entry is None or not entry.value.get("active", False):
            return {"added": False, "reason": "unavailable"}
        price = entry.value
        state = cart_logic.add_item(state, {
            "seller_id": seller_id, "product_id": product_id,
            "quantity": quantity,
            "unit_price_cents": price["price_cents"],
            "price_version": price["version"],
            "voucher_cents": voucher_cents})
        yield from self.txn_write(state)
        return {"added": True, "price_version": price["version"]}


class CustomizedOrleansApp(OrleansTransactionsApp):
    """Transactions + causal KV replication + MVCC snapshot queries."""

    name = "customized-orleans"
    delivery_mode = DeliveryMode.CAUSAL

    def __init__(self, env: "Environment",
                 config: AppConfig | None = None,
                 txn_config: TxnConfig | None = None) -> None:
        super().__init__(env, config, txn_config)
        # Swap in the causal cart and register it.
        self._grains["cart"] = CausalCartGrain
        self.cluster.register_grain(CausalCartGrain)
        # Storage layer (Figure 1): Redis-style replicated KV ...
        self.kv = ReplicatedKV(env, "product-replica", replicas=2,
                               replication_lag=self.config.replication_lag)
        self.session = CausalSession("marketplace")
        # ... and PostgreSQL-style MVCC for consistent querying, plus
        # the append-only audit log of Figure 1's storage layer.
        self.audit_log = AuditLogStore(env)
        self.sql = MVCCEngine()
        self.sql.create_table(
            "order_entries",
            ["entry_id", "order_id", "seller_id", "customer_id",
             "amount_cents", "status", "updated_at"],
            primary_key="entry_id")
        self.sql.table("order_entries").create_index("seller_id")
        # The delivery batch retires in-transit entries; an index on
        # status lets that scan skip materialising retired rows.  (The
        # additive MVCC index keeps every key that *ever* matched, so
        # the candidate walk still grows with history — only the
        # per-row Row construction is saved absent version GC.)
        self.sql.table("order_entries").create_index("status")

    # ------------------------------------------------------------------
    # ingestion: also seed the KV replica tier
    # ------------------------------------------------------------------
    def _ingest_product(self, product) -> None:
        # Seed the KV replica tier alongside the transactional grains;
        # put_now is a latency-free ingestion shortcut, so folding it
        # into the per-record hook keeps on-demand (lazy) touches and
        # up-front ingestion behaviourally identical.
        super()._ingest_product(product)
        data = product.as_dict()
        self.kv.primary.put_now(product.key, {
            "price_cents": data["price_cents"],
            "version": data["version"], "active": data["active"]})
        for replica in self.kv.replicas:
            replica.store.put_now(product.key, {
                "price_cents": data["price_cents"],
                "version": data["version"], "active": data["active"]})

    # ------------------------------------------------------------------
    # price/catalogue operations also update the KV replica tier
    # ------------------------------------------------------------------
    def update_price(self, seller_id: int, product_id: int,
                     price_cents: int):
        result = yield from super().update_price(seller_id, product_id,
                                                 price_cents)
        if result.ok:
            yield from self.kv.put(
                f"{seller_id}/{product_id}",
                {"price_cents": price_cents,
                 "version": result.payload["version"], "active": True},
                session=self.session)
            self.audit_log.append_async(
                "update_price", f"{seller_id}/{product_id}",
                {"price_cents": price_cents,
                 "version": result.payload["version"]})
        return result

    def delete_product(self, seller_id: int, product_id: int):
        result = yield from super().delete_product(seller_id, product_id)
        if result.ok:
            key = f"{seller_id}/{product_id}"
            entry = yield from self.kv.get_primary(key)
            value = dict(entry.value) if entry else {"price_cents": 0}
            value.update({"active": False,
                          "version": result.payload["version"]})
            yield from self.kv.put(key, value, session=self.session)
            self.audit_log.append_async(
                "delete_product", key,
                {"version": result.payload["version"]})
        return result

    # ------------------------------------------------------------------
    # checkout/delivery additionally maintain the MVCC dashboard rows
    # ------------------------------------------------------------------
    def checkout(self, customer_id: int, order_id: str,
                 payment_method: str):
        result = yield from super().checkout(customer_id, order_id,
                                             payment_method)
        if result.ok:
            yield self.env.timeout(SQL_WRITE_LATENCY)
            self._record_entries(customer_id, order_id)
            self.audit_log.append_async(
                "checkout", order_id,
                {"customer_id": customer_id,
                 "total_cents": result.payload["total_cents"]})
        return result

    def _record_entries(self, customer_id: int, order_id: str) -> None:
        order_grain = self.cluster.grain_instance(
            self._grain("order", str(customer_id)))
        orders = order_grain.participant.committed_state.get("orders", {})
        order = orders.get(order_id)
        if order is None:
            return
        txn = self.sql.begin()
        for seller_id in order_logic.seller_ids(order):
            amount = seller_logic.seller_share_cents(order, seller_id)
            txn.upsert("order_entries", {
                "entry_id": f"{order_id}/{seller_id}",
                "order_id": order_id, "seller_id": seller_id,
                "customer_id": order["customer_id"],
                "amount_cents": amount,
                "status": OrderStatus.IN_TRANSIT,
                "updated_at": self.env.now})
        txn.commit()

    def submit_external(self, platform: str, shop_id: int,
                        ext_order_no: str, customer_id: int,
                        items: list[dict]):
        result = yield from super().submit_external(
            platform, shop_id, ext_order_no, customer_id, items)
        if result.ok and not result.payload.get("idempotent"):
            yield self.env.timeout(SQL_WRITE_LATENCY)
            self._record_entries(customer_id, result.payload["order_id"])
            self.audit_log.append_async(
                "submit_external", result.payload["order_id"],
                {"platform": platform, "shop_id": shop_id,
                 "ext_order_no": ext_order_no,
                 "total_cents": result.payload["total_cents"]})
        return result

    def request_return(self, customer_id: int, order_id: str):
        result = yield from super().request_return(customer_id, order_id)
        if result.ok:
            yield self.env.timeout(SQL_WRITE_LATENCY)
            self._restatus_entries(order_id, result.payload["outcome"])
            self.audit_log.append_async(
                "request_return", order_id,
                {"customer_id": customer_id,
                 "outcome": result.payload["outcome"],
                 "refund_cents": result.payload["refund_cents"]})
        return result

    def _restatus_entries(self, order_id: str, status: str) -> None:
        txn = self.sql.begin()
        for row in txn.scan("order_entries", eq("order_id", order_id)):
            txn.update("order_entries", row.key,
                       {"status": status, "updated_at": self.env.now})
        txn.commit()

    def update_delivery(self):
        result = yield from super().update_delivery()
        if result.ok:
            yield self.env.timeout(SQL_WRITE_LATENCY)
            self._retire_completed_entries()
            self.audit_log.append_async(
                "update_delivery", "batch",
                {"packages_delivered":
                 result.payload["packages_delivered"]})
        return result

    def _retire_completed_entries(self) -> None:
        """Sync MVCC entry statuses with completed orders."""
        completed: set[str] = set()
        for silo in self.cluster.silos:
            for (type_name, _), activation in silo.activations.items():
                if type_name != "TxnOrderGrain":
                    continue
                participant = activation.grain._participant
                if participant is None:
                    continue
                orders = participant.committed_state.get("orders", {})
                for order_id, order in orders.items():
                    if order["status"] == OrderStatus.COMPLETED:
                        completed.add(order_id)
        if not completed:
            return
        txn = self.sql.begin()
        # Index-assisted: only entries still in transit are candidates
        # for retirement (completed ones were already re-statused).
        in_transit = eq("status", OrderStatus.IN_TRANSIT)
        for row in txn.scan("order_entries", in_transit):
            if row["order_id"] in completed:
                txn.update("order_entries", row.key,
                           {"status": OrderStatus.COMPLETED,
                            "updated_at": self.env.now})
        txn.commit()

    # ------------------------------------------------------------------
    # the consistent dashboard: both queries on ONE snapshot
    # ------------------------------------------------------------------
    def dashboard(self, seller_id: int):
        yield self.env.timeout(SQL_QUERY_LATENCY)
        snapshot = self.sql.snapshot()
        in_progress = Predicate(
            lambda row: row.get("status") in OrderStatus.IN_PROGRESS,
            description="status in progress")
        predicate = eq("seller_id", seller_id) & in_progress
        amount = snapshot.aggregate("order_entries", "amount_cents",
                                    predicate)
        rows = snapshot.scan("order_entries", predicate)
        entries = [dict(row.data) for row in rows]
        return ok("dashboard", amount_cents=amount or 0, entries=entries,
                  entries_total_cents=sum(entry["amount_cents"]
                                          for entry in entries))

    # ------------------------------------------------------------------
    def runtime_stats(self) -> dict:
        stats = super().runtime_stats()
        stats.update({
            "kv_stale_reads": self.kv.stale_reads,
            "kv_causal_waits": self.kv.causal_waits,
            "sql_committed": self.sql.committed_count,
            "audit_records": len(self.audit_log),
        })
        return stats
