"""Placement: deciding which silo hosts a grain activation.

Membership is dynamic: silos join, drain and crash at runtime.  Every
ring change bumps the placement *epoch*; messages snapshot the epoch
when they are routed, so delivery can detect that the ring moved under
them and re-place instead of creating an activation on a stale owner.
The :class:`GrainDirectory` complements the ring with a record of where
each grain is *actually* activated, letting lookups distinguish a grain
that moved (stale activation on an old owner) from one that was lost
in a crash (state discarded, must re-activate from storage).
"""

from __future__ import annotations

import bisect
import hashlib
import typing

from repro.actors.errors import NoLiveSilos

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.actors.silo import Silo


def _hash(value: str) -> int:
    return int.from_bytes(
        hashlib.sha256(value.encode()).digest()[:8], "big")


class ConsistentHashPlacement:
    """Consistent-hash ring with virtual nodes.

    Deterministic for a given silo set, and moves only ~1/n of grains
    when a silo joins or leaves — matching how Orleans keeps placement
    stable across membership changes.  ``epoch`` counts ring changes;
    it is the version number the routing layer uses to detect stale
    placement decisions.
    """

    def __init__(self, virtual_nodes: int = 64) -> None:
        self.virtual_nodes = virtual_nodes
        self.epoch = 0
        self._ring: list[tuple[int, "Silo"]] = []
        self._hashes: list[int] = []
        self._silos: list["Silo"] = []

    @property
    def silos(self) -> list["Silo"]:
        return list(self._silos)

    def add_silo(self, silo: "Silo") -> None:
        self._silos.append(silo)
        for i in range(self.virtual_nodes):
            point = _hash(f"{silo.name}#{i}")
            index = bisect.bisect(self._hashes, point)
            self._hashes.insert(index, point)
            self._ring.insert(index, (point, silo))
        self.epoch += 1

    def remove_silo(self, silo: "Silo") -> None:
        self._silos.remove(silo)
        kept = [(point, s) for point, s in self._ring if s is not silo]
        self._ring = kept
        self._hashes = [point for point, _ in kept]
        self.epoch += 1

    def place(self, grain_type_name: str, key: str) -> "Silo":
        """The silo responsible for (grain type, key)."""
        if not self._ring:
            raise NoLiveSilos("no live silos in the placement ring")
        point = _hash(f"{grain_type_name}/{key}")
        index = bisect.bisect(self._hashes, point)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]


class DirectoryEntry(typing.NamedTuple):
    """Where a grain is activated and under which placement epoch."""

    silo: "Silo"
    epoch: int


class GrainDirectory:
    """Cluster-wide record of live activations.

    The ring says where a grain *should* live; the directory says where
    it *does* live (and since which epoch).  After a membership change
    the two can disagree, and :meth:`classify` names the disagreement:

    ``active``
        activated on the silo the current ring points at.
    ``moved``
        activated on a silo the ring no longer points at — a stale
        activation from an earlier epoch (migration pending).
    ``lost``
        its hosting silo crashed; the activation (and any volatile
        state) is gone and the next call re-activates from storage.
    ``unknown``
        never activated, or deactivated cleanly.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], DirectoryEntry] = {}
        self._lost: set[tuple[str, str]] = set()
        #: Invalidation hook called with each (type_name, key) whose
        #: entry changes.  The cluster points this at its routing cache:
        #: register/unregister/drop happen without an epoch bump (e.g. a
        #: migrated grain being adopted by its new owner), so epoch
        #: checks alone cannot keep a routing cache coherent.
        self.on_change: typing.Callable[[tuple[str, str]], object] | None = (
            None)

    def __len__(self) -> int:
        return len(self._entries)

    def register(self, type_name: str, key: str, silo: "Silo",
                 epoch: int) -> None:
        self._entries[(type_name, key)] = DirectoryEntry(silo, epoch)
        self._lost.discard((type_name, key))
        if self.on_change is not None:
            self.on_change((type_name, key))

    def unregister(self, type_name: str, key: str) -> None:
        self._entries.pop((type_name, key), None)
        if self.on_change is not None:
            self.on_change((type_name, key))

    def drop_silo(self, silo: "Silo") -> list[tuple[str, str]]:
        """Remove every entry hosted on ``silo`` (crash path); the
        dropped idents are remembered as *lost* until re-registered."""
        dropped = [ident for ident, entry in self._entries.items()
                   if entry.silo is silo]
        for ident in dropped:
            del self._entries[ident]
            self._lost.add(ident)
        if self.on_change is not None:
            for ident in dropped:
                self.on_change(ident)
        return dropped

    def lookup(self, type_name: str, key: str) -> DirectoryEntry | None:
        return self._entries.get((type_name, key))

    def entries_on(self, silo: "Silo") -> list[tuple[str, str]]:
        return [ident for ident, entry in self._entries.items()
                if entry.silo is silo]

    def classify(self, type_name: str, key: str,
                 placement: ConsistentHashPlacement) -> str:
        entry = self._entries.get((type_name, key))
        if entry is None:
            return "lost" if (type_name, key) in self._lost else "unknown"
        try:
            owner = placement.place(type_name, key)
        except NoLiveSilos:
            return "moved"
        return "active" if owner is entry.silo else "moved"
