"""Placement: deciding which silo hosts a grain activation."""

from __future__ import annotations

import bisect
import hashlib
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.actors.silo import Silo


def _hash(value: str) -> int:
    return int.from_bytes(
        hashlib.sha256(value.encode()).digest()[:8], "big")


class ConsistentHashPlacement:
    """Consistent-hash ring with virtual nodes.

    Deterministic for a given silo set, and moves only ~1/n of grains
    when a silo joins or leaves — matching how Orleans keeps placement
    stable across membership changes.
    """

    def __init__(self, virtual_nodes: int = 64) -> None:
        self.virtual_nodes = virtual_nodes
        self._ring: list[tuple[int, "Silo"]] = []
        self._hashes: list[int] = []
        self._silos: list["Silo"] = []

    @property
    def silos(self) -> list["Silo"]:
        return list(self._silos)

    def add_silo(self, silo: "Silo") -> None:
        self._silos.append(silo)
        for i in range(self.virtual_nodes):
            point = _hash(f"{silo.name}#{i}")
            index = bisect.bisect(self._hashes, point)
            self._hashes.insert(index, point)
            self._ring.insert(index, (point, silo))

    def remove_silo(self, silo: "Silo") -> None:
        self._silos.remove(silo)
        kept = [(point, s) for point, s in self._ring if s is not silo]
        self._ring = kept
        self._hashes = [point for point, _ in kept]

    def place(self, grain_type_name: str, key: str) -> "Silo":
        """The silo responsible for (grain type, key)."""
        if not self._ring:
            raise RuntimeError("no silos registered")
        point = _hash(f"{grain_type_name}/{key}")
        index = bisect.bisect(self._hashes, point)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]
