"""Virtual-actor runtime in the style of Microsoft Orleans.

Grains are single-threaded virtual actors addressed by (type, key);
they are activated on demand on one of the cluster's silos, process one
message at a time (turn-based concurrency), and may persist state via a
grain-storage provider.  The runtime models network latency between
silos and CPU service time on each silo's cores, which is what produces
realistic saturation behaviour in the benchmark results.
"""

from repro.actors.cluster import Cluster, ClusterConfig
from repro.actors.errors import GrainCallError, GrainError
from repro.actors.grain import Grain, GrainRef
from repro.actors.placement import ConsistentHashPlacement
from repro.actors.silo import Silo
from repro.actors.storage import GrainStorage, MemoryGrainStorage

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ConsistentHashPlacement",
    "Grain",
    "GrainCallError",
    "GrainError",
    "GrainRef",
    "GrainStorage",
    "MemoryGrainStorage",
    "Silo",
]
