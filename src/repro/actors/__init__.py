"""Virtual-actor runtime in the style of Microsoft Orleans.

Grains are single-threaded virtual actors addressed by (type, key);
they are activated on demand on one of the cluster's silos, process one
message at a time (turn-based concurrency), and may persist state via a
grain-storage provider.  The runtime models network latency between
silos and CPU service time on each silo's cores, which is what produces
realistic saturation behaviour in the benchmark results.

Cluster membership is dynamic: silos can join (``Cluster.add_silo``),
retire gracefully (``Cluster.drain_silo``) or fail-stop
(``Cluster.crash_silo``) at runtime, with grain activations migrating
to the surviving owners and routing re-placing in-flight messages.
"""

from repro.actors.cluster import Cluster, ClusterConfig, MembershipStats
from repro.actors.errors import (
    GrainCallError,
    GrainError,
    NoLiveSilos,
    SiloUnavailable,
)
from repro.actors.grain import Grain, GrainRef
from repro.actors.placement import ConsistentHashPlacement, GrainDirectory
from repro.actors.silo import Silo, SiloState
from repro.actors.storage import GrainStorage, MemoryGrainStorage

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ConsistentHashPlacement",
    "Grain",
    "GrainCallError",
    "GrainDirectory",
    "GrainError",
    "GrainRef",
    "GrainStorage",
    "MembershipStats",
    "MemoryGrainStorage",
    "NoLiveSilos",
    "Silo",
    "SiloState",
    "SiloUnavailable",
]
