"""Silos and grain activations.

A silo hosts grain activations and owns a CPU :class:`Resource` with a
fixed number of cores.  Every grain-method invocation charges its CPU
cost on the hosting silo, so a silo under heavy load queues work and
latency climbs — the saturation behaviour the benchmark measures.

Silos have a lifecycle::

    running ──drain──▶ draining ──(handoff done)──▶ stopped
       │
       └──crash──▶ crashed

A *draining* silo accepts no new activations (the placement ring has
already forgotten it) but finishes the work its existing activations
have queued, persisting storage-backed state before deactivating.  A
*crashed* silo discards everything volatile on the spot: queued
messages are re-placed by the cluster, mid-execution calls fail with
:class:`~repro.actors.errors.SiloUnavailable`, and non-persistent grain
state is simply gone — the measurable anomaly the fault scenarios
count.
"""

from __future__ import annotations

import collections
import dataclasses
import inspect
import itertools
import typing
from types import GeneratorType as _GeneratorType

from repro.actors.errors import GrainCallError, SiloUnavailable
from repro.runtime.resources import Resource

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.actors.cluster import Cluster
    from repro.actors.grain import Grain
    from repro.actors.placement import GrainDirectory
    from repro.runtime import Environment, Event

_message_ids = itertools.count(1)


class SiloState:
    """Lifecycle states of a silo (plain strings for cheap checks)."""

    RUNNING = "running"
    DRAINING = "draining"
    STOPPED = "stopped"
    CRASHED = "crashed"


@dataclasses.dataclass(eq=False)
class Message:
    """One grain-method invocation in flight (identity semantics: the
    same message object survives rerouting across silos)."""

    method: str
    args: tuple
    kwargs: dict
    promise: "Event"
    txn: object | None
    reply_latency: float
    enqueue_time: float = 0.0
    message_id: int = dataclasses.field(
        default_factory=lambda: next(_message_ids))
    #: Grain reference, kept so the cluster can re-place the message
    #: after a membership change (None for activation-local timer
    #: ticks, which die with their activation).
    ref: object | None = None
    #: Delivery attempts so far; rerouting is bounded by the cluster.
    attempts: int = 0


class Activation:
    """A live grain instance plus its mailbox and worker process."""

    def __init__(self, env: "Environment", silo: "Silo",
                 grain: "Grain", adopted: bool = False) -> None:
        self.env = env
        self.silo = silo
        self.grain = grain
        #: True when this activation received a live-migrated grain:
        #: its in-memory state travelled with it, so the storage read
        #: and ``on_activate`` hook are skipped.
        self.adopted = adopted
        self.mailbox: collections.deque[Message] = collections.deque()
        self._wakeup: "Event | None" = None
        self.ready: "Event" = env.event()  # fires after on_activate
        self.processed = 0
        self.last_activity = env.now
        self.collected = False
        #: Guards ``on_deactivate`` against double execution when a
        #: deactivation aborts (a message slipped in mid-hook) and is
        #: later retried.
        self.deactivate_hook_ran = False
        #: Set when the hosting silo crashes: the worker stops, queued
        #: work is re-placed and late replies are suppressed.
        self.defunct = False
        #: Messages currently being executed (≤1 unless reentrant).
        self.inflight: set[Message] = set()
        self._timers: list["Event"] = []
        grain.activation = self
        env.process(self._start(), name=f"activate:{grain!r}")

    @property
    def busy(self) -> bool:
        """True while at least one message is mid-execution."""
        return bool(self.inflight)

    # ------------------------------------------------------------------
    def enqueue(self, message: Message) -> None:
        message.enqueue_time = self.env.now
        self.last_activity = self.env.now
        self.mailbox.append(message)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    # ------------------------------------------------------------------
    # grain timers (Orleans RegisterTimer analogue)
    # ------------------------------------------------------------------
    def register_timer(self, interval: float, method: str,
                       *args, **kwargs) -> None:
        """Invoke ``method`` on this grain every ``interval`` seconds.

        Timer ticks go through the normal mailbox (single-threaded with
        ordinary messages) and stop when the activation is collected.
        """
        if interval <= 0:
            raise ValueError("timer interval must be > 0")
        self.env.process(self._timer_loop(interval, method, args, kwargs),
                         name=f"timer:{self.grain!r}.{method}")

    def _timer_loop(self, interval: float, method: str, args, kwargs):
        while not self.collected:
            yield self.env.timeout(interval)
            if self.collected:
                return
            promise = self.env.event()
            self.grain.cluster.track_oneway(promise)
            self.enqueue(Message(method=method, args=args, kwargs=kwargs,
                                 promise=promise, txn=None,
                                 reply_latency=0.0))

    # ------------------------------------------------------------------
    def _start(self):
        grain = self.grain
        if not self.adopted:
            if grain.storage_name is not None:
                storage = grain.cluster.storage(grain.storage_name)
                state = yield from storage.read(type(grain).__name__,
                                                grain.key)
                if state is not None:
                    grain.state = state
            elif grain.cluster.working_set_limited:
                # Volatile grain evicted under the activation budget:
                # reload the paged snapshot (no-op — zero events — when
                # the grain was never paged out).
                yield from grain.cluster.page_in(grain)
            if self.defunct:
                return  # silo crashed during the state read
            hook = grain.on_activate()
            if inspect.isgenerator(hook):
                yield from hook
        self.ready.succeed()
        yield from self._worker()

    def _worker(self):
        while True:
            if self.defunct:
                return
            if not self.mailbox:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            message = self.mailbox.popleft()
            if self.grain.reentrant:
                # The method name alone is enough to identify the
                # process in error messages; formatting grain reprs
                # here costs more than the rest of the spawn.
                self.env.process(self._execute(message),
                                 name=message.method)
            else:
                yield from self._execute(message)

    def _execute(self, message: Message):
        grain = self.grain
        self.inflight.add(message)
        try:
            yield from self._execute_inner(message, grain)
        finally:
            self.inflight.discard(message)

    def _execute_inner(self, message: Message, grain: "Grain"):
        # Charge the method's CPU cost on this silo's cores.
        yield from self.silo.cpu.use(grain.cpu_cost)
        if self.defunct:
            return  # crashed while waiting for a core; promise failed
        method = getattr(grain, message.method, None)
        if method is None or not callable(method):
            self._reply(message, error=GrainCallError(
                f"{type(grain).__name__} has no method {message.method!r}"))
            return
        grain.current_txn = message.txn
        try:
            result = method(*message.args, **message.kwargs)
            if type(result) is _GeneratorType:
                result = yield from self._drive(result, message)
        except BaseException as exc:  # noqa: BLE001 - forwarded to caller
            grain.current_txn = None
            self._reply(message, error=exc)
            return
        grain.current_txn = None
        self.processed += 1
        self._reply(message, result=result)

    def _drive(self, generator, message: Message):
        """Drive a method generator, restoring the message's transaction
        context before *every* resumption.

        Reentrant grains interleave method executions on one grain
        instance; ``grain.current_txn`` is shared state, so without this
        restoration a method resuming after a wait would read (and
        charge its writes to) whichever transaction ran last — the
        actor-runtime analogue of async-local context flow.
        """
        grain = self.grain
        to_send: object = None
        to_throw: BaseException | None = None
        while True:
            if self.defunct:
                # The silo crashed while the method was suspended: a
                # fail-stop host must not resume the body and leak
                # side effects (nested calls, publishes, writes) from
                # beyond the grave.  The caller's promise was already
                # failed at crash time.
                generator.close()
                return None
            grain.current_txn = message.txn
            try:
                if to_throw is not None:
                    exc, to_throw = to_throw, None
                    event = generator.throw(exc)
                else:
                    event = generator.send(to_send)
            except StopIteration as stop:
                return stop.value
            try:
                to_send = yield event
            except BaseException as exc:  # noqa: BLE001 - re-thrown inside
                to_throw = exc

    def _reply(self, message: Message, result: object = None,
               error: BaseException | None = None) -> None:
        if self.defunct or message.promise.triggered:
            # The silo crashed under this call: the promise was already
            # failed with SiloUnavailable and this late outcome must
            # not escape the dead silo.
            return
        def deliver(_event):
            if message.promise.triggered:
                return  # crash failed the promise while the reply flew
            if error is not None:
                message.promise.fail(error)
            else:
                message.promise.succeed(result)
        # Raw pooled-event callback: a reply in flight has no process
        # body (see Cluster._route).
        self.env.call_after(message.reply_latency, deliver)


class Silo:
    """One node of the cluster: CPU cores plus hosted activations."""

    def __init__(self, env: "Environment", name: str, cores: int) -> None:
        self.env = env
        self.name = name
        self.cpu = Resource(env, capacity=cores)
        self.state = SiloState.RUNNING
        self.activations: dict[tuple[str, str], Activation] = {}
        self.messages_received = 0
        #: Set by the cluster so activation bookkeeping reaches the
        #: grain directory (None for silos used standalone in tests).
        self.directory: "GrainDirectory | None" = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Processing work (running or finishing a drain)."""
        return self.state in (SiloState.RUNNING, SiloState.DRAINING)

    @property
    def accepting_activations(self) -> bool:
        """Willing to host *new* activations."""
        return self.state == SiloState.RUNNING

    def crash(self) -> tuple[list[Message], list[Activation]]:
        """Fail-stop this silo.

        Returns ``(queued, discarded)``: the mailbox messages that had
        not started executing (safe to re-place — no effects yet) and
        the discarded activations.  Mid-execution messages have their
        promises failed with :class:`SiloUnavailable` immediately; any
        late outcome from their abandoned generators is suppressed.
        """
        self.state = SiloState.CRASHED
        queued: list[Message] = []
        discarded: list[Activation] = []
        for activation in self.activations.values():
            activation.defunct = True
            activation.collected = True
            queued.extend(activation.mailbox)
            activation.mailbox.clear()
            for message in list(activation.inflight):
                if not message.promise.triggered:
                    message.promise.fail(SiloUnavailable(
                        f"{self.name} crashed during "
                        f"{type(activation.grain).__name__}/"
                        f"{activation.grain.key}.{message.method}"))
            if (activation._wakeup is not None
                    and not activation._wakeup.triggered):
                activation._wakeup.succeed()  # let the worker exit
            discarded.append(activation)
        if self.directory is not None:
            self.directory.drop_silo(self)
        self.activations.clear()
        return queued, discarded

    # ------------------------------------------------------------------
    # activations
    # ------------------------------------------------------------------
    def activation_for(self, cluster: "Cluster",
                       grain_type: type["Grain"], key: str) -> Activation:
        """Find or create the activation for (grain_type, key)."""
        ident = (grain_type.__name__, key)
        activation = self.activations.get(ident)
        if activation is None:
            if not self.accepting_activations:
                raise SiloUnavailable(
                    f"{self.name} is {self.state}; cannot activate "
                    f"{grain_type.__name__}/{key}")
            grain = grain_type()
            grain.env = self.env
            grain.cluster = cluster
            grain.silo = self
            grain.key = key
            activation = Activation(self.env, self, grain)
            self.activations[ident] = activation
            cluster.note_activation(self)
            if self.directory is not None:
                self.directory.register(grain_type.__name__, key, self,
                                        cluster.placement.epoch)
        return activation

    def adopt(self, cluster: "Cluster", grain: "Grain") -> Activation:
        """Host a live-migrated grain, in-memory state and all.

        Used by drain and post-join rebalancing: the grain object moves
        from its old silo with its volatile state intact (the old
        activation must already be deactivated).  If the grain was
        re-activated here in the meantime, the existing activation
        wins and the migrated copy is dropped.
        """
        ident = (type(grain).__name__, grain.key)
        existing = self.activations.get(ident)
        if existing is not None:
            return existing
        if not self.accepting_activations:
            raise SiloUnavailable(
                f"{self.name} is {self.state}; cannot adopt "
                f"{ident[0]}/{ident[1]}")
        grain.silo = self
        activation = Activation(self.env, self, grain, adopted=True)
        self.activations[ident] = activation
        cluster.note_activation(self)
        if self.directory is not None:
            self.directory.register(ident[0], ident[1], self,
                                    cluster.placement.epoch)
        return activation

    def deactivate(self, grain_type_name: str, key: str) -> bool:
        """Drop an activation (its state remains in storage)."""
        activation = self.activations.pop((grain_type_name, key), None)
        if activation is None:
            return False
        activation.collected = True
        if self.directory is not None:
            self.directory.unregister(grain_type_name, key)
        return True

    def idle_activations(self, max_age: float) -> list[Activation]:
        """Activations idle (empty mailbox, no recent message) longer
        than ``max_age``."""
        now = self.env.now
        return [activation for activation in self.activations.values()
                if not activation.mailbox
                and now - activation.last_activity > max_age]

    @property
    def activation_count(self) -> int:
        return len(self.activations)

    def __repr__(self) -> str:
        return (f"<Silo {self.name} {self.state} "
                f"activations={self.activation_count}>")
