"""Silos and grain activations.

A silo hosts grain activations and owns a CPU :class:`Resource` with a
fixed number of cores.  Every grain-method invocation charges its CPU
cost on the hosting silo, so a silo under heavy load queues work and
latency climbs — the saturation behaviour the benchmark measures.
"""

from __future__ import annotations

import collections
import dataclasses
import inspect
import itertools
import typing

from repro.actors.errors import GrainCallError
from repro.runtime.resources import Resource

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.actors.cluster import Cluster
    from repro.actors.grain import Grain
    from repro.runtime import Environment, Event

_message_ids = itertools.count(1)


@dataclasses.dataclass
class Message:
    """One grain-method invocation in flight."""

    method: str
    args: tuple
    kwargs: dict
    promise: "Event"
    txn: object | None
    reply_latency: float
    enqueue_time: float = 0.0
    message_id: int = dataclasses.field(
        default_factory=lambda: next(_message_ids))


class Activation:
    """A live grain instance plus its mailbox and worker process."""

    def __init__(self, env: "Environment", silo: "Silo",
                 grain: "Grain") -> None:
        self.env = env
        self.silo = silo
        self.grain = grain
        self.mailbox: collections.deque[Message] = collections.deque()
        self._wakeup: "Event | None" = None
        self.ready: "Event" = env.event()  # fires after on_activate
        self.processed = 0
        self.last_activity = env.now
        self.collected = False
        self._timers: list["Event"] = []
        grain.activation = self
        env.process(self._start(), name=f"activate:{grain!r}")

    # ------------------------------------------------------------------
    def enqueue(self, message: Message) -> None:
        message.enqueue_time = self.env.now
        self.last_activity = self.env.now
        self.mailbox.append(message)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    # ------------------------------------------------------------------
    # grain timers (Orleans RegisterTimer analogue)
    # ------------------------------------------------------------------
    def register_timer(self, interval: float, method: str,
                       *args, **kwargs) -> None:
        """Invoke ``method`` on this grain every ``interval`` seconds.

        Timer ticks go through the normal mailbox (single-threaded with
        ordinary messages) and stop when the activation is collected.
        """
        if interval <= 0:
            raise ValueError("timer interval must be > 0")
        self.env.process(self._timer_loop(interval, method, args, kwargs),
                         name=f"timer:{self.grain!r}.{method}")

    def _timer_loop(self, interval: float, method: str, args, kwargs):
        while not self.collected:
            yield self.env.timeout(interval)
            if self.collected:
                return
            promise = self.env.event()
            self.grain.cluster.track_oneway(promise)
            self.enqueue(Message(method=method, args=args, kwargs=kwargs,
                                 promise=promise, txn=None,
                                 reply_latency=0.0))

    # ------------------------------------------------------------------
    def _start(self):
        grain = self.grain
        if grain.storage_name is not None:
            storage = grain.cluster.storage(grain.storage_name)
            state = yield from storage.read(type(grain).__name__, grain.key)
            if state is not None:
                grain.state = state
        hook = grain.on_activate()
        if inspect.isgenerator(hook):
            yield from hook
        self.ready.succeed()
        yield from self._worker()

    def _worker(self):
        while True:
            if not self.mailbox:
                self._wakeup = self.env.event()
                yield self._wakeup
                self._wakeup = None
            message = self.mailbox.popleft()
            if self.grain.reentrant:
                self.env.process(self._execute(message),
                                 name=f"exec:{self.grain!r}.{message.method}")
            else:
                yield from self._execute(message)

    def _execute(self, message: Message):
        grain = self.grain
        # Charge the method's CPU cost on this silo's cores.
        yield from self.silo.cpu.use(grain.cpu_cost)
        method = getattr(grain, message.method, None)
        if method is None or not callable(method):
            self._reply(message, error=GrainCallError(
                f"{type(grain).__name__} has no method {message.method!r}"))
            return
        grain.current_txn = message.txn
        try:
            result = method(*message.args, **message.kwargs)
            if inspect.isgenerator(result):
                result = yield from self._drive(result, message)
        except BaseException as exc:  # noqa: BLE001 - forwarded to caller
            grain.current_txn = None
            self._reply(message, error=exc)
            return
        grain.current_txn = None
        self.processed += 1
        self._reply(message, result=result)

    def _drive(self, generator, message: Message):
        """Drive a method generator, restoring the message's transaction
        context before *every* resumption.

        Reentrant grains interleave method executions on one grain
        instance; ``grain.current_txn`` is shared state, so without this
        restoration a method resuming after a wait would read (and
        charge its writes to) whichever transaction ran last — the
        actor-runtime analogue of async-local context flow.
        """
        grain = self.grain
        to_send: object = None
        to_throw: BaseException | None = None
        while True:
            grain.current_txn = message.txn
            try:
                if to_throw is not None:
                    exc, to_throw = to_throw, None
                    event = generator.throw(exc)
                else:
                    event = generator.send(to_send)
            except StopIteration as stop:
                return stop.value
            try:
                to_send = yield event
            except BaseException as exc:  # noqa: BLE001 - re-thrown inside
                to_throw = exc

    def _reply(self, message: Message, result: object = None,
               error: BaseException | None = None) -> None:
        def deliver():
            yield self.env.timeout(message.reply_latency)
            if error is not None:
                message.promise.fail(error)
            else:
                message.promise.succeed(result)
        self.env.process(deliver(), name=f"reply:{message.method}")


class Silo:
    """One node of the cluster: CPU cores plus hosted activations."""

    def __init__(self, env: "Environment", name: str, cores: int) -> None:
        self.env = env
        self.name = name
        self.cpu = Resource(env, capacity=cores)
        self.activations: dict[tuple[str, str], Activation] = {}
        self.messages_received = 0

    def activation_for(self, cluster: "Cluster",
                       grain_type: type["Grain"], key: str) -> Activation:
        """Find or create the activation for (grain_type, key)."""
        ident = (grain_type.__name__, key)
        activation = self.activations.get(ident)
        if activation is None:
            grain = grain_type()
            grain.env = self.env
            grain.cluster = cluster
            grain.silo = self
            grain.key = key
            activation = Activation(self.env, self, grain)
            self.activations[ident] = activation
        return activation

    def deactivate(self, grain_type_name: str, key: str) -> bool:
        """Drop an activation (its state remains in storage)."""
        activation = self.activations.pop((grain_type_name, key), None)
        if activation is None:
            return False
        activation.collected = True
        return True

    def idle_activations(self, max_age: float) -> list[Activation]:
        """Activations idle (empty mailbox, no recent message) longer
        than ``max_age``."""
        now = self.env.now
        return [activation for activation in self.activations.values()
                if not activation.mailbox
                and now - activation.last_activity > max_age]

    @property
    def activation_count(self) -> int:
        return len(self.activations)

    def __repr__(self) -> str:
        return f"<Silo {self.name} activations={self.activation_count}>"
