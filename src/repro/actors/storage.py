"""Grain storage providers (durable state behind grains)."""

from __future__ import annotations

import copy
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment


class GrainStorage:
    """Interface for grain state persistence."""

    def read(self, grain_type: str, key: str):
        """Process helper: load state (dict) or None."""
        raise NotImplementedError

    def write(self, grain_type: str, key: str, state: dict):
        """Process helper: persist state."""
        raise NotImplementedError

    def clear(self, grain_type: str, key: str):
        """Process helper: delete persisted state."""
        raise NotImplementedError


class MemoryGrainStorage(GrainStorage):
    """In-memory storage with simulated read/write latency.

    Values are deep-copied on the way in and out so that grains cannot
    share mutable state through the store (which would hide replication
    and atomicity anomalies the benchmark is designed to expose).
    """

    def __init__(self, env: "Environment", name: str,
                 read_latency: float = 0.0002,
                 write_latency: float = 0.0004) -> None:
        self.env = env
        self.name = name
        self.read_latency = read_latency
        self.write_latency = write_latency
        self._data: dict[tuple[str, str], dict] = {}
        self.reads = 0
        self.writes = 0

    def read(self, grain_type: str, key: str):
        yield self.env.timeout(self.read_latency)
        self.reads += 1
        state = self._data.get((grain_type, key))
        return copy.deepcopy(state) if state is not None else None

    def write(self, grain_type: str, key: str, state: dict):
        yield self.env.timeout(self.write_latency)
        self.writes += 1
        self._data[(grain_type, key)] = copy.deepcopy(state)

    def clear(self, grain_type: str, key: str):
        yield self.env.timeout(self.write_latency)
        self.writes += 1
        self._data.pop((grain_type, key), None)

    def peek(self, grain_type: str, key: str) -> dict | None:
        """Zero-latency read for audits and tests."""
        state = self._data.get((grain_type, key))
        return copy.deepcopy(state) if state is not None else None

    def keys(self) -> list[tuple[str, str]]:
        return list(self._data)
