"""Grain storage providers (durable state behind grains)."""

from __future__ import annotations

import typing

from repro.cow import CowState, clone, materialize

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment


class GrainStorage:
    """Interface for grain state persistence."""

    def read(self, grain_type: str, key: str):
        """Process helper: load state (dict) or None."""
        raise NotImplementedError

    def write(self, grain_type: str, key: str, state: dict):
        """Process helper: persist state."""
        raise NotImplementedError

    def clear(self, grain_type: str, key: str):
        """Process helper: delete persisted state."""
        raise NotImplementedError


class _StateVersion:
    """One immutable persisted version of a grain's state.

    The store never mutates ``data`` and never hands out a mutable
    reference to it: readers get a copy-on-write view, writers install
    a freshly materialised tree.  That keeps crash-discard semantics
    (volatile views die with their silo, persisted versions survive)
    without deep-copying state across the storage boundary.
    """

    __slots__ = ("data", "version")

    def __init__(self, data: dict, version: int) -> None:
        self.data = data
        self.version = version


class MemoryGrainStorage(GrainStorage):
    """In-memory storage with simulated read/write latency.

    State crosses the boundary via version handles: a read returns an
    isolated :class:`~repro.cow.CowState` view of the current version
    (O(1) — grains cannot share mutable state through the store), a
    write materialises the caller's state into a new frozen version,
    sharing unchanged sub-trees with the previous one.  Writing a view
    that was never mutated keeps the current version (no-op persist).
    """

    def __init__(self, env: "Environment", name: str,
                 read_latency: float = 0.0002,
                 write_latency: float = 0.0004) -> None:
        self.env = env
        self.name = name
        self.read_latency = read_latency
        self.write_latency = write_latency
        self._data: dict[tuple[str, str], _StateVersion] = {}
        self.reads = 0
        self.writes = 0

    def read(self, grain_type: str, key: str):
        yield self.env.timeout(self.read_latency)
        self.reads += 1
        version = self._data.get((grain_type, key))
        return CowState(version.data) if version is not None else None

    def write(self, grain_type: str, key: str, state: dict):
        yield self.env.timeout(self.write_latency)
        self.writes += 1
        self._install(grain_type, key, state)

    def _install(self, grain_type: str, key: str, state: dict) -> None:
        data = materialize(state)
        current = self._data.get((grain_type, key))
        if current is not None and current.data is data:
            return  # unmutated view written back: version unchanged
        number = current.version + 1 if current is not None else 1
        self._data[(grain_type, key)] = _StateVersion(data, number)

    def clear(self, grain_type: str, key: str):
        yield self.env.timeout(self.write_latency)
        self.writes += 1
        self._data.pop((grain_type, key), None)

    def peek(self, grain_type: str, key: str) -> dict | None:
        """Zero-latency read for audits and tests (detached copy)."""
        version = self._data.get((grain_type, key))
        return clone(version.data) if version is not None else None

    def version_of(self, grain_type: str, key: str) -> int:
        """The persisted version number (0 when nothing is stored)."""
        version = self._data.get((grain_type, key))
        return version.version if version is not None else 0

    def keys(self) -> list[tuple[str, str]]:
        return list(self._data)
