"""Grain base class and grain references."""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.actors.cluster import Cluster
    from repro.actors.silo import Silo
    from repro.runtime import Environment, Event


class Grain:
    """Base class for virtual actors.

    Subclasses define *grain methods* as generator methods; inside a
    method, ``yield`` an event (for example another grain call) to wait
    for it.  A grain processes one message at a time unless the subclass
    sets ``reentrant = True``.

    Class attributes
    ----------------
    cpu_cost:
        Simulated CPU seconds charged on the hosting silo per invocation
        (before the method body runs).
    storage_name:
        When set, ``self.state`` is loaded from the cluster's storage
        provider of that name at activation, and :meth:`write_state`
        persists it.
    reentrant:
        When True, messages may be processed concurrently (interleaving
        at yield points).
    """

    cpu_cost: float = 0.0001
    storage_name: str | None = None
    reentrant: bool = False
    #: Instance attributes captured by the working-set pager when a
    #: volatile (non-storage-backed) grain is deactivated under an
    #: activation budget, and restored on re-activation.  Empty means
    #: the grain is not pageable: evicting it would destroy state, so
    #: the working-set sweep leaves it resident.  Storage-backed grains
    #: ignore this — their own storage provider already persists
    #: ``self.state``.
    paged_attrs: tuple[str, ...] = ()

    def __init__(self) -> None:
        # Filled in by the runtime at activation time.
        self.env: "Environment" = None  # type: ignore[assignment]
        self.cluster: "Cluster" = None  # type: ignore[assignment]
        self.silo: "Silo" = None  # type: ignore[assignment]
        self.key: str = ""
        self.state: dict[str, typing.Any] = {}
        self.current_txn = None  # transaction context, set per message
        self.activation = None  # set by the runtime

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def on_activate(self):
        """Override to run logic at activation (may be a generator)."""
        return None

    def on_deactivate(self):
        """Override to run logic at deactivation (may be a generator)."""
        return None

    # ------------------------------------------------------------------
    # working-set paging (volatile grains under an activation budget)
    # ------------------------------------------------------------------
    def page_out(self) -> dict | None:
        """Capture volatile state for the working-set pager.

        Returns the attribute snapshot to persist, or None to refuse
        paging (the default for grains that declare no ``paged_attrs``,
        and for grains whose state must not leave memory right now —
        e.g. a transactional grain holding locks).
        """
        if not self.paged_attrs:
            return None
        return {attr: getattr(self, attr) for attr in self.paged_attrs}

    def page_in(self, paged: dict) -> None:
        """Restore the snapshot captured by :meth:`page_out`."""
        for attr, value in paged.items():
            setattr(self, attr, value)

    # ------------------------------------------------------------------
    # helpers available inside grain methods
    # ------------------------------------------------------------------
    def grain_ref(self, grain_type: type["Grain"] | str,
                  key: str) -> "GrainRef":
        """Reference another grain by type and key."""
        return self.cluster.grain_ref(grain_type, key)

    def call(self, ref: "GrainRef", method: str, *args,
             **kwargs) -> "Event":
        """Call another grain, propagating the transaction context."""
        return ref.call(method, *args, txn=self.current_txn,
                        caller_silo=self.silo, **kwargs)

    def cpu(self, seconds: float):
        """Process helper: charge extra CPU on the hosting silo."""
        return self.silo.cpu.use(seconds)

    def register_timer(self, interval: float, method: str,
                       *args, **kwargs) -> None:
        """Invoke ``method`` on this grain every ``interval`` seconds
        (through the mailbox, like Orleans' RegisterTimer)."""
        self.activation.register_timer(interval, method, *args, **kwargs)

    def write_state(self):
        """Process helper: persist ``self.state``.

        The storage provider materialises the state into a frozen
        version (copy-on-write views persist only their changes).
        """
        storage = self.cluster.storage(self.storage_name)
        yield from storage.write(type(self).__name__, self.key,
                                 self.state)

    def clear_state(self):
        """Process helper: delete persisted state."""
        storage = self.cluster.storage(self.storage_name)
        yield from storage.clear(type(self).__name__, self.key)

    def publish(self, topic: str, key: str, payload: object,
                causal_deps: typing.Iterable[int] = ()):
        """Publish an application event to the cluster's broker."""
        return self.cluster.broker.publish(topic, key, payload,
                                           causal_deps=causal_deps)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} key={self.key!r}>"


class GrainRef:
    """A location-transparent handle to a grain."""

    __slots__ = ("cluster", "grain_type", "key")

    def __init__(self, cluster: "Cluster", grain_type: type[Grain],
                 key: str) -> None:
        self.cluster = cluster
        self.grain_type = grain_type
        self.key = key

    @property
    def type_name(self) -> str:
        return self.grain_type.__name__

    def call(self, method: str, *args, txn=None, caller_silo=None,
             **kwargs) -> "Event":
        """Invoke ``method`` on the grain; returns a promise event.

        The promise fires with the method's return value, or fails with
        the exception the method raised.
        """
        return self.cluster.dispatch(self, method, args, kwargs,
                                     txn=txn, caller_silo=caller_silo)

    def tell(self, method: str, *args, **kwargs) -> None:
        """Fire-and-forget invocation (failures are logged, not raised)."""
        promise = self.call(method, *args, **kwargs)
        self.cluster.track_oneway(promise)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GrainRef):
            return NotImplemented
        return (self.grain_type is other.grain_type
                and self.key == other.key)

    def __hash__(self) -> int:
        return hash((self.grain_type, self.key))

    def __repr__(self) -> str:
        return f"<GrainRef {self.type_name}/{self.key}>"
