"""Error types raised by the actor runtime."""

from __future__ import annotations


class GrainError(Exception):
    """Base class for actor-runtime errors."""


class GrainCallError(GrainError):
    """A grain call failed (unknown method, dropped message, ...)."""


class MessageDropped(GrainCallError):
    """The message was lost by the (injected-faulty) network."""


class SiloUnavailable(GrainCallError):
    """The hosting silo crashed or stopped while the call was pending.

    Raised at the caller's yield point when a message could not be
    (re)delivered: the target silo crashed mid-execution, or rerouting
    after a membership change exhausted its retry budget.  Transient by
    nature — a retry against the new placement usually succeeds.
    """


class NoLiveSilos(SiloUnavailable):
    """The placement ring is empty: every silo has left the cluster."""


class UnknownGrainType(GrainError):
    """A grain type that was never registered with the cluster."""
