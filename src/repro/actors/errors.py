"""Error types raised by the actor runtime."""

from __future__ import annotations


class GrainError(Exception):
    """Base class for actor-runtime errors."""


class GrainCallError(GrainError):
    """A grain call failed (unknown method, dropped message, ...)."""


class MessageDropped(GrainCallError):
    """The message was lost by the (injected-faulty) network."""


class UnknownGrainType(GrainError):
    """A grain type that was never registered with the cluster."""
