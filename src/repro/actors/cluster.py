"""The cluster: silos, placement, routing and grain references."""

from __future__ import annotations

import dataclasses
import typing

from repro.actors.errors import MessageDropped, UnknownGrainType
from repro.actors.grain import Grain, GrainRef
from repro.actors.placement import ConsistentHashPlacement
from repro.actors.silo import Message, Silo
from repro.actors.storage import GrainStorage, MemoryGrainStorage
from repro.broker import Broker

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment, Event


@dataclasses.dataclass
class ClusterConfig:
    """Deployment and cost-model parameters for an actor cluster.

    Latencies are one-way; a call pays the latency twice (request and
    reply).  ``drop_probability`` injects message loss, which the
    eventually-consistent implementation does not recover from — the
    mechanism behind the paper's atomicity-violation observations.
    """

    silos: int = 4
    cores_per_silo: int = 4
    local_latency: float = 0.00005
    remote_latency: float = 0.0004
    remote_jitter: float = 0.0002
    drop_probability: float = 0.0


class Cluster:
    """A set of silos with consistent-hash placement and a broker."""

    def __init__(self, env: "Environment",
                 config: ClusterConfig | None = None,
                 broker: Broker | None = None) -> None:
        self.env = env
        self.config = config or ClusterConfig()
        self.broker = broker or Broker(env)
        self.placement = ConsistentHashPlacement()
        self.silos: list[Silo] = []
        for index in range(self.config.silos):
            silo = Silo(env, f"silo-{index}", self.config.cores_per_silo)
            self.silos.append(silo)
            self.placement.add_silo(silo)
        self._storages: dict[str, GrainStorage] = {
            "default": MemoryGrainStorage(env, "default")}
        self._grain_types: dict[str, type[Grain]] = {}
        self._rng = env.rng("cluster")
        self.messages_sent = 0
        self.messages_dropped = 0
        self.collections = 0

    # ------------------------------------------------------------------
    # registries
    # ------------------------------------------------------------------
    def register_grain(self, grain_type: type[Grain]) -> type[Grain]:
        """Register a grain type (enables string-based references)."""
        self._grain_types[grain_type.__name__] = grain_type
        return grain_type

    def register_storage(self, name: str, storage: GrainStorage) -> None:
        self._storages[name] = storage

    def storage(self, name: str | None) -> GrainStorage:
        storage = self._storages.get(name or "default")
        if storage is None:
            raise KeyError(f"no storage provider {name!r}")
        return storage

    # ------------------------------------------------------------------
    # references and routing
    # ------------------------------------------------------------------
    def grain_ref(self, grain_type: type[Grain] | str,
                  key: str) -> GrainRef:
        if isinstance(grain_type, str):
            resolved = self._grain_types.get(grain_type)
            if resolved is None:
                raise UnknownGrainType(grain_type)
            grain_type = resolved
        return GrainRef(self, grain_type, key)

    def silo_for(self, ref: GrainRef) -> Silo:
        return self.placement.place(ref.type_name, ref.key)

    def activation_of(self, ref: GrainRef):
        """The live activation behind ``ref`` (creating it if needed)."""
        silo = self.silo_for(ref)
        return silo.activation_for(self, ref.grain_type, ref.key)

    def grain_instance(self, ref: GrainRef) -> Grain:
        """Direct access to the grain object (tests and audits only)."""
        return self.activation_of(ref).grain

    def _latency(self, caller_silo: Silo | None, target: Silo) -> float:
        if caller_silo is target:
            return self.config.local_latency
        return (self.config.remote_latency
                + self._rng.random() * self.config.remote_jitter)

    def dispatch(self, ref: GrainRef, method: str, args: tuple,
                 kwargs: dict, txn=None,
                 caller_silo: Silo | None = None) -> "Event":
        """Route a grain call; returns the promise for its result."""
        promise = self.env.event()
        target = self.silo_for(ref)
        latency = self._latency(caller_silo, target)
        self.messages_sent += 1
        if (self.config.drop_probability > 0.0
                and self._rng.random() < self.config.drop_probability):
            self.messages_dropped += 1
            failure = MessageDropped(
                f"{ref.type_name}/{ref.key}.{method} lost in transit")
            def fail_later():
                yield self.env.timeout(latency)
                promise.fail(failure)
            self.env.process(fail_later(), name="drop")
            return promise
        message = Message(method=method, args=args, kwargs=kwargs,
                          promise=promise, txn=txn, reply_latency=latency)
        def deliver():
            yield self.env.timeout(latency)
            target.messages_received += 1
            activation = target.activation_for(self, ref.grain_type, ref.key)
            activation.enqueue(message)
        self.env.process(deliver(), name=f"send:{ref.type_name}.{method}")
        return promise

    def track_oneway(self, promise: "Event") -> None:
        """Silence failures of fire-and-forget calls (they are 'lost')."""
        def swallow(event):
            if not event.ok:
                event.defuse()
        if promise.callbacks is not None:
            promise.callbacks.append(swallow)

    # ------------------------------------------------------------------
    # idle activation collection (Orleans activation GC analogue)
    # ------------------------------------------------------------------
    def enable_idle_collection(self, max_age: float,
                               sweep_interval: float = 1.0) -> None:
        """Periodically deactivate grains idle longer than ``max_age``.

        State of storage-backed grains is persisted before collection;
        the next call to a collected grain transparently re-activates it
        (virtual-actor lifecycle transparency).
        """
        if max_age <= 0 or sweep_interval <= 0:
            raise ValueError("max_age and sweep_interval must be > 0")
        self.env.process(self._collection_loop(max_age, sweep_interval),
                         name="idle-collector")

    def _collection_loop(self, max_age: float, sweep_interval: float):
        while True:
            yield self.env.timeout(sweep_interval)
            for silo in self.silos:
                for activation in silo.idle_activations(max_age):
                    yield from self._collect(silo, activation)

    def _collect(self, silo: Silo, activation) -> typing.Generator:
        grain = activation.grain
        import inspect as _inspect
        hook = grain.on_deactivate()
        if _inspect.isgenerator(hook):
            yield from hook
        if grain.storage_name is not None:
            storage = self.storage(grain.storage_name)
            yield from storage.write(type(grain).__name__, grain.key,
                                     dict(grain.state))
        silo.deactivate(type(grain).__name__, grain.key)
        self.collections += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def total_activations(self) -> int:
        return sum(silo.activation_count for silo in self.silos)

    def utilisation(self) -> dict[str, float]:
        return {silo.name: silo.cpu.utilisation() for silo in self.silos}
