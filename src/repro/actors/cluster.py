"""The cluster: silos, placement, routing and grain references.

Membership is dynamic.  :meth:`Cluster.add_silo` grows the cluster at
runtime (existing grains whose placement moved are handed off to the
new owner), :meth:`Cluster.drain_silo` retires a silo gracefully
(storage-backed state persisted, activations deactivated, placement
updated first so no new work arrives) and :meth:`Cluster.crash_silo`
fail-stops one: queued messages are re-placed onto surviving silos,
mid-execution calls fail with ``SiloUnavailable`` and volatile grain
state is discarded — the next activation re-reads storage or, for
non-persistent grains, starts empty (counted as a state-loss anomaly).

Routing tolerates membership churn: every message snapshots the
placement epoch when it is sent; if the ring changed while the message
was on the wire, or the target silo died, delivery re-places the
message (paying another network hop) up to a bounded number of
attempts before failing the caller's promise.
"""

from __future__ import annotations

import dataclasses
import inspect
import typing

from repro.actors.errors import (
    MessageDropped,
    NoLiveSilos,
    SiloUnavailable,
    UnknownGrainType,
)
from repro.actors.grain import Grain, GrainRef
from repro.actors.placement import ConsistentHashPlacement, GrainDirectory
from repro.actors.silo import Message, Silo, SiloState
from repro.actors.storage import GrainStorage, MemoryGrainStorage
from repro.broker import Broker
from repro.cow import clone as cow_clone

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment, Event


@dataclasses.dataclass
class ClusterConfig:
    """Deployment and cost-model parameters for an actor cluster.

    Latencies are one-way; a call pays the latency twice (request and
    reply).  ``drop_probability`` injects message loss, which the
    eventually-consistent implementation does not recover from — the
    mechanism behind the paper's atomicity-violation observations.
    """

    silos: int = 4
    cores_per_silo: int = 4
    local_latency: float = 0.00005
    remote_latency: float = 0.0004
    remote_jitter: float = 0.0002
    drop_probability: float = 0.0
    #: Delivery attempts per message before the caller sees
    #: ``SiloUnavailable`` (first send + rerouting hops).
    max_delivery_attempts: int = 4
    #: Poll interval of drain/migration sweeps waiting for activations
    #: to go quiet.
    handoff_poll: float = 0.001
    #: Time between a silo crash and the membership view evicting it
    #: (Orleans-style failure detection).  Until eviction the ring
    #: still routes to the dead silo and callers see unavailability —
    #: the outage window the fault scenarios measure.  Drains are
    #: coordinated and skip this; 0 evicts crashes instantly too.
    failure_detection_delay: float = 1.0
    #: Working-set budget: max resident activations per silo.  None
    #: (the default) keeps the historical grow-forever behaviour.
    #: Under a budget, a periodic sweep deactivates least-recently-used
    #: quiet grains above the limit: storage-backed state persists to
    #: its own provider, volatile pageable state to the pager store;
    #: re-activation transparently re-reads it.
    activation_limit: int | None = None
    #: Sweep interval of the working-set eviction loop.
    working_set_sweep: float = 0.05


@dataclasses.dataclass
class MembershipStats:
    """Counters for membership churn and its fallout."""

    joins: int = 0
    drains: int = 0
    crashes: int = 0
    #: Activations handed off (drain or post-join rebalance).
    migrations: int = 0
    #: Messages re-placed after a stale ring or dead target.
    reroutes: int = 0
    #: Calls failed with SiloUnavailable (crash mid-execution, retry
    #: budget exhausted, or an empty ring).
    unavailable_failures: int = 0
    #: Non-persistent activations whose state was destroyed: discarded
    #: by a crash, or orphaned by a handoff with no surviving owner
    #: (the measurable anomaly of the fault scenarios).
    state_loss_events: int = 0
    #: Non-persistent activations live-migrated with their in-memory
    #: state intact (drain or post-join rebalancing).
    volatile_handoffs: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class WorkingSetStats:
    """Counters of the activation working-set control loop."""

    #: Activations ever created (eager ingest + on-demand + reloads).
    activations: int = 0
    #: Activations deactivated by the working-set sweep.
    evictions: int = 0
    #: Re-activations that restored paged volatile state.
    reloads: int = 0
    #: High-water mark of concurrently resident activations.
    peak_resident: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class _WorkingSetPager:
    """Holds paged-out volatile grain state (models external storage).

    Payloads are detached clones on both sides of the boundary, so a
    resident grain and its paged copy can never alias.  Latencies mirror
    the default grain storage: eviction pays a write, re-activation a
    read — the cost that makes an activation budget a real trade-off.
    """

    def __init__(self, env: "Environment",
                 read_latency: float = 0.0002,
                 write_latency: float = 0.0004) -> None:
        self.env = env
        self.read_latency = read_latency
        self.write_latency = write_latency
        self._data: dict[tuple[str, str], dict] = {}
        self.reads = 0
        self.writes = 0

    def write(self, ident: tuple[str, str], payload: dict):
        yield self.env.timeout(self.write_latency)
        self.writes += 1
        self._data[ident] = cow_clone(payload)

    def read(self, ident: tuple[str, str]):
        yield self.env.timeout(self.read_latency)
        self.reads += 1
        payload = self._data.pop(ident, None)
        return cow_clone(payload) if payload is not None else None

    def store(self, ident: tuple[str, str], payload: dict) -> None:
        """Zero-latency overwrite — refreshes a snapshot whose write
        latency was already paid by :meth:`write`."""
        self._data[ident] = cow_clone(payload)

    def peek(self, ident: tuple[str, str]) -> dict | None:
        """Zero-latency audit access (detached copy)."""
        payload = self._data.get(ident)
        return cow_clone(payload) if payload is not None else None

    def idents(self) -> list[tuple[str, str]]:
        return list(self._data)


class Cluster:
    """A set of silos with consistent-hash placement and a broker."""

    def __init__(self, env: "Environment",
                 config: ClusterConfig | None = None,
                 broker: Broker | None = None) -> None:
        self.env = env
        self.config = config or ClusterConfig()
        self.broker = broker or Broker(env)
        self.placement = ConsistentHashPlacement()
        self.directory = GrainDirectory()
        # Steady-state routing cache: (type_name, key) -> live silo.
        # Cleared wholesale when the placement epoch moves; invalidated
        # per-grain by the directory on register/unregister/drop (grain
        # adoption after migration re-registers *without* an epoch
        # bump, so the per-key hook is load-bearing, not an optimisation).
        self._route_cache: dict[tuple[str, str], Silo] = {}
        self._route_cache_epoch = 0
        _cache = self._route_cache
        self.directory.on_change = lambda ident: _cache.pop(ident, None)
        #: Cache telemetry for the kernel micro-benchmark (kept out of
        #: membership_stats so reported payloads are unchanged).
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self.silos: list[Silo] = []
        self._silo_ids = 0
        for _ in range(self.config.silos):
            self._new_silo()
        self._storages: dict[str, GrainStorage] = {
            "default": MemoryGrainStorage(env, "default")}
        self._grain_types: dict[str, type[Grain]] = {}
        self._rng = env.rng("cluster")
        self.messages_sent = 0
        self.messages_dropped = 0
        self.collections = 0
        self.membership = MembershipStats()
        #: Timeline of membership events: (time, event, silo name).
        self.membership_log: list[tuple[float, str, str]] = []
        #: Working-set accounting (always counted; kept out of
        #: membership_stats so reported payloads are unchanged).
        self.working_set = WorkingSetStats()
        self.pager = _WorkingSetPager(env)
        #: Idents with a live paged copy awaiting re-activation.  Only
        #: successful evictions register here, so an eviction aborted
        #: mid-write can never resurrect a stale snapshot.
        self._paged: set[tuple[str, str]] = set()
        self._activation_limit: int | None = None
        if self.config.activation_limit is not None:
            self.enable_working_set_limit(self.config.activation_limit,
                                          self.config.working_set_sweep)

    # ------------------------------------------------------------------
    # registries
    # ------------------------------------------------------------------
    def register_grain(self, grain_type: type[Grain]) -> type[Grain]:
        """Register a grain type (enables string-based references)."""
        self._grain_types[grain_type.__name__] = grain_type
        return grain_type

    def register_storage(self, name: str, storage: GrainStorage) -> None:
        self._storages[name] = storage

    def storage(self, name: str | None) -> GrainStorage:
        storage = self._storages.get(name or "default")
        if storage is None:
            raise KeyError(f"no storage provider {name!r}")
        return storage

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def live_silos(self) -> list[Silo]:
        return [silo for silo in self.silos if silo.alive]

    def silo_named(self, name: str) -> Silo:
        for silo in self.silos:
            if silo.name == name:
                return silo
        raise KeyError(f"no silo named {name!r}")

    def _resolve_silo(self, silo: Silo | str) -> Silo:
        return self.silo_named(silo) if isinstance(silo, str) else silo

    def _new_silo(self, name: str | None = None) -> Silo:
        silo = Silo(self.env, name or f"silo-{self._silo_ids}",
                    self.config.cores_per_silo)
        self._silo_ids += 1
        silo.directory = self.directory
        self.silos.append(silo)
        self.placement.add_silo(silo)
        return silo

    def _log_membership(self, event: str, silo: Silo) -> None:
        self.membership_log.append((self.env.now, event, silo.name))

    def add_silo(self, name: str | None = None) -> Silo:
        """Join a new silo to the cluster (scale-out).

        The placement ring is updated immediately, so new calls route
        to the new silo at once; activations the ring reassigned are
        handed off in the background (storage-backed state persisted,
        then deactivated so the next call re-activates on the new
        owner).
        """
        silo = self._new_silo(name)
        self.membership.joins += 1
        self._log_membership("join", silo)
        self.env.process(self._rebalance_for(silo),
                         name=f"rebalance:{silo.name}")
        return silo

    def drain_silo(self, silo: Silo | str) -> "Event":
        """Gracefully retire a silo (scale-in / rolling restart).

        Returns the drain process: it completes when every activation
        has finished its queued work and been deactivated (persisting
        storage-backed state), leaving the silo ``stopped``.
        """
        silo = self._resolve_silo(silo)
        if not silo.alive:
            raise SiloUnavailable(f"{silo.name} is already {silo.state}")
        silo.state = SiloState.DRAINING
        self.placement.remove_silo(silo)
        self.membership.drains += 1
        self._log_membership("drain", silo)
        return self.env.process(self._drain(silo),
                                name=f"drain:{silo.name}")

    def crash_silo(self, silo: Silo | str) -> Silo:
        """Fail-stop a silo, discarding all volatile state.

        The silo stops processing immediately: mid-execution calls fail
        with ``SiloUnavailable`` and non-persistent activations lose
        their state (counted in ``membership.state_loss_events``).  The
        membership view only evicts the silo after
        ``failure_detection_delay``; until then the ring keeps routing
        to it and callers see unavailability — the outage window.  At
        eviction, messages that were queued (never started, so no
        side effects) are re-placed onto the surviving owners.
        """
        silo = self._resolve_silo(silo)
        if not silo.alive:
            raise SiloUnavailable(f"{silo.name} is already {silo.state}")
        queued, discarded = silo.crash()
        self.membership.crashes += 1
        for activation in discarded:
            if activation.grain.storage_name is None:
                self.membership.state_loss_events += 1
            if activation.inflight:
                self.membership.unavailable_failures += \
                    len(activation.inflight)
        self._log_membership("crash", silo)
        if self.config.failure_detection_delay > 0:
            self.env.process(self._evict_after_detection(silo, queued),
                             name=f"detect:{silo.name}")
        else:
            self._evict(silo, queued)
        return silo

    def _evict_after_detection(self, silo: Silo, queued: list[Message]):
        yield self.env.timeout(self.config.failure_detection_delay)
        self._evict(silo, queued)

    def _evict(self, silo: Silo, queued: list[Message]) -> None:
        """Remove a crashed silo from the membership view and re-place
        the work that died queued on it."""
        if silo in self.placement.silos:
            self.placement.remove_silo(silo)
        self._log_membership("evicted", silo)
        for message in queued:
            if message.ref is None:
                # Activation-local timer tick: dies with its grain.
                if not message.promise.triggered:
                    message.promise.fail(SiloUnavailable(
                        f"{silo.name} crashed"))
                continue
            if message.promise.triggered:
                continue  # the caller already saw a failure
            message.attempts += 1
            self.membership.reroutes += 1
            self._route(typing.cast(GrainRef, message.ref), message,
                        caller_silo=None)

    def _drain(self, silo: Silo):
        """Hand off every activation, then mark the silo stopped."""
        while silo.activations:
            progressed = False
            for activation in list(silo.activations.values()):
                if activation.mailbox or activation.busy:
                    continue
                yield from self._handoff(silo, activation)
                progressed = True
            if silo.activations and not progressed:
                yield self.env.timeout(self.config.handoff_poll)
        silo.state = SiloState.STOPPED
        self._log_membership("stopped", silo)

    def _rebalance_for(self, new_silo: Silo):
        """Hand off activations the ring reassigned to ``new_silo``.

        Routing pins existing activations to their directory entry, so
        until a grain is handed off its traffic keeps flowing to the
        old owner — migration never races message delivery.  Patience
        per grain is bounded: a grain that refuses to go quiet simply
        stays pinned where it is (suboptimal placement, not an error).
        """
        for silo in self.silos:
            if silo is new_silo or not silo.alive:
                continue
            moved = [activation
                     for (type_name, key), activation
                     in silo.activations.items()
                     if self._owner_of(type_name, key) is new_silo]
            for activation in moved:
                for _ in range(50):
                    if (activation.collected or not silo.alive
                            or not new_silo.accepting_activations):
                        break
                    if activation.mailbox or activation.busy:
                        yield self.env.timeout(self.config.handoff_poll)
                        continue
                    yield from self._handoff(silo, activation)

    def _handoff(self, silo: Silo, activation) -> typing.Generator:
        """Move one quiet activation off ``silo``.

        Storage-backed grains persist and deactivate — the next call
        re-activates from storage on the new owner (the authoritative
        copy).  Volatile grains are *live-migrated*: the grain object
        moves to the new owner with its in-memory state, paying one
        state-transfer hop; only when no live owner exists is the
        state genuinely lost.
        """
        if activation.collected:
            return
        grain = activation.grain
        if grain.storage_name is not None:
            done = yield from self._deactivate(silo, activation)
            if done:
                self.membership.migrations += 1
            return
        type_name = type(grain).__name__
        target = self._owner_of(type_name, grain.key)
        if target is None or target is silo or not \
                target.accepting_activations:
            done = yield from self._deactivate(silo, activation)
            if done:
                self.membership.state_loss_events += 1
            return
        # One network hop for the state transfer, then an atomic (in
        # simulated time) deactivate-and-adopt so no message can land
        # between the two owners.
        yield self.env.timeout(self.config.remote_latency)
        if (activation.collected or activation.mailbox or activation.busy
                or not target.accepting_activations):
            # The grain got busy — or the target itself crashed or
            # started draining — while the transfer was in flight.
            # Leave the activation in place: the caller's sweep
            # retries and recomputes the owner.
            return
        silo.deactivate(type_name, grain.key)
        target.adopt(self, grain)
        self.membership.migrations += 1
        self.membership.volatile_handoffs += 1

    def _owner_of(self, type_name: str, key: str) -> Silo | None:
        try:
            return self.placement.place(type_name, key)
        except NoLiveSilos:
            return None

    def membership_stats(self) -> dict:
        """Membership counters plus the current cluster shape."""
        return dict(self.membership.as_dict(),
                    epoch=self.placement.epoch,
                    live_silos=len(self.live_silos),
                    total_silos=len(self.silos))

    def control_stats(self) -> dict:
        """The uniform control-plane counters (``platform_stats()``
        fields, see :mod:`repro.control.signals`).  ``silos_live``
        counts serving silos — a draining silo still serves until its
        handoff completes, so it is live *and* counted draining."""
        return {
            "silos_live": len(self.live_silos),
            "silos_draining": sum(1 for silo in self.silos
                                  if silo.state == SiloState.DRAINING),
            "silos_total": len(self.silos),
            "resident": self.total_activations,
            "paged": len(self._paged),
            "messages": self.messages_sent,
        }

    # ------------------------------------------------------------------
    # references and routing
    # ------------------------------------------------------------------
    def grain_ref(self, grain_type: type[Grain] | str,
                  key: str) -> GrainRef:
        if isinstance(grain_type, str):
            resolved = self._grain_types.get(grain_type)
            if resolved is None:
                raise UnknownGrainType(grain_type)
            grain_type = resolved
        return GrainRef(self, grain_type, key)

    def silo_for(self, ref: GrainRef) -> Silo:
        """The ring owner of ``ref`` (where a *new* activation goes)."""
        return self.placement.place(ref.type_name, ref.key)

    def _target_for(self, ref: GrainRef) -> Silo:
        """Where to route a message: the directory pins routing to the
        live activation (Orleans grain-directory semantics); the ring
        decides only for grains without one.  May raise NoLiveSilos.

        The answer is cached per (grain, placement epoch): within an
        epoch it can only change through a directory mutation, and the
        directory's ``on_change`` hook evicts the affected grain.  The
        liveness re-check on hits means a dying silo is never served
        from cache in a state the uncached path would not also return.
        """
        ident = (ref.type_name, ref.key)
        epoch = self.placement.epoch
        cache = self._route_cache
        if epoch != self._route_cache_epoch:
            cache.clear()
            self._route_cache_epoch = epoch
        cached = cache.get(ident)
        if cached is not None and cached.alive:
            self.route_cache_hits += 1
            return cached
        self.route_cache_misses += 1
        entry = self.directory.lookup(ref.type_name, ref.key)
        if entry is not None and entry.silo.alive:
            cache[ident] = entry.silo
            return entry.silo
        target = self.placement.place(ref.type_name, ref.key)
        cache[ident] = target
        return target

    def activation_of(self, ref: GrainRef):
        """The live activation behind ``ref`` (creating it if needed)."""
        silo = self._target_for(ref)
        return silo.activation_for(self, ref.grain_type, ref.key)

    def grain_instance(self, ref: GrainRef) -> Grain:
        """Direct access to the grain object (tests and audits only)."""
        return self.activation_of(ref).grain

    def _latency(self, caller_silo: Silo | None, target: Silo) -> float:
        if caller_silo is target:
            return self.config.local_latency
        return (self.config.remote_latency
                + self._rng.random() * self.config.remote_jitter)

    def dispatch(self, ref: GrainRef, method: str, args: tuple,
                 kwargs: dict, txn=None,
                 caller_silo: Silo | None = None) -> "Event":
        """Route a grain call; returns the promise for its result."""
        promise = self.env.event()
        message = Message(method=method, args=args, kwargs=kwargs,
                          promise=promise, txn=txn, reply_latency=0.0,
                          ref=ref, attempts=1)
        self._route(ref, message, caller_silo)
        return promise

    def _route(self, ref: GrainRef, message: Message,
               caller_silo: Silo | None) -> None:
        """Send (or re-send) ``message`` toward the grain's owner.

        Failures never escape as exceptions: an empty ring or an
        exhausted retry budget fails the message's promise, so the
        caller observes a failed call, not a crashed driver.
        """
        try:
            target = self._target_for(ref)
        except NoLiveSilos as error:
            self.membership.unavailable_failures += 1
            self._fail_after(message,
                             self.config.remote_latency, error)
            return
        latency = self._latency(caller_silo, target)
        self.messages_sent += 1
        if (self.config.drop_probability > 0.0
                and self._rng.random() < self.config.drop_probability):
            self.messages_dropped += 1
            failure = MessageDropped(
                f"{ref.type_name}/{ref.key}.{message.method} "
                f"lost in transit")
            self._fail_after(message, latency, failure)
            return
        message.reply_latency = latency

        # A raw pooled-event callback, not a process: message transit
        # has no body to suspend, and a full Process costs two extra
        # events per hop on the hottest path in the simulator.
        def deliver(_event, ref=ref, message=message, target=target):
            self._deliver(ref, message, target)

        self.env.call_after(latency, deliver)

    def _deliver(self, ref: GrainRef, message: Message,
                 target: Silo) -> None:
        """Hand the message to ``target`` — or re-place it if the
        cluster moved underneath the send."""
        ident = (ref.type_name, ref.key)
        hosted = ident in target.activations
        # Re-derive the route on arrival: the grain may have migrated
        # (directory moved) or the target may have died/drained while
        # the message was on the wire.
        stale = False
        if not hosted:
            try:
                stale = self._target_for(ref) is not target
            except NoLiveSilos:
                stale = True
        if target.alive and not stale and (
                hosted or target.accepting_activations):
            target.messages_received += 1
            activation = target.activation_for(self, ref.grain_type,
                                               ref.key)
            activation.enqueue(message)
            return
        # Dead, draining-without-activation, or stale target: re-place.
        if message.attempts >= self.config.max_delivery_attempts:
            self.membership.unavailable_failures += 1
            if not message.promise.triggered:
                message.promise.fail(SiloUnavailable(
                    f"{ref.type_name}/{ref.key}.{message.method} "
                    f"undeliverable after {message.attempts} attempts"))
            return
        message.attempts += 1
        self.membership.reroutes += 1
        self._route(ref, message, caller_silo=None)

    def _fail_after(self, message: Message, delay: float,
                    error: BaseException) -> None:
        def fail_later(_event):
            if not message.promise.triggered:
                message.promise.fail(error)
        self.env.call_after(delay, fail_later)

    def track_oneway(self, promise: "Event") -> None:
        """Silence failures of fire-and-forget calls (they are 'lost')."""
        def swallow(event):
            if not event.ok:
                event.defuse()
        if promise.callbacks is not None:
            promise.callbacks.append(swallow)

    # ------------------------------------------------------------------
    # idle activation collection (Orleans activation GC analogue)
    # ------------------------------------------------------------------
    def enable_idle_collection(self, max_age: float,
                               sweep_interval: float = 1.0) -> None:
        """Periodically deactivate grains idle longer than ``max_age``.

        State of storage-backed grains is persisted before collection;
        the next call to a collected grain transparently re-activates it
        (virtual-actor lifecycle transparency).
        """
        if max_age <= 0 or sweep_interval <= 0:
            raise ValueError("max_age and sweep_interval must be > 0")
        self.env.process(self._collection_loop(max_age, sweep_interval),
                         name="idle-collector")

    def _collection_loop(self, max_age: float, sweep_interval: float):
        while True:
            yield self.env.timeout(sweep_interval)
            for silo in self.silos:
                if silo.state != SiloState.RUNNING:
                    continue  # draining silos hand off their own grains
                for activation in silo.idle_activations(max_age):
                    yield from self._collect(silo, activation)

    def _collect(self, silo: Silo, activation) -> typing.Generator:
        done = yield from self._deactivate(silo, activation)
        if done:
            self.collections += 1

    def _deactivate(self, silo: Silo, activation) -> typing.Generator:
        """Run deactivation hooks, persist storage-backed state and
        drop the activation (shared by idle collection, drain and
        post-join rebalancing).  Returns True when the activation was
        actually dropped: a message that slips into the mailbox while
        the hooks/persist yield aborts the deactivation (it would be
        processed by a dead worker and its writes silently lost), and
        the caller's sweep simply retries once the grain is quiet —
        re-persisting, but never re-running ``on_deactivate``.
        """
        if activation.collected:
            return False
        grain = activation.grain
        if not activation.deactivate_hook_ran:
            hook = grain.on_deactivate()
            if inspect.isgenerator(hook):
                yield from hook
            activation.deactivate_hook_ran = True
        if grain.storage_name is not None:
            storage = self.storage(grain.storage_name)
            yield from storage.write(type(grain).__name__, grain.key,
                                     grain.state)
        if activation.collected or activation.mailbox or activation.busy:
            return False  # changed under the hooks; retried later
        silo.deactivate(type(grain).__name__, grain.key)
        return True

    # ------------------------------------------------------------------
    # working-set control (LRU deactivation under an activation budget)
    # ------------------------------------------------------------------
    def enable_working_set_limit(self, activation_limit: int,
                                 sweep_interval: float = 0.05) -> None:
        """Keep each silo at or below ``activation_limit`` residents.

        A periodic sweep deactivates least-recently-used quiet grains
        above the budget.  Storage-backed grains persist through their
        own provider (the existing deactivation path); volatile grains
        that declare ``paged_attrs`` page out to the pager store and
        are restored on re-activation.  Volatile grains that refuse to
        page (no ``paged_attrs``, or locks held) stay resident — the
        budget is a target, not a hard cap.
        """
        if activation_limit < 1:
            raise ValueError("activation_limit must be >= 1")
        if sweep_interval <= 0:
            raise ValueError("sweep_interval must be > 0")
        self._activation_limit = activation_limit
        self.env.process(
            self._working_set_loop(activation_limit, sweep_interval),
            name="working-set")

    @property
    def working_set_limited(self) -> bool:
        return self._activation_limit is not None

    def note_activation(self, silo: Silo) -> None:
        """Activation-creation bookkeeping (called by the silo)."""
        stats = self.working_set
        stats.activations += 1
        resident = self.total_activations
        if resident > stats.peak_resident:
            stats.peak_resident = resident

    def _working_set_loop(self, limit: int, sweep_interval: float):
        while True:
            yield self.env.timeout(sweep_interval)
            for silo in self.silos:
                if silo.state != SiloState.RUNNING:
                    continue  # draining silos hand off their own grains
                excess = silo.activation_count - limit
                if excess <= 0:
                    continue
                for activation in self._lru_victims(silo, excess):
                    yield from self._page_out_activation(silo, activation)

    def _lru_victims(self, silo: Silo, count: int) -> list:
        """The ``count`` least-recently-used quiet activations."""
        quiet = [activation for activation in silo.activations.values()
                 if not activation.mailbox and not activation.busy
                 and not activation.collected]
        quiet.sort(key=lambda activation: activation.last_activity)
        return quiet[:count]

    def _page_out_activation(self, silo: Silo,
                             activation) -> typing.Generator:
        """Evict one activation under the working-set budget.

        Storage-backed grains reuse the shared deactivation path.
        Volatile grains snapshot their ``paged_attrs``, pay the pager
        write, and only then deactivate; if the grain became busy while
        the write was in flight the eviction aborts and — crucially —
        the ident is never registered as paged, so the stale snapshot
        is unreachable and the sweep simply retries later.
        """
        if activation.collected:
            return False
        grain = activation.grain
        type_name = type(grain).__name__
        if grain.storage_name is not None:
            done = yield from self._deactivate(silo, activation)
            if done:
                self.working_set.evictions += 1
            return done
        paged = grain.page_out()
        if paged is None:
            return False  # not pageable; stays resident
        if not activation.deactivate_hook_ran:
            hook = grain.on_deactivate()
            if inspect.isgenerator(hook):
                yield from hook
            activation.deactivate_hook_ran = True
        ident = (type_name, grain.key)
        yield from self.pager.write(ident, paged)
        if activation.collected or activation.mailbox or activation.busy:
            return False  # got busy during the write; retried later
        # Work may have started AND finished inside the write latency
        # window, leaving the grain quiet but the snapshot stale —
        # re-snapshot before committing to the eviction.
        fresh = grain.page_out()
        if fresh is None:
            return False  # mid-transaction again; retried later
        if fresh != paged:
            self.pager.store(ident, fresh)
        silo.deactivate(type_name, grain.key)
        self._paged.add(ident)
        self.working_set.evictions += 1
        return True

    def page_in(self, grain: Grain) -> typing.Generator:
        """Restore paged volatile state at re-activation (process
        helper, called from ``Activation._start``)."""
        ident = (type(grain).__name__, grain.key)
        if ident not in self._paged:
            return
        self._paged.discard(ident)
        payload = yield from self.pager.read(ident)
        if payload is not None:
            grain.page_in(payload)
            self.working_set.reloads += 1

    def paged_states(self) -> dict[tuple[str, str], dict]:
        """Paged-out volatile state for audits (detached copies)."""
        return {ident: self.pager.peek(ident) for ident in self._paged}

    def working_set_stats(self) -> dict:
        """Working-set counters plus the current resident population."""
        return dict(self.working_set.as_dict(),
                    resident=self.total_activations,
                    paged=len(self._paged),
                    limit=self._activation_limit)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def total_activations(self) -> int:
        return sum(silo.activation_count for silo in self.silos)

    def utilisation(self) -> dict[str, float]:
        return {silo.name: silo.cpu.utilisation() for silo in self.silos}
