"""Asynchronous event broker with configurable delivery guarantees.

Microservices in Online Marketplace exchange data via asynchronous
events.  The paper's criteria distinguish *unordered* delivery from
*causally ordered* delivery (e.g. payment events must precede shipment
events of the same order).  This broker implements both, plus per-key
FIFO, so the criterion can be toggled per experiment.
"""

from repro.broker.messages import EventEnvelope
from repro.broker.topics import Broker, DeliveryMode, Subscription, Topic

__all__ = [
    "Broker",
    "DeliveryMode",
    "EventEnvelope",
    "Subscription",
    "Topic",
]
