"""Topics, subscriptions and the broker itself."""

from __future__ import annotations

import collections
import enum
import inspect
import typing

from repro.broker.messages import EventEnvelope

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Environment

Handler = typing.Callable[[EventEnvelope], object]


class DeliveryMode(enum.Enum):
    """Delivery guarantee offered to subscribers.

    UNORDERED
        Each event is delivered after an independently sampled latency;
        events may be reordered arbitrarily (the paper's baseline).
    FIFO
        Events with the same key are delivered to each subscriber in
        publish order.
    CAUSAL
        An event is delivered only after all events it causally depends
        on (its ``causal_deps``) have been delivered to that subscriber;
        same-key FIFO order is also preserved.
    """

    UNORDERED = "unordered"
    FIFO = "fifo"
    CAUSAL = "causal"


class Subscription:
    """One subscriber attached to a topic."""

    def __init__(self, env: "Environment", name: str, handler: Handler,
                 mode: DeliveryMode) -> None:
        self.env = env
        self.name = name
        self.handler = handler
        self.mode = mode
        self.delivered_sequences: set[int] = set()
        self.delivery_log: list[tuple[float, EventEnvelope]] = []
        # FIFO/CAUSAL state -------------------------------------------------
        self._key_queues: dict[str, collections.deque[EventEnvelope]] = (
            collections.defaultdict(collections.deque))
        self._key_busy: set[str] = set()
        self._causal_buffer: list[EventEnvelope] = []

    # ------------------------------------------------------------------
    def offer(self, envelope: EventEnvelope, latency: float) -> None:
        """Route ``envelope`` to this subscriber according to the mode."""
        if self.mode is DeliveryMode.UNORDERED:
            # Raw pooled-event callback: unordered delivery has no
            # process body to suspend (see Cluster._route).
            self.env.call_after(
                latency,
                lambda _event, envelope=envelope: self._invoke(envelope))
        else:
            queue = self._key_queues[envelope.key]
            queue.append(envelope)
            if envelope.key not in self._key_busy:
                self._key_busy.add(envelope.key)
                self.env.process(
                    self._drain_key(envelope.key, latency),
                    name=f"drain:{self.name}:{envelope.key}")

    def _drain_key(self, key: str, latency: float):
        queue = self._key_queues[key]
        while queue:
            envelope = queue[0]
            if self.mode is DeliveryMode.CAUSAL:
                missing = [dep for dep in envelope.causal_deps
                           if dep not in self.delivered_sequences]
                if missing:
                    # Park the head until dependencies arrive; re-check on
                    # every later delivery via _poke().
                    queue.popleft()
                    self._causal_buffer.append(envelope)
                    continue
            else:
                queue.popleft()
                yield self.env.timeout(latency)
                self._invoke(envelope)
                continue
            queue.popleft()
            yield self.env.timeout(latency)
            self._invoke(envelope)
        self._key_busy.discard(key)

    def _poke(self) -> None:
        """Re-examine buffered causal events after a new delivery."""
        if not self._causal_buffer:
            return
        ready = [envelope for envelope in self._causal_buffer
                 if all(dep in self.delivered_sequences
                        for dep in envelope.causal_deps)]
        for envelope in ready:
            self._causal_buffer.remove(envelope)
            self._invoke(envelope)

    def _invoke(self, envelope: EventEnvelope) -> None:
        self.delivered_sequences.add(envelope.sequence)
        self.delivery_log.append((self.env.now, envelope))
        result = self.handler(envelope)
        if inspect.isgenerator(result):
            self.env.process(result, name=f"handle:{self.name}")
        if self.mode is DeliveryMode.CAUSAL:
            self._poke()


class Topic:
    """A named event stream with zero or more subscribers."""

    def __init__(self, env: "Environment", name: str,
                 mode: DeliveryMode) -> None:
        self.env = env
        self.name = name
        self.mode = mode
        self.subscriptions: list[Subscription] = []
        self.publish_log: list[EventEnvelope] = []

    def subscribe(self, name: str, handler: Handler) -> Subscription:
        subscription = Subscription(self.env, name, handler, self.mode)
        self.subscriptions.append(subscription)
        return subscription

    def publish(self, envelope: EventEnvelope,
                latency_for: typing.Callable[[], float]) -> None:
        self.publish_log.append(envelope)
        for subscription in self.subscriptions:
            subscription.offer(envelope, latency_for())


class Broker:
    """Topic-based pub/sub with per-topic delivery guarantees.

    Parameters
    ----------
    env:
        Simulation environment.
    default_mode:
        Delivery mode applied to topics that are not configured
        explicitly via :meth:`configure_topic`.
    base_latency / jitter:
        Delivery latency is ``base_latency + U(0, jitter)`` sampled per
        (event, subscriber) pair.  A non-zero jitter is what allows
        UNORDERED mode to actually reorder events.
    """

    def __init__(self, env: "Environment",
                 default_mode: DeliveryMode = DeliveryMode.UNORDERED,
                 base_latency: float = 0.0005,
                 jitter: float = 0.0015) -> None:
        self.env = env
        self.default_mode = default_mode
        self.base_latency = base_latency
        self.jitter = jitter
        self._topics: dict[str, Topic] = {}
        self._modes: dict[str, DeliveryMode] = {}
        self._rng = env.rng("broker")

    def configure_topic(self, name: str, mode: DeliveryMode) -> None:
        """Pin ``name`` to a specific delivery mode (before first use)."""
        if name in self._topics:
            raise RuntimeError(f"topic {name!r} already instantiated")
        self._modes[name] = mode

    def topic(self, name: str) -> Topic:
        topic = self._topics.get(name)
        if topic is None:
            mode = self._modes.get(name, self.default_mode)
            topic = Topic(self.env, name, mode)
            self._topics[name] = topic
        return topic

    def subscribe(self, topic_name: str, subscriber_name: str,
                  handler: Handler) -> Subscription:
        """Attach ``handler`` to ``topic_name``."""
        return self.topic(topic_name).subscribe(subscriber_name, handler)

    def publish(self, topic_name: str, key: str, payload: object,
                causal_deps: typing.Iterable[int] = ()) -> EventEnvelope:
        """Publish ``payload`` and return its envelope (for dep tracking)."""
        envelope = EventEnvelope(
            topic=topic_name, key=key, payload=payload,
            publish_time=self.env.now,
            causal_deps=tuple(sorted(causal_deps)))
        self.topic(topic_name).publish(envelope, self._sample_latency)
        return envelope

    def _sample_latency(self) -> float:
        return self.base_latency + self._rng.random() * self.jitter

    # ------------------------------------------------------------------
    # introspection used by auditors
    # ------------------------------------------------------------------
    def deliveries(self, topic_name: str) -> list[
            tuple[str, float, EventEnvelope]]:
        """All (subscriber, time, envelope) deliveries on a topic."""
        topic = self._topics.get(topic_name)
        if topic is None:
            return []
        entries = []
        for subscription in topic.subscriptions:
            for when, envelope in subscription.delivery_log:
                entries.append((subscription.name, when, envelope))
        entries.sort(key=lambda item: (item[1], item[2].sequence))
        return entries

    @property
    def topics(self) -> dict[str, Topic]:
        return dict(self._topics)
