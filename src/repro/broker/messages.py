"""Event envelopes carried by the broker."""

from __future__ import annotations

import dataclasses
import itertools
import typing

_sequence = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class EventEnvelope:
    """A published event plus the metadata the broker needs to route it.

    Attributes
    ----------
    topic:
        The topic name the event was published to.
    key:
        Partition/ordering key (e.g. order id).  Events with the same key
        are FIFO-ordered under ``DeliveryMode.FIFO`` and causality is
        tracked per key under ``DeliveryMode.CAUSAL``.
    payload:
        The application event object.
    publish_time:
        Simulated time of publication.
    sequence:
        Global, monotonically increasing publication number (used for
        audit logs and deterministic tie-breaking).
    causal_deps:
        Sequence numbers of events that must be delivered to a subscriber
        before this one under causal delivery.
    """

    topic: str
    key: str
    payload: object
    publish_time: float
    sequence: int = dataclasses.field(
        default_factory=lambda: next(_sequence))
    causal_deps: tuple[int, ...] = ()

    def with_deps(self, deps: typing.Iterable[int]) -> "EventEnvelope":
        """Return a copy with additional causal dependencies recorded."""
        merged = tuple(sorted(set(self.causal_deps) | set(deps)))
        return dataclasses.replace(self, causal_deps=merged)
