"""`repro.control` — the control-plane API over all four stacks.

Read typed signals, issue typed membership actions, close the loop
with an SLO-driven autoscaler, and run catalogue scenarios through one
facade:

* :class:`RuntimeSignals` / :class:`PlatformStats` — the documented
  snapshot schemas (``signals.py``);
* :class:`AddSilo` / :class:`DrainSilo` / :class:`CrashSilo` — typed
  membership commands shared by fault schedules and the autoscaler
  (``actions.py``);
* :class:`ControlPlane` / :func:`control_plane_for` — the per-stack
  read/act surface (``plane.py``);
* :class:`Autoscaler` / :class:`AutoscalerConfig` / :class:`SLOTarget`
  — the controller (``autoscaler.py``);
* :func:`run_scenario` / :class:`ScenarioRun` — the one entry point
  for end-to-end scenario execution (``facade.py``).

``docs/elasticity.md`` covers the controller design and the elasticity
report computed from its samples.
"""

from repro.control.actions import (
    AddSilo,
    CallMethod,
    ControlAction,
    CrashSilo,
    DrainSilo,
    parse_action,
)
from repro.control.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    SLOTarget,
)
from repro.control.facade import ScenarioRun, run_scenario
from repro.control.plane import (
    ClusterControlPlane,
    ControlPlane,
    NullControlPlane,
    StatefunControlPlane,
    control_plane_for,
)
from repro.control.signals import (
    PLATFORM_SCHEMA,
    SIGNALS_SCHEMA,
    PlatformStats,
    RuntimeSignals,
    SignalWindow,
)

__all__ = [
    "PLATFORM_SCHEMA",
    "SIGNALS_SCHEMA",
    "AddSilo",
    "Autoscaler",
    "AutoscalerConfig",
    "CallMethod",
    "ClusterControlPlane",
    "ControlAction",
    "ControlPlane",
    "CrashSilo",
    "DrainSilo",
    "NullControlPlane",
    "PlatformStats",
    "RuntimeSignals",
    "ScenarioRun",
    "SignalWindow",
    "SLOTarget",
    "StatefunControlPlane",
    "control_plane_for",
    "parse_action",
    "run_scenario",
]
