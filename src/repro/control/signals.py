"""Typed runtime signals: the one schema every stack reports through.

Before the control plane each stack exposed its own ad-hoc
``runtime_stats()`` dict (four shapes, four key sets) and anything that
wanted a cross-platform signal — the autoscaler, the elasticity report,
a test — had to know all four.  This module defines the two typed
snapshots that replace those reads for control purposes:

:class:`PlatformStats`
    The *app-side* half: cluster shape (live/draining/total silos),
    working-set residency and substrate message counts.  Every
    implementation of :class:`~repro.apps.base.MarketplaceApp` returns
    one from ``platform_stats()`` with identical fields and types —
    ``stats_schema()`` is the documented contract and
    ``tests/test_control.py`` holds the four stacks to it.  The legacy
    ``runtime_stats()`` dicts are untouched (their shapes are baked
    into committed payloads); they are now the *extras*, not the API.

:class:`RuntimeSignals`
    The full control snapshot: platform stats plus the *driver-side*
    half — queue-delay percentiles over a sliding window, error rate,
    backlog and offered rate — assembled by a
    :class:`~repro.control.plane.ControlPlane`.  This is what the
    :class:`~repro.control.autoscaler.Autoscaler` samples once per
    simulated second.

:class:`SignalWindow` is the sliding-window aggregator the open-loop
driver feeds on every dispatch/completion; it never touches an RNG, so
tapping it is invisible to run determinism.
"""

from __future__ import annotations

import collections
import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class PlatformStats:
    """App-side control counters, uniform across the four stacks.

    ``silos`` means whatever the platform scales by: Orleans silos on
    the actor stacks, partition workers on the dataflow stack.
    ``resident``/``paged`` are the working-set split (hot activations
    vs. state paged to storage); ``messages`` counts substrate messages
    handled (sent on the actor stacks, processed on the dataflow one).
    """

    silos_live: int
    silos_draining: int
    silos_total: int
    resident: int
    paged: int
    messages: int

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


#: The documented ``platform_stats()`` schema: field name -> type.
#: ``MarketplaceApp.stats_schema()`` returns this and the contract test
#: asserts every stack's snapshot matches it exactly.
PLATFORM_SCHEMA: dict[str, type] = {
    field.name: field.type if isinstance(field.type, type) else int
    for field in dataclasses.fields(PlatformStats)
}


@dataclasses.dataclass(frozen=True)
class RuntimeSignals:
    """One control-plane snapshot: driver-side load + app-side shape.

    Queue-delay figures are seconds over the plane's sliding window
    (arrival -> dispatch, the open-loop driver's queueing delay);
    ``error_rate`` is failed+aborted over all completions in the same
    window; ``arrival_rate`` is offered arrivals/second over it.
    """

    time: float
    queue_delay_p95: float
    queue_delay_mean: float
    queue_samples: int
    error_rate: float
    errors: int
    completions: int
    arrival_rate: float
    queue_length: int
    in_flight: int
    silos_live: int
    silos_draining: int
    silos_total: int
    resident: int
    paged: int
    messages: int

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


#: The documented ``RuntimeSignals`` schema: field name -> type.
SIGNALS_SCHEMA: dict[str, type] = {
    "time": float,
    "queue_delay_p95": float,
    "queue_delay_mean": float,
    "queue_samples": int,
    "error_rate": float,
    "errors": int,
    "completions": int,
    "arrival_rate": float,
    "queue_length": int,
    "in_flight": int,
    "silos_live": int,
    "silos_draining": int,
    "silos_total": int,
    "resident": int,
    "paged": int,
    "messages": int,
}


class SignalWindow:
    """Sliding-window aggregation of driver-side load observations.

    The open-loop driver feeds it on every arrival, dispatch and
    completion (warm-up included — the controller must see load the
    metrics window deliberately discards).  Observations older than
    ``window`` seconds are pruned on read.  Pure bookkeeping: no RNG,
    no simulated time, so the tap cannot perturb a run.
    """

    def __init__(self, window: float = 3.0) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        self.window = window
        self._delays: collections.deque[tuple[float, float]] = \
            collections.deque()
        self._outcomes: collections.deque[tuple[float, bool]] = \
            collections.deque()
        self._arrivals: collections.deque[float] = collections.deque()

    # ------------------------------------------------------------------
    # feeds (called by the open-loop driver)
    # ------------------------------------------------------------------
    def observe_arrival(self, at: float) -> None:
        self._arrivals.append(at)

    def observe_queue_delay(self, at: float, delay: float) -> None:
        self._delays.append((at, delay))

    def observe_outcome(self, at: float, status: str) -> None:
        # "rejected" is a business outcome (e.g. product unavailable),
        # not a platform error; the availability timeline counts only
        # failed/aborted and the error-rate signal matches it.
        self._outcomes.append((at, status in ("failed", "aborted")))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _prune(self, now: float) -> None:
        horizon = now - self.window
        for series in (self._delays, self._outcomes):
            while series and series[0][0] < horizon:
                series.popleft()
        while self._arrivals and self._arrivals[0] < horizon:
            self._arrivals.popleft()

    def queue_delay_percentile(self, now: float, q: float) -> float:
        self._prune(now)
        if not self._delays:
            return 0.0
        ordered = sorted(delay for _, delay in self._delays)
        rank = max(1, math.ceil(q / 100 * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self, now: float) -> dict:
        """The driver-side half of a :class:`RuntimeSignals`."""
        self._prune(now)
        delays = [delay for _, delay in self._delays]
        errors = sum(1 for _, failed in self._outcomes if failed)
        completions = len(self._outcomes)
        span = min(self.window, now) or self.window
        ordered = sorted(delays)
        p95 = 0.0
        if ordered:
            p95 = ordered[max(1, math.ceil(0.95 * len(ordered))) - 1]
        return {
            "queue_delay_p95": p95,
            "queue_delay_mean": (sum(delays) / len(delays)
                                 if delays else 0.0),
            "queue_samples": len(delays),
            "error_rate": errors / completions if completions else 0.0,
            "errors": errors,
            "completions": completions,
            "arrival_rate": len(self._arrivals) / span,
        }
