"""Typed control actions: the commands that change cluster shape.

Historically the only way to change membership mid-run was a
:class:`~repro.runtime.faults.FaultEvent` carrying a stringly-typed
``action`` (a method name) and ``target``.  That shape is kept as a thin
parsing shim — :func:`parse_action` turns it into one of the typed
commands below — and both entry points (scheduled faults and the
autoscaler) now dispatch through :func:`execute`, so a single audited
record format covers every membership change in a run.

Each action names the verb it invokes on a *scaling host* — an actor
cluster (``add_silo``/``drain_silo``/``crash_silo``) or the dataflow
runtime (which exposes the same verbs for stop-the-world rescale, see
:meth:`repro.dataflow.runtime.StatefunRuntime.add_silo`).  The record
dicts produced here carry the historical ``FaultSchedule.log`` fields
(``time``/``action``/``target``/``applied``/``detail``) plus a
``source`` field saying who issued the command (``"fault"`` or
``"autoscaler"``).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ControlAction:
    """Base class for typed membership commands.

    ``target`` is an optional silo name; actions that grow the cluster
    ignore it, actions that shrink it treat ``None`` as "let the host
    pick a victim" (the control plane resolves that deterministically
    to the newest live silo before dispatch).
    """

    target: str | None = None

    #: Name of the verb — also the method invoked on the scaling host.
    kind = "noop"

    def describe(self) -> str:
        if self.target is None:
            return self.kind
        return f"{self.kind}({self.target})"


@dataclasses.dataclass(frozen=True)
class AddSilo(ControlAction):
    """Bring one silo (or dataflow partition worker) into the cluster."""

    kind = "add_silo"


@dataclasses.dataclass(frozen=True)
class DrainSilo(ControlAction):
    """Gracefully retire one silo, migrating its state first."""

    kind = "drain_silo"


@dataclasses.dataclass(frozen=True)
class CrashSilo(ControlAction):
    """Fail one silo without warning (fault injection)."""

    kind = "crash_silo"


@dataclasses.dataclass(frozen=True)
class CallMethod(ControlAction):
    """Fallback for fault actions outside the membership vocabulary.

    ``FaultSchedule`` stays generic at the kernel level — a schedule can
    drive any object with matching method names (tests do).  Unknown
    verbs parse into this shim, which dispatches exactly like the
    historical ``getattr`` path.
    """

    method: str = ""

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.method


_TYPED_ACTIONS = {
    AddSilo.kind: AddSilo,
    DrainSilo.kind: DrainSilo,
    CrashSilo.kind: CrashSilo,
}


def parse_action(action: str, target: str | None = None) -> ControlAction:
    """Parse the stringly ``action``/``target`` form into a command."""
    cls = _TYPED_ACTIONS.get(action)
    if cls is not None:
        return cls(target=target)
    return CallMethod(target=target, method=action)


def execute(host: object, action: ControlAction, now: float,
            source: str = "fault") -> dict:
    """Invoke ``action`` on ``host`` and return one audited record.

    Mirrors the historical ``FaultSchedule._fire`` semantics exactly: a
    missing host or verb is recorded as skipped, an exception from the
    verb is recorded (not raised — a schedule may legitimately race a
    crash against a drain), and the verb's return value is captured as
    ``repr`` in ``detail`` (deterministic — silo and process reprs
    carry no ids or addresses).  Actor-cluster hosts resolve string
    targets to silos themselves.
    """
    record = {
        "time": now,
        "action": action.kind,
        "target": action.target,
        "applied": False,
        "detail": "",
        "source": source,
    }
    verb = getattr(host, action.kind, None) if host is not None else None
    if host is None or not callable(verb):
        record["detail"] = "target does not support this action"
        return record
    try:
        if action.target is None:
            result = verb()
        else:
            result = verb(action.target)
    except Exception as error:  # noqa: BLE001 - logged, not fatal
        record["detail"] = f"{type(error).__name__}: {error}"
        return record
    record["applied"] = True
    record["detail"] = repr(result)
    return record
