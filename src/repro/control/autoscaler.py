"""SLO-driven autoscaling: closing the loop from signals to actions.

The :class:`Autoscaler` is a controller process that samples its
control plane once per ``interval`` simulated seconds, compares the
:class:`~repro.control.signals.RuntimeSignals` snapshot against an
:class:`SLOTarget`, and issues typed
:class:`~repro.control.actions.AddSilo` /
:class:`~repro.control.actions.DrainSilo` commands.  Scaling cost is
not modelled here — it *is* the platform's own mechanism: live grain
migration and placement-epoch churn on the actor stacks, a
stop-the-world rescale pause on the dataflow stack.

Stability comes from four guards (``docs/elasticity.md`` discusses the
tuning):

* **hysteresis** — scale-up triggers when p95 queue delay (or error
  rate) *breaches* the SLO for ``breach_ticks`` consecutive samples;
  scale-down only when delay sits *below* ``scale_down_fraction`` of
  the bound (and the backlog is empty) for ``clear_ticks`` samples.
  The dead band between the two thresholds prevents flapping.
* **cooldown** — after any applied action, scale-up waits
  ``cooldown_up`` and scale-down ``cooldown_down`` seconds, giving the
  migration it just caused time to show up in the signals.
* **bounds** — the live silo count stays within
  [``min_silos``, ``max_silos``].
* **drain exclusion** — no decision fires while a drain is still in
  progress; a half-migrated cluster gives misleading signals.

The controller is deliberately RNG-free: its decisions are a pure
function of the sampled signals, so a run with an autoscaler is as
reproducible as one without (same seed -> identical action log).

Every sample is kept in :attr:`Autoscaler.samples` — the per-second
capacity/breach series that ``analysis/elasticity.py`` turns into
scaling-lag and over-/under-provisioning reports.  With
``enabled=False`` the controller observes and samples but never acts:
that is the fixed-provisioning baseline the elasticity benchmark
compares against.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.control.actions import AddSilo, ControlAction, DrainSilo

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.control.plane import ControlPlane
    from repro.control.signals import RuntimeSignals
    from repro.runtime import Environment
    from repro.runtime.process import Process


@dataclasses.dataclass(frozen=True)
class SLOTarget:
    """The service-level objective the controller defends.

    Both bounds are on *window* aggregates (the plane's sliding
    window): p95 queue delay in seconds — arrival-to-dispatch, the
    client-visible queueing a saturated platform causes — and the
    failed+aborted fraction of completions.
    """

    queue_delay_p95: float = 0.050
    error_rate: float = 0.01

    def __post_init__(self) -> None:
        if self.queue_delay_p95 <= 0:
            raise ValueError("queue-delay bound must be > 0")
        if not 0 <= self.error_rate <= 1:
            raise ValueError("error-rate bound must be in [0, 1]")

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class AutoscalerConfig:
    """Controller tuning: SLO, sampling cadence, stability guards."""

    slo: SLOTarget = SLOTarget()
    #: Simulated seconds between signal samples.
    interval: float = 1.0
    #: Sliding-window width for the signal aggregates.
    window: float = 3.0
    min_silos: int = 1
    max_silos: int = 8
    #: Consecutive breaching samples before a scale-up.
    breach_ticks: int = 2
    #: Consecutive clear samples before a scale-down.
    clear_ticks: int = 3
    #: "Clear" means p95 below this fraction of the SLO bound — the
    #: hysteresis dead band between scale-up and scale-down triggers.
    scale_down_fraction: float = 0.3
    cooldown_up: float = 2.0
    cooldown_down: float = 4.0
    #: Capacity model for the elasticity report's ideal curve:
    #: arrivals/second one silo is provisioned for (None = derive from
    #: the run's mean rate and starting shape).
    rate_per_silo: float | None = None
    #: With False the controller samples but never acts — the
    #: fixed-provisioning baseline.
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.window <= 0:
            raise ValueError("interval and window must be > 0")
        if not 1 <= self.min_silos <= self.max_silos:
            raise ValueError("need 1 <= min_silos <= max_silos")
        if self.breach_ticks < 1 or self.clear_ticks < 1:
            raise ValueError("tick thresholds must be >= 1")
        if not 0 < self.scale_down_fraction < 1:
            raise ValueError("scale_down_fraction must be in (0, 1)")
        if self.cooldown_up < 0 or self.cooldown_down < 0:
            raise ValueError("cooldowns must be >= 0")

    def time_scaled(self, factor: float) -> "AutoscalerConfig":
        """A copy with schedule-time knobs stretched by ``factor``.

        Sampling cadence, window and cooldowns live on the experiment
        clock, so ``--duration-scale`` stretches them with the run; the
        SLO bounds are service-time quantities and stay fixed.
        """
        if factor <= 0:
            raise ValueError("time scale factor must be > 0")
        return dataclasses.replace(
            self, interval=self.interval * factor,
            window=self.window * factor,
            cooldown_up=self.cooldown_up * factor,
            cooldown_down=self.cooldown_down * factor)


class Autoscaler:
    """The controller process: sample, decide, act, audit."""

    def __init__(self, plane: "ControlPlane",
                 config: AutoscalerConfig | None = None) -> None:
        self.plane = plane
        self.config = config or AutoscalerConfig()
        #: One dict per sample: the capacity/breach time series.
        self.samples: list[dict] = []
        self._breach_streak = 0
        self._clear_streak = 0
        self._last_up = -float("inf")
        self._last_down = -float("inf")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def install(self, env: "Environment",
                until: float | None = None) -> "Process":
        """Start sampling every ``interval`` seconds until ``until``."""
        return env.process(self._run(env, until), name="autoscaler")

    def _run(self, env: "Environment", until: float | None):
        interval = self.config.interval
        while until is None or env.now + interval <= until + 1e-9:
            yield env.timeout(interval)
            self.tick(env.now)

    # ------------------------------------------------------------------
    # one control cycle
    # ------------------------------------------------------------------
    def tick(self, now: float) -> dict:
        """Sample signals, maybe act; returns the sample record."""
        signals = self.plane.signals()
        breach, clear = self._classify(signals)
        decision = self._decide(now, signals, breach, clear)
        applied = False
        if decision is not None and self.config.enabled:
            record = self.plane.execute(decision, source="autoscaler")
            applied = record["applied"]
            if applied:
                if isinstance(decision, AddSilo):
                    self._last_up = now
                else:
                    self._last_down = now
                self._breach_streak = 0
                self._clear_streak = 0
        sample = {
            "time": round(now, 6),
            "p95_ms": round(signals.queue_delay_p95 * 1000, 3),
            "error_rate": round(signals.error_rate, 4),
            "arrival_rate": round(signals.arrival_rate, 3),
            "queue": signals.queue_length,
            "silos": signals.silos_live,
            "draining": signals.silos_draining,
            "breach": breach,
            "action": (decision.kind
                       if decision is not None and self.config.enabled
                       else None),
            "applied": applied,
        }
        self.samples.append(sample)
        return sample

    def _classify(self, signals: "RuntimeSignals") -> tuple[bool, bool]:
        slo = self.config.slo
        breach = (signals.queue_delay_p95 > slo.queue_delay_p95
                  or signals.error_rate > slo.error_rate)
        clear = (signals.queue_delay_p95
                 <= slo.queue_delay_p95 * self.config.scale_down_fraction
                 and signals.error_rate <= slo.error_rate
                 and signals.queue_length == 0)
        self._breach_streak = self._breach_streak + 1 if breach else 0
        self._clear_streak = self._clear_streak + 1 if clear else 0
        return breach, clear

    def _decide(self, now: float, signals: "RuntimeSignals",
                breach: bool, clear: bool) -> ControlAction | None:
        cfg = self.config
        if signals.silos_draining > 0:
            return None
        if (self._breach_streak >= cfg.breach_ticks
                and signals.silos_live < cfg.max_silos
                and now - self._last_up >= cfg.cooldown_up):
            return AddSilo()
        if (self._clear_streak >= cfg.clear_ticks
                and signals.silos_live > cfg.min_silos
                and now - max(self._last_up, self._last_down)
                >= cfg.cooldown_down):
            return DrainSilo()
        return None
