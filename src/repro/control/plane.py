"""The control plane: one read/act surface over every platform stack.

A :class:`ControlPlane` pairs the two halves of reactive operations:

* **read** — :meth:`ControlPlane.signals` assembles a typed
  :class:`~repro.control.signals.RuntimeSignals` snapshot from the
  driver-side :class:`~repro.control.signals.SignalWindow` (queue-delay
  p95, error rate, offered rate) and the app-side
  ``platform_stats()`` contract (live/draining silos, working set);

* **act** — :meth:`ControlPlane.execute` dispatches typed
  :class:`~repro.control.actions.ControlAction` commands to the
  platform's scaling host and appends the audited record to
  :attr:`ControlPlane.action_log`.  Scheduled faults route their
  firings through the same log (see
  :meth:`repro.runtime.faults.FaultSchedule.install`), so one run's
  membership history — autoscaler decisions and injected faults — reads
  as a single ordered sequence.

:func:`control_plane_for` picks the right plane for an app: the actor
stacks scale their :class:`~repro.actors.cluster.ActorCluster`, the
dataflow stack rescales its
:class:`~repro.dataflow.runtime.StatefunRuntime`, and apps without a
scalable runtime (test stubs) get a :class:`NullControlPlane` whose
actions are recorded as skipped — exactly how fault schedules have
always degraded on such apps.
"""

from __future__ import annotations

import typing

from repro.control.actions import ControlAction, DrainSilo, execute
from repro.control.signals import RuntimeSignals, SignalWindow

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.base import MarketplaceApp
    from repro.core.driver.open_loop import OpenLoopDriver
    from repro.runtime import Environment


class ControlPlane:
    """Read signals from, and issue membership actions to, one app."""

    def __init__(self, env: "Environment", app: "MarketplaceApp",
                 driver: "OpenLoopDriver | None" = None,
                 window: SignalWindow | None = None) -> None:
        self.env = env
        self.app = app
        self.driver = driver
        self.window = window or SignalWindow()
        #: Audited membership actions, in firing order, all sources.
        self.action_log: list[dict] = []

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def signals(self) -> RuntimeSignals:
        """A typed snapshot of load and cluster shape, right now."""
        now = self.env.now
        load = self.window.snapshot(now)
        platform = self.app.platform_stats()
        return RuntimeSignals(
            time=now,
            queue_length=(self.driver.queue_length
                          if self.driver is not None else 0),
            in_flight=(self.driver.in_flight
                       if self.driver is not None else 0),
            silos_live=platform.silos_live,
            silos_draining=platform.silos_draining,
            silos_total=platform.silos_total,
            resident=platform.resident,
            paged=platform.paged,
            messages=platform.messages,
            **load,
        )

    # ------------------------------------------------------------------
    # act side
    # ------------------------------------------------------------------
    @property
    def scaling_host(self) -> object | None:
        """The object whose ``add_silo``/``drain_silo`` verbs scale the
        platform; ``None`` when the app cannot scale."""
        return None

    def resolve(self, action: ControlAction) -> ControlAction:
        """Pin an open-ended action to a concrete target (if needed)."""
        return action

    def execute(self, action: ControlAction,
                source: str = "api") -> dict:
        """Dispatch one command, append and return its audit record."""
        record = execute(self.scaling_host, self.resolve(action),
                         self.env.now, source=source)
        self.action_log.append(record)
        return record

    def record(self, record: dict) -> None:
        """Append an externally produced record (fault firings)."""
        self.action_log.append(record)


class ClusterControlPlane(ControlPlane):
    """Control plane over an actor cluster (the three Orleans stacks)."""

    @property
    def scaling_host(self) -> object:
        return self.app.cluster

    def resolve(self, action: ControlAction) -> ControlAction:
        if isinstance(action, DrainSilo) and action.target is None:
            running = [silo for silo in self.app.cluster.silos
                       if silo.accepting_activations]
            if running:
                # Newest joiner drains first: silos join in list order,
                # so scale-in unwinds scale-out deterministically.
                return DrainSilo(target=running[-1].name)
        return action


class StatefunControlPlane(ControlPlane):
    """Control plane over the dataflow runtime (statefun stack).

    ``add_silo``/``drain_silo`` map to stop-the-world rescales of the
    partition-worker set; ``crash_silo`` is not in the dataflow
    vocabulary (failures go through checkpoint recovery instead), so a
    scheduled crash records as skipped — unchanged fault semantics.
    """

    @property
    def scaling_host(self) -> object:
        return self.app.runtime


class NullControlPlane(ControlPlane):
    """Plane for apps with no scalable runtime: reads work (platform
    stats fall back to the static configured shape), actions record as
    skipped."""


def control_plane_for(env: "Environment", app: "MarketplaceApp",
                      driver: "OpenLoopDriver | None" = None,
                      window: SignalWindow | None = None) -> ControlPlane:
    """Build the right control plane for ``app``."""
    if getattr(app, "cluster", None) is not None:
        return ClusterControlPlane(env, app, driver, window)
    runtime = getattr(app, "runtime", None)
    if runtime is not None and hasattr(runtime, "add_silo"):
        return StatefunControlPlane(env, app, driver, window)
    return NullControlPlane(env, app, driver, window)
