"""One entry point for running a named scenario end to end.

Before this facade, three call sites each hand-assembled the same
sequence — seed an :class:`~repro.runtime.Environment`, build the app
with the scenario-pinned :class:`~repro.apps.base.AppConfig`, build the
driver, run, audit — in slightly divergent ways: the scenario CLI,
``matrix.run_cell``, and every test that wanted a scenario run.
:func:`run_scenario` is now that sequence, exactly once; the CLI and
matrix call it, and direct driver construction is deprecated for
scenario runs (see ``docs/scenarios.md``).  Determinism is preserved
by construction: the facade performs the identical steps in the
identical order, so a cell run through it is byte-identical to one
assembled by hand.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.apps.base import MarketplaceApp
    from repro.control.autoscaler import Autoscaler
    from repro.control.plane import ControlPlane
    from repro.core.criteria import CriteriaReport
    from repro.core.driver.metrics import RunMetrics
    from repro.core.driver.open_loop import OpenLoopDriver
    from repro.core.scenarios import Scenario
    from repro.runtime import Environment


@dataclasses.dataclass
class ScenarioRun:
    """Everything one scenario execution produced, in one place."""

    scenario: "Scenario"
    env: "Environment"
    app: "MarketplaceApp"
    driver: "OpenLoopDriver"
    metrics: "RunMetrics"
    report: "CriteriaReport"

    @property
    def control(self) -> "ControlPlane | None":
        """The run's control plane (present when the scenario carries
        an autoscaler, or faults routed through a plane)."""
        return self.driver.control

    @property
    def autoscaler(self) -> "Autoscaler | None":
        return self.driver.autoscaler


def run_scenario(scenario: "Scenario | str",
                 app: str | typing.Callable = "orleans-eventual",
                 *,
                 seed: int = 42,
                 rate_scale: float = 1.0,
                 duration_scale: float = 1.0,
                 silos: int | None = None,
                 cores: int | None = None,
                 drop_probability: float | None = None,
                 approval_rate: float | None = None,
                 activation_limit: int | None = None,
                 audit: bool = True) -> ScenarioRun:
    """Run one named scenario against one app, end to end.

    ``scenario`` is a catalogue name or a :class:`Scenario`; ``app`` is
    a registry name or any ``(env, AppConfig) -> app`` callable (tests
    pass stub classes).  The keyword overrides mirror the CLI flags:
    ``None`` means "use the scenario's pinned value" — a fault scenario
    may pin the cluster shape it was designed for; explicit arguments
    still win.
    """
    # Imported here, not at module level: the scenario catalogue and
    # the app stacks both import `repro.control` themselves, so the
    # facade resolves them at call time to keep the package acyclic.
    from repro.apps import ALL_APPS, AppConfig
    from repro.core.criteria import audit_app
    from repro.core.scenarios import get_scenario
    from repro.runtime import Environment

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    factory = ALL_APPS[app] if isinstance(app, str) else app
    env = Environment(seed=seed)
    config = AppConfig(
        silos=silos if silos is not None else scenario.effective_silos,
        cores_per_silo=(cores if cores is not None
                        else scenario.effective_cores),
        approval_rate=(approval_rate if approval_rate is not None
                       else scenario.approval_rate),
        drop_probability=(drop_probability
                          if drop_probability is not None
                          else scenario.drop_probability),
        activation_limit=(activation_limit
                          if activation_limit is not None
                          else scenario.activation_limit))
    built = factory(env, config)
    driver = scenario.build_driver(
        env, built, rate_scale=rate_scale,
        duration_scale=duration_scale, data_seed=seed)
    metrics = driver.run()
    report = audit_app(built, driver) if audit else None
    return ScenarioRun(scenario=scenario, env=env, app=built,
                       driver=driver, metrics=metrics, report=report)
