"""Domain entities of Online Marketplace.

Entities are dataclasses with ``as_dict`` converters; grain and function
state holds the dict form (plain data survives storage providers and
checkpoints), while the driver and the data generator work with the
typed form.  All money amounts are integer cents.
"""

from __future__ import annotations

import dataclasses
import typing


def product_key(seller_id: int, product_id: int) -> str:
    """The canonical cross-service identity of a product."""
    return f"{seller_id}/{product_id}"


@dataclasses.dataclass
class Seller:
    seller_id: int
    name: str
    city: str = ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class Customer:
    customer_id: int
    name: str
    city: str = ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class Product:
    product_id: int
    seller_id: int
    name: str
    category: str
    price_cents: int
    version: int = 1
    active: bool = True

    @property
    def key(self) -> str:
        return product_key(self.seller_id, self.product_id)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class StockItem:
    product_id: int
    seller_id: int
    qty_available: int
    qty_reserved: int = 0
    version: int = 1
    active: bool = True

    @property
    def key(self) -> str:
        return product_key(self.seller_id, self.product_id)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class CartItem:
    """An item in a customer's cart.

    ``unit_price_cents`` and ``price_version`` are the replicated
    product data whose freshness the replication criterion audits.
    """

    product_id: int
    seller_id: int
    quantity: int
    unit_price_cents: int
    price_version: int = 1
    voucher_cents: int = 0

    @property
    def key(self) -> str:
        return product_key(self.seller_id, self.product_id)

    @property
    def subtotal_cents(self) -> int:
        return max(self.quantity * self.unit_price_cents
                   - self.voucher_cents, 0)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: typing.Mapping) -> "CartItem":
        return cls(**dict(data))
