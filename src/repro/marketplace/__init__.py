"""The Online Marketplace application domain.

Platform-independent definitions of the benchmark's eight microservices:
entities, application events, and the business logic of Cart, Product,
Stock, Order, Payment, Shipment, Customer and Seller.  The logic lives
in pure state-transition functions over plain-dict state, so the four
platform implementations in :mod:`repro.apps` (Orleans eventual /
transactional / Statefun / customized) share one implementation of the
business rules and differ only in data management semantics.
"""

from repro.marketplace import events, logic
from repro.marketplace.constants import (
    OrderStatus,
    PackageStatus,
    PaymentMethod,
    PaymentStatus,
    Topics,
)
from repro.marketplace.entities import (
    CartItem,
    Customer,
    Product,
    Seller,
    StockItem,
    product_key,
)

__all__ = [
    "CartItem",
    "Customer",
    "OrderStatus",
    "PackageStatus",
    "PaymentMethod",
    "PaymentStatus",
    "Product",
    "Seller",
    "StockItem",
    "Topics",
    "events",
    "logic",
    "product_key",
]
