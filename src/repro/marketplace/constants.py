"""Status codes, payment methods and event-topic names.

Statuses are plain strings (not enums) because grain/function state is
stored as plain dicts that cross storage and checkpoint boundaries;
string constants survive deep copies and snapshots without surprises.
"""

from __future__ import annotations


class OrderStatus:
    CREATED = "created"
    INVOICED = "invoiced"
    PAYMENT_PROCESSED = "payment_processed"
    PAYMENT_FAILED = "payment_failed"
    READY_FOR_SHIPMENT = "ready_for_shipment"
    IN_TRANSIT = "in_transit"
    DELIVERED = "delivered"
    COMPLETED = "completed"
    CANCELED = "canceled"

    #: Statuses counted by the seller dashboard as "in progress".
    IN_PROGRESS = (INVOICED, PAYMENT_PROCESSED, READY_FOR_SHIPMENT,
                   IN_TRANSIT)


class PaymentStatus:
    REQUESTED = "requested"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class PaymentMethod:
    CREDIT_CARD = "credit_card"
    DEBIT_CARD = "debit_card"
    BOLETO = "boleto"
    VOUCHER = "voucher"

    ALL = (CREDIT_CARD, DEBIT_CARD, BOLETO, VOUCHER)


class PackageStatus:
    CREATED = "created"
    SHIPPED = "shipped"
    DELIVERED = "delivered"


class Topics:
    """Broker topic names used by the event-driven implementations."""

    PRICE_UPDATES = "product.price-updates"
    PRODUCT_DELETES = "product.deletes"
    ORDER_EVENTS = "order.events"
    PAYMENT_EVENTS = "payment.events"
    SHIPMENT_EVENTS = "shipment.events"
    STOCK_EVENTS = "stock.events"
