"""Status codes, payment methods and event-topic names.

Statuses are plain strings (not enums) because grain/function state is
stored as plain dicts that cross storage and checkpoint boundaries;
string constants survive deep copies and snapshots without surprises.
"""

from __future__ import annotations


class OrderStatus:
    CREATED = "created"
    INVOICED = "invoiced"
    PAYMENT_PROCESSED = "payment_processed"
    PAYMENT_FAILED = "payment_failed"
    READY_FOR_SHIPMENT = "ready_for_shipment"
    IN_TRANSIT = "in_transit"
    DELIVERED = "delivered"
    COMPLETED = "completed"
    CANCELED = "canceled"
    RETURN_REQUESTED = "return_requested"
    RETURN_IN_TRANSIT = "return_in_transit"
    RETURNED = "returned"
    REJECTED = "rejected"
    DEFECT = "defect"

    # IN_PROGRESS, TRANSITIONS and FINAL_STATUSES are attached below,
    # derived from the transition table so they cannot drift from it.


#: Legal order-status transitions.  Every status write goes through
#: :func:`repro.marketplace.logic.lifecycle.advance`, which consults
#: this table; a status with no successors is terminal.
TRANSITIONS: dict[str, tuple[str, ...]] = {
    OrderStatus.CREATED: (OrderStatus.INVOICED, OrderStatus.CANCELED),
    OrderStatus.INVOICED: (OrderStatus.PAYMENT_PROCESSED,
                           OrderStatus.PAYMENT_FAILED,
                           OrderStatus.CANCELED),
    OrderStatus.PAYMENT_PROCESSED: (OrderStatus.READY_FOR_SHIPMENT,
                                    OrderStatus.IN_TRANSIT),
    OrderStatus.READY_FOR_SHIPMENT: (OrderStatus.IN_TRANSIT,),
    OrderStatus.IN_TRANSIT: (OrderStatus.DELIVERED, OrderStatus.COMPLETED,
                             OrderStatus.REJECTED),
    OrderStatus.DELIVERED: (OrderStatus.COMPLETED,),
    OrderStatus.COMPLETED: (OrderStatus.RETURN_REQUESTED,),
    OrderStatus.RETURN_REQUESTED: (OrderStatus.RETURN_IN_TRANSIT,
                                   OrderStatus.DEFECT),
    OrderStatus.RETURN_IN_TRANSIT: (OrderStatus.RETURNED,),
    OrderStatus.PAYMENT_FAILED: (OrderStatus.CANCELED,),
    OrderStatus.CANCELED: (),
    OrderStatus.RETURNED: (),
    OrderStatus.REJECTED: (),
    OrderStatus.DEFECT: (),
}

#: Terminal statuses: no outgoing transitions in the table.
FINAL_STATUSES = frozenset(
    status for status, successors in TRANSITIONS.items() if not successors)


def _reachable(start: str) -> frozenset:
    """All statuses reachable from ``start`` (inclusive)."""
    seen = {start}
    frontier = [start]
    while frontier:
        for successor in TRANSITIONS[frontier.pop()]:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return frozenset(seen)


#: Derived "in progress" set: invoiced (or later) and still able to
#: reach COMPLETED.  Declaration order of the table keeps it stable.
OrderStatus.IN_PROGRESS = tuple(
    status for status in TRANSITIONS
    if status in _reachable(OrderStatus.INVOICED)
    and status != OrderStatus.COMPLETED
    and OrderStatus.COMPLETED in _reachable(status))

OrderStatus.TRANSITIONS = TRANSITIONS
OrderStatus.FINAL_STATUSES = FINAL_STATUSES


class PaymentStatus:
    REQUESTED = "requested"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    REFUNDED = "refunded"


class PaymentMethod:
    CREDIT_CARD = "credit_card"
    DEBIT_CARD = "debit_card"
    BOLETO = "boleto"
    VOUCHER = "voucher"

    ALL = (CREDIT_CARD, DEBIT_CARD, BOLETO, VOUCHER)


class PackageStatus:
    CREATED = "created"
    SHIPPED = "shipped"
    DELIVERED = "delivered"


class Topics:
    """Broker topic names used by the event-driven implementations."""

    PRICE_UPDATES = "product.price-updates"
    PRODUCT_DELETES = "product.deletes"
    ORDER_EVENTS = "order.events"
    PAYMENT_EVENTS = "payment.events"
    SHIPMENT_EVENTS = "shipment.events"
    STOCK_EVENTS = "stock.events"
