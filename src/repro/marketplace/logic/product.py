"""Product service logic: the authoritative product catalogue.

The product service is the *source of truth* for price and existence;
carts and stock hold replicas.  Every mutation bumps the version so
replicas (and auditors) can order updates.
"""

from __future__ import annotations


def new_product(product_id: int, seller_id: int, name: str,
                category: str, price_cents: int) -> dict:
    if price_cents < 0:
        raise ValueError("price must be >= 0")
    return {"product_id": product_id, "seller_id": seller_id,
            "name": name, "category": category,
            "price_cents": price_cents, "version": 1, "active": True}


def update_price(state: dict, price_cents: int) -> dict:
    """Set a new price; bumps the version."""
    if price_cents < 0:
        raise ValueError("price must be >= 0")
    if not state["active"]:
        raise ValueError("cannot update a deleted product")
    return {**state, "price_cents": price_cents,
            "version": state["version"] + 1}


def delete(state: dict) -> dict:
    """Logically delete the product; bumps the version."""
    if not state["active"]:
        raise ValueError("product already deleted")
    return {**state, "active": False, "version": state["version"] + 1}
