"""Order lifecycle state machine shared by all four platforms.

Every order-status write in the marketplace goes through
:func:`advance`, which consults the legal-transition table in
:mod:`repro.marketplace.constants` (``TRANSITIONS``).  Centralising the
table means the happy path, the compensation sagas (returns, refunds,
payment-failure aborts) and the audits in :mod:`repro.core.criteria`
all agree on which hops are legal — and the derived sets
(``OrderStatus.IN_PROGRESS``, ``FINAL_STATUSES``) can never drift from
the statuses actually written.

Orders carry their full status trail in ``order["history"]`` so a
post-hoc audit (or the lifecycle property test) can replay every hop.
"""

from __future__ import annotations

import zlib

from repro.marketplace.constants import (
    FINAL_STATUSES,
    TRANSITIONS,
    OrderStatus,
)

#: Fraction of returns that turn out defective (refund, no restock).
DEFECT_RATE = 0.1


class IllegalTransition(Exception):
    """An order-status hop not present in ``TRANSITIONS``."""

    def __init__(self, order_id: str | None, current: str, to: str):
        self.order_id = order_id
        self.current = current
        self.to = to
        super().__init__(
            f"order {order_id!r}: illegal transition {current!r} -> {to!r}")


def can_advance(current: str, to: str) -> bool:
    """True when ``current -> to`` is a legal hop."""
    return to in TRANSITIONS.get(current, ())


def is_final(status: str) -> bool:
    return status in FINAL_STATUSES


def advance(order: dict, to: str, now: float) -> dict:
    """Move an order to ``to``; raises :class:`IllegalTransition`.

    Returns a new order dict with the status, ``updated_at`` and the
    appended ``history`` trail; the input dict is left untouched.
    """
    current = order["status"]
    if not can_advance(current, to):
        raise IllegalTransition(order.get("order_id"), current, to)
    history = list(order.get("history") or (current,))
    history.append(to)
    return {**order, "status": to, "updated_at": now, "history": history}


def disposition(order_id: str, defect_rate: float = DEFECT_RATE) -> str:
    """Deterministic outcome of a return request for one order.

    Hashes the order id (like payment authorisation does) so every
    platform agrees on which returns turn out defective: the
    cross-platform comparison must not be perturbed by randomness.
    """
    digest = zlib.crc32(f"{order_id}/return".encode()) % 10_000
    return (OrderStatus.DEFECT if digest < defect_rate * 10_000
            else OrderStatus.RETURNED)


def return_hops(final: str) -> tuple[str, ...]:
    """The status trail of a return saga ending in ``final``."""
    if final == OrderStatus.DEFECT:
        return (OrderStatus.RETURN_REQUESTED, OrderStatus.DEFECT)
    if final == OrderStatus.RETURNED:
        return (OrderStatus.RETURN_REQUESTED, OrderStatus.RETURN_IN_TRANSIT,
                OrderStatus.RETURNED)
    raise ValueError(f"not a return outcome: {final!r}")
