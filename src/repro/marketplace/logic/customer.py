"""Customer service logic: profile data and running statistics."""

from __future__ import annotations


def new_customer(customer_id: int, name: str = "", city: str = "") -> dict:
    return {"customer_id": customer_id, "name": name, "city": city,
            "orders_placed": 0, "payments_succeeded": 0,
            "payments_failed": 0, "deliveries": 0, "spent_cents": 0,
            "refunds": 0}


def record_order_placed(state: dict) -> dict:
    return {**state, "orders_placed": state["orders_placed"] + 1}


def record_payment(state: dict, amount_cents: int, approved: bool) -> dict:
    if approved:
        return {**state,
                "payments_succeeded": state["payments_succeeded"] + 1,
                "spent_cents": state["spent_cents"] + amount_cents}
    return {**state, "payments_failed": state["payments_failed"] + 1}


def record_delivery(state: dict) -> dict:
    return {**state, "deliveries": state["deliveries"] + 1}


def record_refund(state: dict, amount_cents: int) -> dict:
    """Reverse a previously recorded successful payment."""
    return {**state, "refunds": state.get("refunds", 0) + 1,
            "spent_cents": state["spent_cents"] - amount_cents}
