"""Cart service logic: item management and checkout assembly.

The cart holds *replicated* product data (price and version).  Price
updates and product deletions arrive as events; how stale the replicas
may be is exactly the replication criterion the benchmark audits.
"""

from __future__ import annotations

import typing

OPEN = "open"
CHECKING_OUT = "checking_out"


def new_cart(customer_id: int) -> dict:
    """Initial cart state for a customer."""
    return {"customer_id": customer_id, "status": OPEN, "items": {},
            "checkouts": 0}


def add_item(state: dict, item: typing.Mapping) -> dict:
    """Add (or merge) an item; returns the new cart state."""
    if state["status"] != OPEN:
        raise ValueError("cart is checking out; cannot add items")
    items = dict(state["items"])
    key = f"{item['seller_id']}/{item['product_id']}"
    existing = items.get(key)
    if existing is not None:
        merged = dict(existing)
        merged["quantity"] += item["quantity"]
        items[key] = merged
    else:
        items[key] = dict(item)
    return {**state, "items": items}


def remove_item(state: dict, key: str) -> dict:
    """Remove the item under ``key`` (seller/product); no-op if absent."""
    if state["status"] != OPEN:
        raise ValueError("cart is checking out; cannot remove items")
    items = dict(state["items"])
    items.pop(key, None)
    return {**state, "items": items}


def apply_price_update(state: dict, key: str, price_cents: int,
                       version: int) -> tuple[dict, bool]:
    """Apply a replicated price update to the cart.

    Returns (new state, applied?).  Stale updates (version not newer
    than the replica's) are ignored — last-writer-wins per product.
    """
    items = state["items"]
    item = items.get(key)
    if item is None or item.get("price_version", 0) >= version:
        return state, False
    new_items = dict(items)
    new_item = dict(item)
    new_item["unit_price_cents"] = price_cents
    new_item["price_version"] = version
    new_items[key] = new_item
    return {**state, "items": new_items}, True


def apply_product_delete(state: dict, key: str) -> tuple[dict, bool]:
    """Remove a deleted product's item from the cart (replicated)."""
    if key not in state["items"]:
        return state, False
    items = dict(state["items"])
    items.pop(key)
    return {**state, "items": items}, True


def seal_for_checkout(state: dict) -> tuple[dict, list[dict]]:
    """Freeze the cart for checkout; returns (new state, items list).

    An empty cart cannot be checked out.  The returned items are the
    checkout's transaction input; the cart is cleared and reopened.
    """
    if state["status"] != OPEN:
        raise ValueError("cart already checking out")
    items = [dict(item) for item in state["items"].values()]
    if not items:
        raise ValueError("cannot check out an empty cart")
    new_state = {**state, "items": {}, "status": OPEN,
                 "checkouts": state.get("checkouts", 0) + 1}
    return new_state, items


def item_count(state: dict) -> int:
    return len(state["items"])


def total_cents(state: dict) -> int:
    """Current cart total under the replicated prices."""
    total = 0
    for item in state["items"].values():
        subtotal = (item["quantity"] * item["unit_price_cents"]
                    - item.get("voucher_cents", 0))
        total += max(subtotal, 0)
    return total
