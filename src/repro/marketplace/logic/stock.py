"""Stock service logic: reservation protocol over inventory items.

Checkout reserves stock first, then either confirms (decrementing the
physical quantity) after payment succeeds or cancels after it fails.
The integrity criterion — stock items must always refer to existing
products — is auditable because deletion marks items inactive.
"""

from __future__ import annotations


def new_item(product_id: int, seller_id: int, qty_available: int) -> dict:
    return {"product_id": product_id, "seller_id": seller_id,
            "qty_available": qty_available, "qty_reserved": 0,
            "version": 1, "active": True}


def reserve(state: dict, quantity: int) -> tuple[dict, bool]:
    """Try to reserve ``quantity`` units; returns (new state, ok)."""
    if quantity <= 0:
        raise ValueError(f"reservation quantity must be > 0, got {quantity}")
    if not state.get("active", True):
        return state, False
    free = state["qty_available"] - state["qty_reserved"]
    if free < quantity:
        return state, False
    return {**state, "qty_reserved": state["qty_reserved"] + quantity}, True


def confirm_reservation(state: dict, quantity: int) -> dict:
    """Turn a reservation into a real decrement (payment succeeded)."""
    if state["qty_reserved"] < quantity:
        raise ValueError(
            f"confirming {quantity} but only {state['qty_reserved']} "
            f"reserved")
    return {**state,
            "qty_available": state["qty_available"] - quantity,
            "qty_reserved": state["qty_reserved"] - quantity}


def cancel_reservation(state: dict, quantity: int) -> dict:
    """Release a reservation (payment failed or order canceled)."""
    return {**state,
            "qty_reserved": max(state["qty_reserved"] - quantity, 0)}


def restock(state: dict, quantity: int) -> dict:
    if quantity < 0:
        raise ValueError("restock quantity must be >= 0")
    return {**state, "qty_available": state["qty_available"] + quantity}


def deactivate(state: dict, version: int) -> dict:
    """Mark the item inactive because its product was deleted."""
    return {**state, "active": False, "version": version}


def is_consistent(state: dict) -> bool:
    """Invariant: reservations never exceed availability, never negative."""
    return (state["qty_available"] >= 0
            and 0 <= state["qty_reserved"] <= state["qty_available"])
