"""External-order ingestion: the idempotent multi-platform front door.

Marketplaces ingest orders from external sales channels (Wildberries,
Ozon, ...).  Channels deliver at-least-once, so the same external order
arrives more than once — concurrently on retry storms.  The dedup
registry is keyed on ``(platform, shop_id, ext_order_no)``; a key is
registered exactly once and maps to the internal order id created for
it.  Registry partitions are sharded per ``(platform, shop_id)`` so a
single grain/function owns each key and can serialise duplicates.

Whether registration and order creation are atomic is a *platform*
property: the transactional stacks do both in one ACID transaction,
the eventual stack registers first and creates the order with
at-least-once retries — the gap is what the C6 exactly-once audit
measures (duplicate internal orders, orphaned registrations).
"""

from __future__ import annotations


def shard_key(platform: str, shop_id: int) -> str:
    """Registry partition key: one shard per sales channel + shop."""
    return f"{platform}/{shop_id}"


def dedup_key(platform: str, shop_id: int, ext_order_no: str) -> str:
    """The exactly-once identity of one external order submission."""
    return f"{platform}/{shop_id}/{ext_order_no}"


def new_registry(shard: str) -> dict:
    """State of one ingestion-registry partition."""
    return {"shard": shard, "entries": {}, "next_seq": 1}


def lookup(state: dict, key: str) -> str | None:
    """The internal order id registered for ``key``, if any."""
    return state["entries"].get(key)


def register(state: dict, key: str) -> tuple[dict, str, bool]:
    """Claim ``key``; returns (state, internal order id, created?).

    A fresh key mints a deterministic internal order id from the shard
    sequence; a known key returns the originally assigned id untouched
    — the idempotent path.
    """
    existing = state["entries"].get(key)
    if existing is not None:
        return state, existing, False
    sequence = state["next_seq"]
    order_id = f"x{state['shard'].replace('/', '.')}-{sequence:05d}"
    entries = dict(state["entries"])
    entries[key] = order_id
    return ({**state, "entries": entries, "next_seq": sequence + 1},
            order_id, True)


def registered_keys(state: dict) -> dict:
    """key -> internal order id mapping of one partition (a copy)."""
    return dict(state["entries"])
