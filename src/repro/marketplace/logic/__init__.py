"""Pure business logic of the eight microservices.

Every function here is a state transition over plain dicts: it receives
the current state (and inputs), returns the new state (and outputs),
and never touches the simulation, storage or network.  The platform
implementations in :mod:`repro.apps` wire these transitions onto grains,
transactional grains and stateful functions; data management behaviour
(atomicity, replication, ordering) differs per platform, business rules
do not.
"""

from repro.marketplace.logic import (  # noqa: F401
    cart,
    customer,
    ingestion,
    lifecycle,
    order,
    payment,
    product,
    seller,
    shipment,
    stock,
)

__all__ = ["cart", "customer", "ingestion", "lifecycle", "order", "payment",
           "product", "seller", "shipment", "stock"]
