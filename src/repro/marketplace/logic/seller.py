"""Seller service logic: the seller dashboard's materialised view.

The dashboard consists of two queries: (1) the financial amount of
orders in progress by the seller, and (2) the tuples used to compute
that amount.  The consistency criterion requires both to reflect the
same snapshot of the application state.  In the event-driven
implementations this view is maintained incrementally from order and
payment events — which is what makes the two reads able to diverge.
"""

from __future__ import annotations

from repro.cow import peek, scan_values
from repro.marketplace.constants import OrderStatus


def new_seller(seller_id: int, name: str = "", city: str = "") -> dict:
    return {"seller_id": seller_id, "name": name, "city": city,
            "entries": {}, "deliveries": 0, "revenue_cents": 0,
            "returns": 0}


def seller_share_cents(order: dict, seller_id: int) -> int:
    """The part of an order's total attributable to one seller."""
    share = 0
    for item in order["items"]:
        if item["seller_id"] == seller_id:
            subtotal = (item["quantity"] * item["unit_price_cents"]
                        - item.get("voucher_cents", 0))
            share += max(subtotal, 0)
    return share


def upsert_entry(state: dict, order: dict) -> dict:
    """Insert/update the dashboard entry for an in-progress order."""
    seller_id = state["seller_id"]
    amount = seller_share_cents(order, seller_id)
    if amount == 0:
        return state
    entries = dict(state["entries"])
    entries[order["order_id"]] = {
        "order_id": order["order_id"],
        "customer_id": order["customer_id"],
        "status": order["status"],
        "amount_cents": amount,
        "updated_at": order["updated_at"],
    }
    return {**state, "entries": entries}


def update_entry_status(state: dict, order_id: str, status: str,
                        now: float) -> dict:
    """Track a status change; terminal statuses retire the entry."""
    entries = dict(state["entries"])
    entry = entries.get(order_id)
    if entry is None:
        return state
    if status in OrderStatus.IN_PROGRESS:
        entries[order_id] = {**entry, "status": status, "updated_at": now}
        return {**state, "entries": entries}
    retired = entries.pop(order_id)
    new_state = {**state, "entries": entries}
    if status == OrderStatus.COMPLETED:
        new_state["revenue_cents"] = (state["revenue_cents"]
                                      + retired["amount_cents"])
        new_state["deliveries"] = state["deliveries"] + 1
    return new_state


def record_return(state: dict, amount_cents: int) -> dict:
    """Ledger reversal for a returned/defective order's seller share.

    The delivery already happened so ``deliveries`` stands; the revenue
    recognised at completion is handed back and the return counted.
    """
    return {**state,
            "revenue_cents": state["revenue_cents"] - amount_cents,
            "returns": state.get("returns", 0) + 1}


def _iter_entries(state: dict):
    """Copy-free read-only iteration over the dashboard entries."""
    entries = peek(state, "entries")
    if type(entries) is dict:
        return entries.values()
    return scan_values(entries)


def dashboard_amount(state: dict) -> int:
    """Query 1: financial amount of orders in progress."""
    return sum(entry["amount_cents"] for entry in _iter_entries(state))


def dashboard_entries(state: dict) -> list[dict]:
    """Query 2: the tuples behind query 1 (sorted for determinism).

    Entries are copied on the way out (the scan yields frozen state)."""
    return sorted((dict(entry) for entry in _iter_entries(state)),
                  key=lambda entry: entry["order_id"])
