"""Order service logic: order assembly, invoicing and status tracking.

The order service "contains key logic about the ordering process,
including assigning invoice numbers, assembling the items with stock
confirmed, and calculating order totals" (paper, Section II).
"""

from __future__ import annotations

import typing

from repro.marketplace.constants import OrderStatus
from repro.marketplace.logic import lifecycle


def new_customer_orders(customer_id: int) -> dict:
    """State of the per-customer order manager (order grain key)."""
    return {"customer_id": customer_id, "next_order": 1, "orders": {}}


def assemble(state: dict, order_id: str, confirmed_items: list[dict],
             now: float, ext: str | None = None) -> tuple[dict, dict]:
    """Create an order from the stock-confirmed items.

    Assigns the invoice number from the per-customer sequence, computes
    the total, and records the order.  Returns (new state, order dict).
    ``ext`` tags orders ingested from an external platform with their
    ``(platform, shop_id, ext_order_no)`` dedup key.
    """
    if not confirmed_items:
        raise ValueError("an order needs at least one confirmed item")
    if order_id in state["orders"]:
        raise ValueError(f"order {order_id!r} already exists")
    sequence = state["next_order"]
    invoice = f"{state['customer_id']}-{sequence:06d}"
    total = sum(_subtotal(item) for item in confirmed_items)
    order = {
        "order_id": order_id,
        "customer_id": state["customer_id"],
        "invoice": invoice,
        "items": [dict(item) for item in confirmed_items],
        "total_cents": total,
        "status": OrderStatus.INVOICED,
        "history": [OrderStatus.INVOICED],
        "created_at": now,
        "updated_at": now,
        "packages_total": 0,
        "packages_delivered": 0,
    }
    if ext is not None:
        order["ext"] = ext
    orders = dict(state["orders"])
    orders[order_id] = order
    return {**state, "next_order": sequence + 1, "orders": orders}, order


def _subtotal(item: typing.Mapping) -> int:
    subtotal = (item["quantity"] * item["unit_price_cents"]
                - item.get("voucher_cents", 0))
    return max(subtotal, 0)


def seller_ids(order: dict) -> list[int]:
    """Distinct sellers participating in an order (package grouping)."""
    return sorted({item["seller_id"] for item in order["items"]})


def set_status(state: dict, order_id: str, status: str,
               now: float) -> dict:
    """Advance an order through the lifecycle state machine.

    Unknown orders raise KeyError; hops not in ``TRANSITIONS`` raise
    :class:`~repro.marketplace.logic.lifecycle.IllegalTransition`.
    """
    orders = dict(state["orders"])
    if order_id not in orders:
        raise KeyError(f"unknown order {order_id!r}")
    orders[order_id] = lifecycle.advance(orders[order_id], status, now)
    return {**state, "orders": orders}


def record_shipment(state: dict, order_id: str, package_count: int,
                    now: float) -> dict:
    """Mark the order in transit with ``package_count`` packages."""
    orders = dict(state["orders"])
    order = lifecycle.advance(orders[order_id], OrderStatus.IN_TRANSIT, now)
    order["packages_total"] = package_count
    orders[order_id] = order
    return {**state, "orders": orders}


def record_delivery(state: dict, order_id: str, now: float) -> tuple[dict,
                                                                     bool]:
    """Record one delivered package; returns (state, order completed?)."""
    orders = dict(state["orders"])
    order = dict(orders[order_id])
    order["packages_delivered"] += 1
    completed = (order["packages_total"] > 0
                 and order["packages_delivered"] >= order["packages_total"])
    if completed and order["status"] != OrderStatus.COMPLETED:
        order = lifecycle.advance(order, OrderStatus.COMPLETED, now)
    else:
        order["updated_at"] = now
    orders[order_id] = order
    return {**state, "orders": orders}, completed


def in_progress_orders(state: dict) -> list[dict]:
    return [order for order in state["orders"].values()
            if order["status"] in OrderStatus.IN_PROGRESS]
