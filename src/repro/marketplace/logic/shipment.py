"""Shipment service logic: packaging and delivery progression.

Upon successful payment the shipment service groups order items into
one package per seller.  The *Update Delivery* transaction "picks the
first 10 sellers with undelivered packages in chronological order and
sets their respective oldest order's packages as delivered".
"""

from __future__ import annotations

from repro.cow import peek, scan_values
from repro.marketplace.constants import PackageStatus


def new_shipments() -> dict:
    """State of a shipment manager partition."""
    return {"shipments": {}, "next_package": 1}


def create_shipment(state: dict, order_id: str, customer_id: int,
                    items: list[dict], now: float) -> tuple[dict, dict]:
    """Create one package per seller for the order's items."""
    if order_id in state["shipments"]:
        raise ValueError(f"shipment for {order_id!r} already exists")
    if not items:
        raise ValueError("cannot ship an order without items")
    packages = {}
    next_package = state["next_package"]
    by_seller: dict[int, list[dict]] = {}
    for item in items:
        by_seller.setdefault(item["seller_id"], []).append(dict(item))
    for seller_id in sorted(by_seller):
        package_id = f"pkg-{next_package:08d}"
        next_package += 1
        packages[package_id] = {
            "package_id": package_id,
            "order_id": order_id,
            "seller_id": seller_id,
            "items": by_seller[seller_id],
            "status": PackageStatus.SHIPPED,
            "shipped_at": now,
            "delivered_at": None,
        }
    shipment = {"order_id": order_id, "customer_id": customer_id,
                "packages": packages, "created_at": now}
    shipments = dict(state["shipments"])
    shipments[order_id] = shipment
    new_state = {**state, "shipments": shipments,
                 "next_package": next_package}
    return new_state, shipment


def _iter_packages(state: dict):
    """Yield every package dict in the partition, copy-free.

    Read-only scan over the whole partition: peek/scan_values walk the
    frozen state directly instead of wrapping every shipment and
    package in a copy-on-write view just to compare atoms.  Untouched
    sub-trees are plain dicts, so the common all-clean case iterates
    raw dict values with no generator helpers in between.
    """
    shipments = peek(state, "shipments")
    ship_iter = (shipments.values() if type(shipments) is dict
                 else scan_values(shipments))
    for shipment in ship_iter:
        packages = peek(shipment, "packages")
        if type(packages) is dict:
            yield from packages.values()
        else:
            yield from scan_values(packages)


def undelivered_seller_times(state: dict) -> list[tuple[int, float]]:
    """(seller, earliest undelivered ship time) pairs for this partition."""
    first_seen: dict[int, float] = {}
    delivered = PackageStatus.DELIVERED
    for package in _iter_packages(state):
        if package["status"] != delivered:
            seller = package["seller_id"]
            when = package["shipped_at"]
            if seller not in first_seen or when < first_seen[seller]:
                first_seen[seller] = when
    return sorted(first_seen.items(), key=lambda item: (item[1], item[0]))


def undelivered_sellers(state: dict, limit: int = 10) -> list[int]:
    """First ``limit`` sellers with undelivered packages, chronological."""
    ranked = undelivered_seller_times(state)
    return [seller for seller, _ in ranked[:limit]]


def oldest_undelivered_package(state: dict,
                               seller_id: int) -> dict | None:
    """The seller's oldest package not yet delivered (or None)."""
    best = None
    delivered = PackageStatus.DELIVERED
    for package in _iter_packages(state):
        if (package["seller_id"] == seller_id
                and package["status"] != delivered):
            if best is None or package["shipped_at"] < best["shipped_at"]:
                best = package
    # The winner may be a frozen committed package: hand back a copy so
    # callers cannot reach engine-owned state through the result.
    return dict(best) if best is not None else None


def mark_delivered(state: dict, order_id: str, package_id: str,
                   now: float) -> tuple[dict, dict]:
    """Set one package delivered; returns (state, updated package)."""
    shipments = dict(state["shipments"])
    shipment = shipments.get(order_id)
    if shipment is None:
        raise KeyError(f"no shipment for order {order_id!r}")
    packages = dict(shipment["packages"])
    package = packages.get(package_id)
    if package is None:
        raise KeyError(f"no package {package_id!r} in order {order_id!r}")
    if package["status"] == PackageStatus.DELIVERED:
        return state, package
    package = {**package, "status": PackageStatus.DELIVERED,
               "delivered_at": now}
    packages[package_id] = package
    shipments[order_id] = {**shipment, "packages": packages}
    return {**state, "shipments": shipments}, package


def package_count(state: dict, order_id: str) -> int:
    shipment = state["shipments"].get(order_id)
    return len(shipment["packages"]) if shipment else 0
