"""Payment service logic: payment lines and (deterministic) processing.

Payment "is responsible for processing different payment methods and
possible discounts, and confirming the order".  Card authorisation is
simulated with a deterministic hash of the order id so that a given
workload produces the same approval pattern on every platform — the
cross-platform comparison must not be perturbed by randomness.
"""

from __future__ import annotations

import zlib

from repro.marketplace.constants import PaymentMethod, PaymentStatus


def build_payment(order_id: str, customer_id: int, amount_cents: int,
                  method: str, now: float) -> dict:
    if method not in PaymentMethod.ALL:
        raise ValueError(f"unknown payment method {method!r}")
    if amount_cents < 0:
        raise ValueError("payment amount must be >= 0")
    return {"order_id": order_id, "customer_id": customer_id,
            "amount_cents": amount_cents, "method": method,
            "status": PaymentStatus.REQUESTED, "requested_at": now,
            "lines": _lines(amount_cents, method)}


def _lines(amount_cents: int, method: str) -> list[dict]:
    """Split the amount into payment lines (card + remainder)."""
    if method == PaymentMethod.VOUCHER:
        half = amount_cents // 2
        return [
            {"type": PaymentMethod.VOUCHER, "amount_cents": half},
            {"type": PaymentMethod.CREDIT_CARD,
             "amount_cents": amount_cents - half},
        ]
    return [{"type": method, "amount_cents": amount_cents}]


def authorize(payment: dict, approval_rate: float = 1.0) -> dict:
    """Decide the payment outcome; deterministic per order id.

    ``approval_rate`` is the fraction of payments approved; the decision
    hashes the order id so all platforms agree on which orders fail.
    """
    if not 0.0 <= approval_rate <= 1.0:
        raise ValueError("approval_rate must be in [0, 1]")
    digest = zlib.crc32(payment["order_id"].encode()) % 10_000
    approved = digest < approval_rate * 10_000
    status = (PaymentStatus.SUCCEEDED if approved
              else PaymentStatus.FAILED)
    return {**payment, "status": status}


def is_approved(payment: dict) -> bool:
    return payment["status"] == PaymentStatus.SUCCEEDED


def refund(payment: dict) -> dict:
    """Reverse a succeeded payment (return/refund compensation).

    Idempotent on an already-refunded payment; refunding a payment
    that never succeeded is a programming error and raises.
    """
    if payment["status"] == PaymentStatus.REFUNDED:
        return payment
    if payment["status"] != PaymentStatus.SUCCEEDED:
        raise ValueError(
            f"cannot refund payment in status {payment['status']!r}")
    return {**payment, "status": PaymentStatus.REFUNDED}
