"""Application events exchanged between microservices.

Events are dataclasses with plain-dict payload converters.  The ones
that matter to the paper's criteria:

* :class:`PriceUpdated` / :class:`ProductDeleted` drive the
  Product -> Cart (and Product -> Stock) replication whose semantics
  (eventual vs causal) the benchmark prescribes.
* :class:`PaymentConfirmed` must causally precede
  :class:`ShipmentNotification` for the same order.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class PriceUpdated:
    seller_id: int
    product_id: int
    price_cents: int
    version: int

    kind = "price_updated"


@dataclasses.dataclass(frozen=True)
class ProductDeleted:
    seller_id: int
    product_id: int
    version: int

    kind = "product_deleted"


@dataclasses.dataclass(frozen=True)
class CheckoutRequested:
    customer_id: int
    order_id: str
    items: tuple  # tuple of CartItem dicts
    payment_method: str

    kind = "checkout_requested"


@dataclasses.dataclass(frozen=True)
class OrderCreated:
    order_id: str
    customer_id: int
    total_cents: int
    invoice: str

    kind = "order_created"


@dataclasses.dataclass(frozen=True)
class StockConfirmed:
    order_id: str
    items: tuple

    kind = "stock_confirmed"


@dataclasses.dataclass(frozen=True)
class StockRejected:
    order_id: str
    failed_items: tuple

    kind = "stock_rejected"


@dataclasses.dataclass(frozen=True)
class PaymentConfirmed:
    order_id: str
    customer_id: int
    amount_cents: int
    method: str

    kind = "payment_confirmed"


@dataclasses.dataclass(frozen=True)
class PaymentFailed:
    order_id: str
    customer_id: int
    amount_cents: int
    method: str

    kind = "payment_failed"


@dataclasses.dataclass(frozen=True)
class ShipmentNotification:
    order_id: str
    customer_id: int
    package_count: int

    kind = "shipment_notification"


@dataclasses.dataclass(frozen=True)
class DeliveryNotification:
    order_id: str
    seller_id: int
    package_id: str

    kind = "delivery_notification"
