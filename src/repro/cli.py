"""Command-line interface for the Online Marketplace benchmark.

Examples
--------
Run one implementation and print its results::

    python -m repro.cli run --app orleans-eventual --workers 32 \
        --duration 3.0

Compare all four implementations (throughput + criteria matrix)::

    python -m repro.cli compare --workers 32 --duration 2.0

Audit anomalies under message loss::

    python -m repro.cli audit --app orleans-eventual --drop 0.02

Replay a named open-loop scenario (run ``scenario --list`` for the
catalogue)::

    python -m repro.cli scenario flash-sale --app orleans-eventual

Reproduce the whole comparison surface — scenario × app × seed ×
rate-scale cells fanned across worker processes, merged into one
cross-app report::

    python -m repro.cli matrix --workers 4 --seeds 1,2,3
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import typing

from repro.analysis.anomalies import AnomalyReport
from repro.analysis.availability import availability_report
from repro.analysis.elasticity import elasticity_report
from repro.analysis.matrix_report import (
    matrix_report_json,
    render_matrix_report,
)
from repro.control.facade import run_scenario
from repro.apps import ALL_APPS, AppConfig
from repro.core import (
    BenchmarkDriver,
    DriverConfig,
    MatrixSpec,
    WorkloadConfig,
    audit_app,
    run_matrix,
)
from repro.core.criteria import CRITERIA
from repro.core.matrix import MatrixProgress
from repro.core.scenarios import get_scenario, scenario_names
from repro.core.workload.config import TransactionMix
from repro.runtime import Environment


def _add_cluster_arguments(parser: argparse.ArgumentParser,
                           silos_default: int | None = 4,
                           cores_default: int | None = 4,
                           drop_default: float | None = 0.0) -> None:
    parser.add_argument("--silos", type=int, default=silos_default,
                        help="cluster size (silos / partitions)")
    parser.add_argument("--cores", type=int, default=cores_default,
                        help="CPU cores per silo")
    parser.add_argument("--drop", type=float, default=drop_default,
                        help="message-loss probability")
    parser.add_argument("--seed", type=int, default=42,
                        help="simulation + dataset RNG seed")


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=32,
                        help="closed-loop driver workers")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="measured window (simulated seconds)")
    parser.add_argument("--warmup", type=float, default=0.5,
                        help="warm-up (simulated seconds)")
    parser.add_argument("--sellers", type=int, default=10)
    parser.add_argument("--customers", type=int, default=100)
    parser.add_argument("--products", type=int, default=10,
                        help="products per seller")
    parser.add_argument("--zipf", type=float, default=0.8,
                        help="product popularity skew")
    parser.add_argument("--checkout-weight", type=float, default=65.0)
    _add_cluster_arguments(parser)


def _run_one(app_name: str, args: argparse.Namespace):
    env = Environment(seed=args.seed)
    app = ALL_APPS[app_name](env, AppConfig(
        silos=args.silos, cores_per_silo=args.cores,
        drop_probability=args.drop))
    mix = TransactionMix(checkout=args.checkout_weight)
    workload = WorkloadConfig(
        sellers=args.sellers, customers=args.customers,
        products_per_seller=args.products, zipf_s=args.zipf, mix=mix)
    driver = BenchmarkDriver(
        env, app, workload,
        DriverConfig(workers=args.workers, warmup=args.warmup,
                     duration=args.duration, drain=1.0))
    metrics = driver.run()
    report = audit_app(app, driver)
    return metrics, report


def _print_metrics(metrics, stream: typing.TextIO) -> None:
    print(f"\napp: {metrics.app}  workers: {metrics.workers}  "
          f"window: {metrics.duration}s (simulated)", file=stream)
    print(f"total committed throughput: "
          f"{metrics.total_throughput:,.1f} tx/s", file=stream)
    header = (f"{'operation':18s} {'ok':>7s} {'rej':>5s} {'fail':>5s} "
              f"{'tx/s':>9s} {'p50 ms':>8s} {'p99 ms':>8s}")
    print(header, file=stream)
    print("-" * len(header), file=stream)
    for name, op in sorted(metrics.ops.items()):
        print(f"{name:18s} {op.ok:7d} {op.rejected:5d} {op.failed:5d} "
              f"{op.throughput:9.1f} {op.latency['p50'] * 1000:8.2f} "
              f"{op.latency['p99'] * 1000:8.2f}", file=stream)


def _print_report(report, stream: typing.TextIO) -> None:
    print("\ncriteria:", file=stream)
    for name in CRITERIA:
        result = report.results.get(name)
        if result is None:
            continue
        status = ("pass" if result.passed
                  else f"FAIL ({result.violations}/{result.checked})")
        print(f"  {name:28s} {status}", file=stream)


def cmd_run(args: argparse.Namespace,
            stream: typing.TextIO = sys.stdout) -> int:
    metrics, report = _run_one(args.app, args)
    _print_metrics(metrics, stream)
    _print_report(report, stream)
    return 0


def cmd_compare(args: argparse.Namespace,
                stream: typing.TextIO = sys.stdout) -> int:
    results = {name: _run_one(name, args) for name in ALL_APPS}
    print(f"\n{'implementation':24s} {'tx/s':>9s} {'checkout p50':>13s} "
          f"{'criteria':>9s}", file=stream)
    print("-" * 60, file=stream)
    for name, (metrics, report) in results.items():
        passed = sum(result.passed
                     for result in report.results.values())
        total = len(report.results)
        print(f"{name:24s} {metrics.total_throughput:9,.0f} "
              f"{metrics.latency_of('checkout') * 1000:11.2f}ms "
              f"{passed:>5d}/{total}", file=stream)
    print("\ncriteria matrix:", file=stream)
    header = f"{'implementation':24s} " + "  ".join(
        criterion.split('-')[0] for criterion in CRITERIA)
    print(header, file=stream)
    for name, (_, report) in results.items():
        cells = []
        for criterion in CRITERIA:
            result = report.results.get(criterion)
            cells.append("pass" if result is None or result.passed
                         else "FAIL")
        print(f"{name:24s} " + "  ".join(cells), file=stream)
    return 0


def cmd_audit(args: argparse.Namespace,
              stream: typing.TextIO = sys.stdout) -> int:
    metrics, report = _run_one(args.app, args)
    anomalies = AnomalyReport.from_report(report, metrics)
    print(f"\napp: {args.app}  drop: {args.drop:.1%}  "
          f"transactions: {anomalies.transactions}", file=stream)
    for criterion, count in sorted(anomalies.violations.items()):
        print(f"  {criterion:28s} {count:6d} violations "
              f"({anomalies.per_10k(criterion):8.2f} per 10k tx)",
              file=stream)
    print(f"  {'TOTAL':28s} {anomalies.total_violations:6d} "
          f"({anomalies.per_10k():8.2f} per 10k tx)", file=stream)
    return 0 if report.all_pass else 1


def _print_scenario_metrics(scenario, metrics,
                            stream: typing.TextIO) -> None:
    stats = metrics.open_loop
    print(f"\nscenario: {scenario.name}  app: {metrics.app}", file=stream)
    print(scenario.description, file=stream)
    print(f"\noffered rate: {stats['offered_rate']:,.1f} arrivals/s  "
          f"arrivals: {stats['arrivals']}  "
          f"completed: {stats['completed']}  shed: {stats['shed']}",
          file=stream)
    print(f"dispatch pool: {metrics.workers}  "
          f"max in-flight: {stats['max_in_flight']}  "
          f"max queue: {stats['max_queue']}  "
          f"queue at drain end: {stats['final_queue']}", file=stream)
    print(f"total committed throughput: "
          f"{metrics.total_throughput:,.1f} tx/s", file=stream)
    header = (f"{'operation':18s} {'ok':>7s} {'rej':>5s} {'fail':>5s} "
              f"{'svc p50':>8s} {'svc p99':>8s} {'queue p50':>10s} "
              f"{'queue p99':>10s}")
    print("\nservice latency vs queueing delay (ms):", file=stream)
    print(header, file=stream)
    print("-" * len(header), file=stream)
    for name, op in sorted(metrics.ops.items()):
        queue = op.queue_delay or {}
        print(f"{name:18s} {op.ok:7d} {op.rejected:5d} {op.failed:5d} "
              f"{op.latency['p50'] * 1000:8.2f} "
              f"{op.latency['p99'] * 1000:8.2f} "
              f"{queue.get('p50', 0.0) * 1000:10.2f} "
              f"{queue.get('p99', 0.0) * 1000:10.2f}", file=stream)
    if metrics.timeline:
        print("\nthroughput timeline (completions per simulated "
              "second):", file=stream)
        peak = max(count for _, count in metrics.timeline)
        for second, count in metrics.timeline:
            bar = "#" * max(1, round(count / peak * 40))
            print(f"  t={second:3d}s {count:6d} {bar}", file=stream)


def _print_availability(metrics, stream: typing.TextIO) -> None:
    report = availability_report(metrics)
    print("\nmembership fault timeline:", file=stream)
    for entry in metrics.open_loop.get("fault_events", ()):
        target = f" {entry['target']}" if entry["target"] else ""
        status = "applied" if entry["applied"] else \
            f"skipped ({entry['detail']})"
        print(f"  t={entry['second']:3d}s {entry['action']}{target}: "
              f"{status}", file=stream)
    if report.fault_second is None:
        print("no disruptive fault was applied; "
              "availability unaffected.", file=stream)
        return
    print("\navailability (per measured second):", file=stream)
    for row in report.rows:
        flag = "" if row["available"] else "  << unavailable"
        print(f"  t={row['second']:3d}s ok={row['ok']:6d} "
              f"err={row['errors']:5d}{flag}", file=stream)
    window = report.unavailability_window
    window_text = (f"seconds {window[0]}..{window[1]} "
                   f"({report.unavailable_seconds} degraded)"
                   if window else "empty")
    recovery = (f"{report.recovery_time:.0f}s after the fault"
                if report.recovery_time is not None
                else "not reached in the window")
    print(f"\npre-fault throughput: {report.pre_fault_tps:,.1f} tx/s",
          file=stream)
    print(f"unavailability window: {window_text}", file=stream)
    print(f"recovery to pre-fault throughput: {recovery}", file=stream)
    print(f"state-loss anomalies (volatile grains crashed): "
          f"{report.state_loss_events}", file=stream)
    print(f"clean volatile handoffs (drain/migration): "
          f"{report.volatile_handoffs}", file=stream)
    print(f"messages rerouted: {report.reroutes}  "
          f"calls failed unavailable: {report.unavailable_failures}",
          file=stream)


def _print_elasticity(metrics, app: str,
                      stream: typing.TextIO) -> None:
    control = metrics.open_loop["control"]
    report = elasticity_report(control, app=app)
    print("\nautoscaler timeline (controller samples):", file=stream)
    for sample in control["samples"]:
        flag = "  << SLO breach" if sample["breach"] else ""
        action = f"  -> {sample['action']}" if sample["action"] else ""
        print(f"  t={sample['time']:5.2f}s p95={sample['p95_ms']:7.2f}ms "
              f"err={sample['error_rate'] * 100:4.1f}% "
              f"rate={sample['arrival_rate']:6.0f}/s "
              f"silos={sample['silos']}{action}{flag}", file=stream)
    if report is None:
        return
    lag = (f"{report.scaling_lag:.2f}s"
           if report.scaling_lag is not None else "-")
    if report.recovery_time is not None:
        recovery = f"{report.recovery_time:.2f}s"
    elif report.recovered:
        recovery = "-"  # nothing ever breached
    else:
        recovery = "not reached"
    print(f"\nSLO violation time: {report.slo_violation_seconds:.2f}s  "
          f"scaling lag: {lag}  recovery: {recovery}", file=stream)
    print(f"silo range: {report.min_silos}..{report.peak_silos}  "
          f"scale-ups: {report.scale_ups}  "
          f"scale-downs: {report.scale_downs}", file=stream)
    print(f"provisioning vs ideal curve: "
          f"over {report.over_provisioned_area:.2f} silo-s, "
          f"under {report.under_provisioned_area:.2f} silo-s "
          f"(actual {report.silo_seconds:.1f}, "
          f"ideal {report.ideal_silo_seconds:.1f})", file=stream)


def cmd_scenario(args: argparse.Namespace,
                 stream: typing.TextIO = sys.stdout) -> int:
    if args.list or args.name is None:
        print("available scenarios:", file=stream)
        for name in scenario_names():
            scenario = get_scenario(name)
            print(f"  {name:20s} {scenario.description}", file=stream)
        return 0
    if args.rate_scale <= 0 or args.duration_scale <= 0:
        print("error: --rate-scale and --duration-scale must be > 0",
              file=stream)
        return 2
    try:
        # One canonical assembly path: a scenario pins the cluster
        # shape / fault knobs it was designed for, explicit flags win
        # (None = use the pin) — run_scenario owns those semantics.
        run = run_scenario(args.name, app=args.app, seed=args.seed,
                           rate_scale=args.rate_scale,
                           duration_scale=args.duration_scale,
                           silos=args.silos, cores=args.cores,
                           drop_probability=args.drop)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=stream)
        return 2
    metrics = run.metrics
    _print_scenario_metrics(run.scenario, metrics, stream)
    if metrics.open_loop.get("fault_events"):
        _print_availability(metrics, stream)
    if metrics.open_loop.get("control"):
        _print_elasticity(metrics, args.app, stream)
    _print_report(run.report, stream)
    return 0


def _split_csv(values: typing.Sequence[str] | None) -> list[str]:
    """Flatten repeatable, comma-separated flag values."""
    if not values:
        return []
    return [item.strip() for value in values
            for item in value.split(",") if item.strip()]


def cmd_matrix(args: argparse.Namespace,
               stream: typing.TextIO = sys.stdout) -> int:
    scenarios = _split_csv(args.scenario) or scenario_names()
    apps = _split_csv(args.app) or sorted(ALL_APPS)
    try:
        seeds = [int(seed) for seed in _split_csv(args.seeds)] or [42]
        rate_scales = [float(scale)
                       for scale in _split_csv(args.rate_scale)] or [1.0]
        spec = MatrixSpec(scenarios=scenarios, apps=apps, seeds=seeds,
                          rate_scales=rate_scales,
                          duration_scale=args.duration_scale)
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}", file=stream)
        return 2
    cells = spec.cells()
    workers = args.workers or min(len(cells), os.cpu_count() or 1)
    print(f"matrix: {len(cells)} cells "
          f"({len(spec.scenarios)} scenarios x {len(spec.apps)} apps "
          f"x {len(spec.seeds)} seeds x {len(spec.rate_scales)} "
          f"rate-scales)  workers: {workers}", file=stream)
    if args.dry_run:
        for cell in cells:
            print(f"  {cell.cell_id}", file=stream)
        return 0

    finished = [0]

    def progress(event: MatrixProgress) -> None:
        if event.kind == "start":
            print(f"[{finished[0]:3d}/{event.total}] start "
                  f"{event.cell.cell_id}", file=stream)
            return
        finished[0] += 1
        result = event.result
        tps = (f"{result.payload['total_tps']:,.1f} tx/s"
               if result.ok else result.error)
        print(f"[{finished[0]:3d}/{event.total}] {result.status:7s} "
              f"{event.cell.cell_id}  {result.wall_s:.1f}s wall  {tps}",
              file=stream)

    result = run_matrix(spec, workers=workers,
                        progress=None if args.quiet else progress)
    print(file=stream)
    print(render_matrix_report(result), end="", file=stream)
    if args.json:
        path = pathlib.Path(args.json)
        path.write_text(json.dumps(matrix_report_json(result),
                                   indent=2) + "\n")
        print(f"\nwrote {path}", file=stream)
    return 0 if not result.failures else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Online Marketplace benchmark CLI")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="closed-loop run of one implementation",
        description="Run one implementation under the closed-loop "
                    "driver (N workers submit, wait, repeat) and print "
                    "its throughput/latency table and criteria audit.",
        epilog="example: repro run --app orleans-transactions "
               "--workers 32 --duration 3.0")
    run_parser.add_argument("--app", choices=sorted(ALL_APPS),
                            default="orleans-eventual")
    _add_common_arguments(run_parser)
    run_parser.set_defaults(func=cmd_run)

    compare_parser = subparsers.add_parser(
        "compare",
        help="closed-loop run of all four implementations",
        description="Run every implementation under the same "
                    "closed-loop configuration and print the "
                    "throughput ranking plus the criteria matrix.",
        epilog="example: repro compare --workers 32 --duration 2.0")
    _add_common_arguments(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    audit_parser = subparsers.add_parser(
        "audit",
        help="anomaly audit for one implementation",
        description="Run one implementation, then normalise criteria "
                    "violations to anomalies per 10k transactions. "
                    "Exits non-zero when any criterion fails.",
        epilog="example: repro audit --app orleans-eventual "
               "--drop 0.02")
    audit_parser.add_argument("--app", choices=sorted(ALL_APPS),
                              default="orleans-eventual")
    _add_common_arguments(audit_parser)
    audit_parser.set_defaults(func=cmd_audit)

    scenario_parser = subparsers.add_parser(
        "scenario", help="replay a named open-loop scenario",
        description="Replay one scenario from the open-loop catalogue "
                    "against one implementation; fault scenarios "
                    "append an availability report.",
        epilog="example: repro scenario flash-sale "
               "--app orleans-eventual --rate-scale 0.5")
    scenario_parser.add_argument(
        "name", nargs="?", default=None,
        help="scenario name (omit or use --list for the catalogue)")
    scenario_parser.add_argument("--list", action="store_true",
                                 help="list the scenario catalogue")
    scenario_parser.add_argument("--app", choices=sorted(ALL_APPS),
                                 default="orleans-eventual")
    scenario_parser.add_argument(
        "--rate-scale", type=float, default=1.0,
        help="multiply the scenario's arrival rates")
    scenario_parser.add_argument(
        "--duration-scale", type=float, default=1.0,
        help="stretch or shrink the measured window")
    # None = let the scenario's pinned cluster shape / fault knobs
    # (if any) apply.
    _add_cluster_arguments(scenario_parser, silos_default=None,
                           cores_default=None, drop_default=None)
    scenario_parser.set_defaults(func=cmd_scenario)

    matrix_parser = subparsers.add_parser(
        "matrix",
        help="run a scenario x app x seed x rate-scale matrix "
             "across worker processes",
        description="Expand the scenario x app x seed x rate-scale "
                    "cross product and run every cell (each a "
                    "deterministic open-loop experiment) across a "
                    "pool of worker processes, then print one merged "
                    "cross-app report per scenario with seed-sweep "
                    "error bars. A failed or crashed cell is recorded "
                    "and the rest of the matrix keeps running; the "
                    "exit status is non-zero when any cell failed.",
        epilog="examples:\n"
               "  repro matrix --workers 4 --seeds 1,2,3\n"
               "  repro matrix --scenario baseline,flash-sale "
               "--app orleans-eventual --rate-scale 0.5,1.0\n"
               "  repro matrix --duration-scale 0.2 --dry-run",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    matrix_parser.add_argument(
        "--scenario", action="append", metavar="NAME[,NAME...]",
        help="scenario filter, repeatable or comma-separated "
             "(default: the full catalogue)")
    matrix_parser.add_argument(
        "--app", action="append", metavar="NAME[,NAME...]",
        help="implementation filter, repeatable or comma-separated "
             "(default: all four)")
    matrix_parser.add_argument(
        "--seeds", action="append", metavar="N[,N...]",
        help="seed sweep for error bars, e.g. 1,2,3 (default: 42)")
    matrix_parser.add_argument(
        "--rate-scale", action="append", metavar="X[,X...]",
        help="arrival-rate multipliers, e.g. 0.5,1.0 (default: 1.0)")
    matrix_parser.add_argument(
        "--duration-scale", type=float, default=1.0,
        help="stretch/shrink every cell's time axis (shape-preserving)")
    matrix_parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes; 0 = one per CPU core, capped at the "
             "cell count (cells are single-threaded, so more workers "
             "than cores stops helping)")
    matrix_parser.add_argument(
        "--json", metavar="PATH",
        help="write per-cell payloads + merged tables as JSON")
    matrix_parser.add_argument(
        "--dry-run", action="store_true",
        help="print the expanded cell list and exit")
    matrix_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-cell progress lines")
    matrix_parser.set_defaults(func=cmd_matrix)
    return parser


def main(argv: typing.Sequence[str] | None = None,
         stream: typing.TextIO = sys.stdout) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, stream)


if __name__ == "__main__":
    sys.exit(main())
