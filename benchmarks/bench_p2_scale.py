"""P2 — world-size scaling: memory tracks the touched set, not n.

The eager pipeline generates and ingests every record up front, so a
million-product catalogue costs a million products of memory before
the first transaction.  The lazy pipeline (``lazy_dataset=True``)
generates each entity on first touch from a per-entity seeded RNG and
the O(1) Zipf sampler draws ranks without an O(n) CDF, so the *same
traffic* against a 100x larger keyspace should touch — and pay for —
almost the same working set.  The activation budget bounds the
resident grain population on top.

Each cell runs identical closed-loop traffic against 10^4, 10^5 and
10^6 product keys and reports the peak tracemalloc'd memory, the
working-set counters and tx/s per wall-second.  The acceptance
assertion is the tentpole claim: peak memory at 10^6 keys stays under
3x the peak at 10^5 keys (eager scaling would be ~10x).

Emits ``BENCH_P2_scale.json`` at the repo root; CI uploads it with the
other ``BENCH_*.json`` artifacts.
"""

import gc
import json
import pathlib
import time
import tracemalloc

import pytest
from _harness import QUICK, print_table, run_experiment

#: Product keyspace sizes (sellers x 1000 products each).
KEY_SCALES = (10_000, 100_000, 1_000_000)

APP = "orleans-eventual"
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_P2_scale.json"


def run_cell(keys: int, seed: int = 11) -> dict:
    sellers = keys // 1000
    gc.collect()
    tracemalloc.start()
    start = time.perf_counter()
    metrics, _, app = run_experiment(
        APP, workers=16, duration=1.0, drain=0.6, seed=seed,
        app_kwargs={"activation_limit": 500},
        workload_kwargs={
            "lazy_dataset": True, "sellers": sellers,
            "products_per_seller": 1000, "customers": 1000,
            "zipf_s": 0.8})
    wall = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    committed = sum(op.ok for op in metrics.ops.values())
    working_set = app.runtime_stats()["working_set"]
    summary = app.dataset.summary()
    return {
        "keys": keys,
        "wall_s": round(wall, 4),
        "peak_tracked_mb": round(peak / 1e6, 3),
        "committed_tx": committed,
        "tx_per_wall_s": round(committed / wall, 1),
        "touched_products": summary["touched_products"],
        "touched_customers": summary["touched_customers"],
        "activations": working_set["activations"],
        "evictions": working_set["evictions"],
        "reloads": working_set["reloads"],
        "peak_resident": working_set["peak_resident"],
    }


@pytest.mark.benchmark(group="p2-scale")
def test_p2_world_size_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_cell(keys) for keys in KEY_SCALES],
        rounds=1, iterations=1)
    print_table(f"P2: memory vs world size, same traffic ({APP})", rows)

    OUTPUT.write_text(json.dumps({
        "bench": "p2_scale",
        "app": APP,
        "quick": QUICK,
        "rows": rows,
    }, indent=2) + "\n")

    by_keys = {row["keys"]: row for row in rows}
    for row in rows:
        assert row["committed_tx"] > 0
        assert row["activations"] > 0
    # The working-set budget actually bites: idle grains are paged out
    # and come back.
    assert by_keys[1_000_000]["evictions"] > 0
    assert by_keys[1_000_000]["reloads"] > 0
    # The tentpole claim: a 10x larger keyspace under identical
    # traffic costs well under 10x the memory — the touched set, not
    # the configured world, is what's resident.
    assert by_keys[1_000_000]["peak_tracked_mb"] < \
        3.0 * by_keys[100_000]["peak_tracked_mb"], rows
    # Lazy generation really is lazy: the driver only ever
    # materialises a vanishing fraction of the million keys.
    assert by_keys[1_000_000]["touched_products"] < 100_000
