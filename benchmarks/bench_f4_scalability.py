"""F4 — scalability: throughput vs cluster size.

Paper claim (§III): Statefun "shows lower scalability compared to
Orleans Eventual".  The bench sweeps silo/partition count at a
load that saturates the smallest deployment and compares speedups.
"""

import pytest

from _harness import print_table, run_experiment

SILO_SWEEP = (1, 2, 4)
APPS = ("orleans-eventual", "statefun")


def run_sweep():
    series = {name: [] for name in APPS}
    for name in APPS:
        for silos in SILO_SWEEP:
            metrics, _, app = run_experiment(
                name, workers=silos * 32, duration=1.2, seed=17,
                silos=silos, cores_per_silo=2,
                workload_kwargs={"customers": 96})
            working_set = app.runtime_stats()["working_set"]
            series[name].append((metrics.total_throughput,
                                 working_set["peak_resident"]))
    return series


@pytest.mark.benchmark(group="f4-scalability")
def test_f4_scalability(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for name in APPS:
        base = series[name][0][0]
        row = {"app": name}
        for silos, (tput, peak) in zip(SILO_SWEEP, series[name]):
            row[f"{silos} silos (tx/s)"] = round(tput, 1)
            row[f"{silos}x speedup"] = round(tput / base, 2)
            # Memory footprint proxy: peak concurrently resident
            # grain activations / function addresses.
            row[f"{silos}x peak resident"] = peak
        rows.append(row)
    print_table("F4: throughput scaling with cluster size", rows)

    # Both scale up with more silos...
    for name in APPS:
        assert series[name][-1][0] > series[name][0][0]
    # ...but statefun scales worse than the eventual actor baseline
    # (checkpoint barriers are global: they stall every partition).
    eventual_speedup = series["orleans-eventual"][-1][0] / \
        series["orleans-eventual"][0][0]
    statefun_speedup = series["statefun"][-1][0] / \
        series["statefun"][0][0]
    assert eventual_speedup > statefun_speedup, (
        eventual_speedup, statefun_speedup)
