"""F2 — throughput of the four implementations vs offered load.

Paper claims (§III): Orleans Eventual "exhibits the highest
throughput"; Statefun "outperforms Orleans Transactions by 2 times";
the customized solution's "performance is comparable to Orleans
transactions".

The bench sweeps the closed-loop worker count and prints one series per
implementation; the final (saturated) column is what the assertions
check.
"""

import pytest

from _harness import APP_ORDER, print_table, run_experiment

WORKER_SWEEP = (8, 32, 96)


def run_sweep():
    series = {name: [] for name in APP_ORDER}
    for name in APP_ORDER:
        for workers in WORKER_SWEEP:
            metrics, _, _ = run_experiment(name, workers=workers,
                                           duration=1.5, seed=3)
            series[name].append(metrics.total_throughput)
    return series


@pytest.mark.benchmark(group="f2-throughput")
def test_f2_throughput_ranking(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for name in APP_ORDER:
        row = {"app": name}
        for workers, tput in zip(WORKER_SWEEP, series[name]):
            row[f"{workers}w (tx/s)"] = round(tput, 1)
        rows.append(row)
    print_table("F2: throughput vs closed-loop workers", rows)

    saturated = {name: series[name][-1] for name in APP_ORDER}
    # Ranking: eventual > statefun > transactions.
    assert saturated["orleans-eventual"] > saturated["statefun"]
    assert saturated["statefun"] > saturated["orleans-transactions"]
    # Statefun ≈ 2x Orleans Transactions.
    ratio = saturated["statefun"] / saturated["orleans-transactions"]
    assert 1.3 <= ratio <= 3.5, f"statefun/txn ratio {ratio:.2f}"
    # Customized ≈ Orleans Transactions (low overhead).
    ratio = (saturated["customized-orleans"]
             / saturated["orleans-transactions"])
    assert 0.6 <= ratio <= 1.3, f"customized/txn ratio {ratio:.2f}"
    # Throughput must not *decrease* dramatically with more offered
    # load (closed-loop saturation, not collapse).
    for name in APP_ORDER:
        assert series[name][-1] >= 0.5 * max(series[name])
