"""T5 — per-transaction-type breakdown.

The paper's workload section defines five business transactions; this
table reports throughput and latency per type per implementation —
the detailed view behind the headline throughput ranking.
"""

import pytest

from _harness import APP_ORDER, print_table, run_experiment

OPERATIONS = ("add_item", "checkout", "update_price", "delete_product",
              "update_delivery", "dashboard")


def run_cells():
    cells = {}
    for name in APP_ORDER:
        metrics, _, _ = run_experiment(name, workers=32, duration=1.5,
                                       seed=23)
        cells[name] = metrics
    return cells


@pytest.mark.benchmark(group="t5-breakdown")
def test_t5_per_transaction_breakdown(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    rows = []
    for name in APP_ORDER:
        for operation in OPERATIONS:
            op = cells[name].ops.get(operation)
            if op is None:
                continue
            rows.append({
                "app": name, "operation": operation, "ok": op.ok,
                "rejected": op.rejected, "failed": op.failed,
                "p50 (ms)": round(op.latency["p50"] * 1000, 2),
                "p99 (ms)": round(op.latency["p99"] * 1000, 2),
            })
    print_table("T5: per-transaction breakdown at 32 workers", rows)

    for name in APP_ORDER:
        ops = cells[name].ops
        # Every transaction type was exercised and mostly succeeded.
        for operation in ("checkout", "update_price", "dashboard"):
            assert ops[operation].ok > 0, (name, operation)
        # The read-only dashboard is cheaper than checkout everywhere.
        assert ops["dashboard"].latency["p50"] \
            < ops["checkout"].latency["p50"], name
    # The delivery batch is the heaviest transaction on the
    # transactional implementations.
    txn_ops = cells["orleans-transactions"].ops
    assert txn_ops["update_delivery"].latency["p50"] \
        > txn_ops["update_price"].latency["p50"]
