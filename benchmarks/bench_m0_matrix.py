"""M0 — experiment-matrix runner: parallel speedup and determinism.

Like P0 this measures the harness, not the paper: an 8-cell matrix
(2 scenarios × 2 apps × 2 seeds) is run serially and then across two
worker processes.  The bench reports per-cell wall timings and the
matrix-level speedup, and asserts the property the runner is built on:
per-cell canonical output is byte-identical between the serial and
parallel runs.  Speedup tracks physical core count — on a single-core
runner the parallel pass just pays fork overhead, so the speedup
floor is only asserted when at least two cores are available.

Emits ``BENCH_M0_matrix.json`` at the repo root; CI uploads it with
the other ``BENCH_*.json`` artifacts so the matrix wall-clock
trajectory accumulates per-commit data points.
"""

import json
import os
import pathlib

import pytest
from _harness import QUICK, print_table

from repro.core.matrix import MatrixSpec, run_matrix

#: Per-cell run length.  Quick mode shrinks cells so the CI smoke job
#: stays fast; the cell count (8) is fixed either way.
DURATION_SCALE = 0.05 if QUICK else 0.15
WORKERS = 2

SPEC = MatrixSpec(
    scenarios=("baseline", "heavy-writer"),
    apps=("orleans-eventual", "orleans-transactions"),
    seeds=(7, 11),
    duration_scale=DURATION_SCALE,
)

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_M0_matrix.json"


@pytest.mark.benchmark(group="m0-matrix")
def test_m0_matrix_speedup(benchmark):
    def measure():
        serial = run_matrix(SPEC, workers=1)
        parallel = run_matrix(SPEC, workers=WORKERS)
        return serial, parallel

    serial, parallel = benchmark.pedantic(measure, rounds=1,
                                          iterations=1)
    speedup = serial.wall_s / parallel.wall_s if parallel.wall_s else 0.0
    rows = []
    for ours, theirs in zip(serial.cells, parallel.cells):
        rows.append({
            "cell": ours.cell.cell_id,
            "serial_wall_s": round(ours.wall_s, 3),
            "parallel_wall_s": round(theirs.wall_s, 3),
            "status": theirs.status,
            "identical": ours.canonical_json == theirs.canonical_json,
        })
    print_table(
        f"M0: matrix speedup {speedup:.2f}x on {WORKERS} workers "
        f"({len(rows)} cells, {os.cpu_count()} cores)", rows)

    OUTPUT.write_text(json.dumps({
        "bench": "m0_matrix",
        "quick": QUICK,
        "cells": len(rows),
        "workers": WORKERS,
        "cores": os.cpu_count(),
        "serial_wall_s": round(serial.wall_s, 4),
        "parallel_wall_s": round(parallel.wall_s, 4),
        "speedup": round(speedup, 3),
        "rows": rows,
    }, indent=2) + "\n")

    assert len(rows) == 8
    assert all(cell.ok for cell in serial.cells)
    assert all(cell.ok for cell in parallel.cells)
    # The foundation of the matrix runner: fanning cells across
    # processes must not change a single byte of any cell's output.
    assert all(row["identical"] for row in rows)
    # Speedup needs physical parallelism; single-shot timings on
    # shared CI are noisy, so assert a floor below the ~1.7x a quiet
    # 2-core machine achieves.
    if (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.2
