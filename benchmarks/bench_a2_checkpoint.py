"""A2 — ablation: Statefun checkpoint interval vs throughput.

Statefun's exactly-once guarantee is paid for in aligned-checkpoint
stalls.  Sweeping the checkpoint interval exposes the trade-off:
frequent checkpoints cost throughput (more stop-the-world barriers),
infrequent ones cost recovery time (longer replay after a failure).
"""

import pytest

from repro.dataflow import StatefunConfig

from _harness import print_table, run_experiment

INTERVALS = (0.05, 0.25, 1.0, 0.0)  # 0 disables checkpointing


def run_sweep():
    cells = {}
    for interval in INTERVALS:
        config = StatefunConfig(partitions=2, cores_per_partition=2,
                                checkpoint_interval=interval,
                                checkpoint_sync=0.02)
        metrics, _, app = run_experiment(
            "statefun", workers=32, duration=1.5, seed=47,
            statefun_config=config)
        cells[interval] = (metrics, app.runtime.checkpoints_taken)
    return cells


@pytest.mark.benchmark(group="a2-checkpoint")
def test_a2_checkpoint_interval_tradeoff(benchmark):
    cells = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for interval in INTERVALS:
        metrics, checkpoints = cells[interval]
        rows.append({
            "interval (s)": interval if interval else "off",
            "checkpoints": checkpoints,
            "tx/s": round(metrics.total_throughput, 1),
            "checkout p50 (ms)": round(
                metrics.latency_of("checkout") * 1000, 2),
        })
    print_table("A2: checkpoint interval vs throughput", rows)

    # More frequent checkpoints -> more stalls -> lower throughput.
    assert cells[0.05][0].total_throughput \
        < cells[1.0][0].total_throughput
    # Disabling checkpoints is the throughput ceiling.
    best = cells[0.0][0].total_throughput
    for interval in (0.05, 0.25, 1.0):
        assert cells[interval][0].total_throughput <= best * 1.02
    # Checkpoint counts follow the configured cadence.
    assert cells[0.05][1] > cells[1.0][1]
    assert cells[0.0][1] == 0
