"""A3 — ablation: replication lag vs staleness and causal-wait cost.

The customized stack's causal KV replication blocks reads until the
chosen replica has caught up with the session frontier.  Sweeping the
replication lag under a price-update-heavy mix shows (a) the eventual
implementation's staleness growing with lag while (b) the customized
implementation stays anomaly-free, paying instead with bounded causal
waits.
"""

import pytest

from repro.core.workload.config import TransactionMix

from _harness import print_table, run_experiment

LAGS = (0.0005, 0.005, 0.02)
MIX = TransactionMix(checkout=55, price_update=35, product_delete=0,
                     update_delivery=0, dashboard=10)


def run_sweep():
    cells = {}
    for lag in LAGS:
        for name in ("orleans-eventual", "customized-orleans"):
            metrics, report, app = run_experiment(
                name, workers=24, duration=1.2, seed=53,
                workload_kwargs={"mix": MIX},
                app_kwargs={"replication_lag": lag})
            stale = report.results["C2-causal-replication"].violations
            checked = report.results["C2-causal-replication"].checked
            waits = app.runtime_stats().get("kv_causal_waits", 0)
            cells[(name, lag)] = (metrics, stale, checked, waits)
    return cells


@pytest.mark.benchmark(group="a3-replication")
def test_a3_replication_lag_vs_staleness(benchmark):
    cells = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for (name, lag), (metrics, stale, checked, waits) in sorted(
            cells.items()):
        rows.append({
            "app": name, "lag (ms)": lag * 1000,
            "stale adds": stale, "adds checked": checked,
            "causal waits": waits,
            "tx/s": round(metrics.total_throughput, 1),
        })
    print_table("A3: replication lag vs staleness", rows)

    # The causal stack never returns stale data, at any lag.
    for lag in LAGS:
        assert cells[("customized-orleans", lag)][1] == 0, lag
    # The eventual stack gets worse as lag grows.
    eventual_by_lag = [cells[("orleans-eventual", lag)][1]
                       for lag in LAGS]
    assert eventual_by_lag[-1] > eventual_by_lag[0]
    assert eventual_by_lag[0] >= 0
    # Causal reads pay with waits when lag is large.
    assert cells[("customized-orleans", LAGS[-1])][3] \
        >= cells[("customized-orleans", LAGS[0])][3]
