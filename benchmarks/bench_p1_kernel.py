"""P1 — kernel micro-benchmark: pure event churn, no application code.

P0 measures the simulator end-to-end (app + txn + actor layers on top
of the kernel); after the copy-on-write engine those upper layers
dominate, so kernel changes barely move P0.  P1 isolates the kernel:
each cell drives the event loop with a synthetic pattern and nothing
else, so the events/s numbers here are the kernel's own ceiling and
respond directly to timeline/pooling work.

Cells
-----
``timeout_storm``
    One process yielding fixed-delay timeouts — the steady heap path.
``same_tick_fanout``
    Bursts of zero-delay timeouts joined by ``all_of`` — the same-tick
    bucket plus condition machinery.
``call_after_storm``
    Pooled ``call_after`` transit callbacks — the message hot path; the
    pool hit rate is reported (and asserted) here.
``process_churn``
    Spawn-and-finish of short-lived processes — pooled init events and
    process bootstrap cost.

Emits ``BENCH_P1_kernel.json`` at the repo root; CI uploads it with the
other ``BENCH_*.json`` artifacts.
"""

import json
import pathlib
import time

import pytest
from _harness import QUICK, print_table

from repro.runtime import Environment

#: Events per cell.  Quick mode shrinks the cells; every pattern still
#: runs in full.
N = 60_000 if QUICK else 240_000

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_P1_kernel.json"


def _measure(name: str, env: Environment, build,
             uses_pool: bool) -> dict:
    build(env)
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    row = {
        "cell": name,
        "wall_s": round(wall, 4),
        "kernel_events": env.events_processed,
        "events_per_wall_s": round(env.events_processed / wall, 1),
    }
    if uses_pool:
        # Only the cells that exercise the event free-list report a
        # hit rate; a timeout-only cell acquiring a handful of events
        # at startup would otherwise show a misleading 0.0.
        acquires = env.pool_acquires
        row["pool_hit_rate"] = (round(env.pool_hits / acquires, 4)
                                if acquires else None)
    return row


def timeout_storm(env: Environment) -> None:
    def body():
        for _ in range(N):
            yield env.timeout(0.001)
    env.process(body())


def same_tick_fanout(env: Environment) -> None:
    def body():
        for _ in range(N // 100):
            yield env.all_of([env.timeout(0.0) for _ in range(100)])
    env.process(body())


def call_after_storm(env: Environment) -> None:
    def noop(_event):
        pass

    def body():
        for _ in range(N // 2):
            env.call_after(0.001, noop)
            yield env.timeout(0.001)
    env.process(body())


def process_churn(env: Environment) -> None:
    def leaf():
        yield env.timeout(0.0005)

    def body():
        for _ in range(N // 4):
            yield env.process(leaf())
    env.process(body())


#: (name, builder, uses_pool) — ``uses_pool`` marks the cells whose
#: pattern actually goes through the event free-list.
CELLS = (
    ("timeout_storm", timeout_storm, False),
    ("same_tick_fanout", same_tick_fanout, False),
    ("call_after_storm", call_after_storm, True),
    ("process_churn", process_churn, True),
)


@pytest.mark.benchmark(group="p1-kernel")
def test_p1_kernel_churn(benchmark):
    rows = benchmark.pedantic(
        lambda: [_measure(name, Environment(seed=1), build, uses_pool)
                 for name, build, uses_pool in CELLS],
        rounds=1, iterations=1)
    print_table("P1: kernel event churn (no application code)", rows)

    OUTPUT.write_text(json.dumps({
        "bench": "p1_kernel",
        "quick": QUICK,
        "rows": rows,
    }, indent=2) + "\n")

    for row in rows:
        assert row["events_per_wall_s"] > 0
    by_cell = {row["cell"]: row for row in rows}
    # The free-list must actually serve the transit path: after warm-up
    # every call_after acquire is a recycled event.
    assert by_cell["call_after_storm"]["pool_hit_rate"] > 0.99
    # Process bootstrap events are pooled too.
    assert by_cell["process_churn"]["pool_hit_rate"] > 0.99
