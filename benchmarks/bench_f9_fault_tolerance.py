"""F9 — fault-tolerance scenarios: availability under membership churn.

The paper's comparison is about how much application safety each
data-management runtime preserves under adverse conditions.  This bench
replays the membership-fault scenarios on the two Orleans platforms and
prints the availability story each produces:

* ``silo-crash`` — both platforms show a bounded unavailability window
  and a finite recovery time, and both lose volatile grain state (the
  marketplace grains model in-memory deployments); what differs is the
  caller experience: the transactional platform masks the outage
  behind transaction retries while the eventual platform serves
  errors until failure detection evicts the dead silo;
* ``rolling-restart`` — drains hand state off cleanly, so the restart
  is invisible: no errors, no state loss;
* ``scale-out-under-load`` — joins migrate grains while traffic flows
  and capacity grows mid-run.
"""

import pytest
from _harness import print_table

from repro.analysis.availability import availability_report
from repro.apps import ALL_APPS, AppConfig
from repro.core import get_scenario
from repro.runtime import Environment

FAULT_APPS = ("orleans-eventual", "orleans-transactions")


def run_fault_scenario(name: str, app_name: str, seed: int = 7,
                       rate_scale: float = 0.5):
    scenario = get_scenario(name)
    env = Environment(seed=seed)
    app = ALL_APPS[app_name](env, AppConfig(
        silos=scenario.effective_silos,
        cores_per_silo=scenario.effective_cores))
    # Always full duration: shrinking the time axis below the cluster's
    # failure-detection delay would smear the outage across the whole
    # (tiny) window and leave no pre-fault baseline.  Half rate keeps
    # the full-length run cheap enough for the CI smoke job.
    driver = scenario.build_driver(env, app, rate_scale=rate_scale,
                                   data_seed=seed)
    metrics = driver.run()
    return metrics, availability_report(metrics)


@pytest.mark.benchmark(group="f9-fault-tolerance")
def test_f9_silo_crash_across_platforms(benchmark):
    def run_pair():
        return {app: run_fault_scenario("silo-crash", app)
                for app in FAULT_APPS}

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = []
    for app, (metrics, report) in results.items():
        row = report.summary_row()
        row["txn_silo_retries"] = metrics.runtime.get(
            "transactions", {}).get("silo_retries", "-")
        rows.append(row)
    print_table("F9: silo crash availability", rows)

    for app, (metrics, report) in results.items():
        membership = metrics.runtime["membership"]
        assert membership["crashes"] == 1
        assert membership["live_silos"] == 3
        # The crash is visible: a non-empty unavailability window ...
        assert report.unavailability_window is not None
        # ... and bounded: throughput returns to pre-fault levels.
        assert report.recovery_time is not None

    eventual_metrics, eventual_report = results["orleans-eventual"]
    txn_metrics, txn_report = results["orleans-transactions"]
    # Both platforms lose volatile state (in-memory grains); the
    # transactional one additionally masks the outage behind retries.
    assert eventual_report.state_loss_events > 0
    assert txn_report.state_loss_events > 0
    assert txn_metrics.runtime["transactions"]["silo_retries"] > 0


@pytest.mark.benchmark(group="f9-fault-tolerance")
def test_f9_rolling_restart_is_invisible(benchmark):
    def run_one():
        return run_fault_scenario("rolling-restart", "orleans-eventual",
                                  rate_scale=0.4)

    metrics, report = benchmark.pedantic(run_one, rounds=1, iterations=1)
    membership = metrics.runtime["membership"]
    print_table("F9: rolling restart (orleans-eventual)", [{
        "drains": membership["drains"],
        "joins": membership["joins"],
        "live_migrations": membership["volatile_handoffs"],
        "state_loss": membership["state_loss_events"],
        "errors": sum(count for _, count in metrics.error_timeline),
        "tx/s": round(metrics.total_throughput, 1),
    }])
    assert membership["drains"] == membership["joins"] == 4
    assert membership["state_loss_events"] == 0
    assert membership["volatile_handoffs"] > 0
    assert sum(count for _, count in metrics.error_timeline) == 0


@pytest.mark.benchmark(group="f9-fault-tolerance")
def test_f9_scale_out_migrates_under_load(benchmark):
    def run_one():
        return run_fault_scenario("scale-out-under-load",
                                  "orleans-eventual")

    metrics, report = benchmark.pedantic(run_one, rounds=1, iterations=1)
    membership = metrics.runtime["membership"]
    print_table("F9: scale-out under load (orleans-eventual)", [{
        "joins": membership["joins"],
        "live_silos": membership["live_silos"],
        "migrations": membership["migrations"],
        "state_loss": membership["state_loss_events"],
        "tx/s": round(metrics.total_throughput, 1),
    }])
    assert membership["joins"] == 2
    assert membership["live_silos"] == 4
    assert membership["migrations"] > 0
    assert membership["state_loss_events"] == 0
