"""F8 — open-loop scenario suite: queueing delay under arrival control.

The paper's driver is closed-loop, which cannot express arrival-driven
overload: workers slow down with the system and the offered load
silently adapts (coordinated omission).  This bench replays the named
open-loop scenarios and checks the properties that motivated them:

* the overload ramp saturates its dispatch pool — queueing delay grows
  to dominate service latency while service latency itself stays flat;
* the baseline stays under capacity — negligible queueing;
* the flash-sale hotspot concentrates sampling onto the hot ranks;
* arrivals are conserved (dispatched + shed == arrivals).
"""

import pytest
from _harness import print_table, quick_scaled

from repro.apps import ALL_APPS, AppConfig
from repro.core import audit_app, get_scenario
from repro.runtime import Environment

SCENARIO_ORDER = ("baseline", "flash-sale", "heavy-writer",
                  "burst-then-quiesce", "delete-churn", "overload-ramp")


def run_scenario(name: str, app_name: str = "orleans-eventual",
                 seed: int = 7, rate_scale: float = 1.0):
    scenario = get_scenario(name)
    env = Environment(seed=seed)
    app = ALL_APPS[app_name](env, AppConfig(silos=2, cores_per_silo=2))
    duration_scale = quick_scaled(1.0)
    driver = scenario.build_driver(env, app, rate_scale=rate_scale,
                                   duration_scale=duration_scale,
                                   data_seed=seed)
    metrics = driver.run()
    report = audit_app(app, driver)
    return metrics, report, driver


def run_suite():
    return {name: run_scenario(name) for name in SCENARIO_ORDER}


@pytest.mark.benchmark(group="f8-open-loop")
def test_f8_scenario_suite(benchmark):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    rows = []
    for name in SCENARIO_ORDER:
        metrics, _, driver = results[name]
        stats = metrics.open_loop
        rows.append({
            "scenario": name,
            "offered/s": round(stats["offered_rate"], 1),
            "arrivals": stats["arrivals"],
            "completed": stats["completed"],
            "shed": stats["shed"],
            "max_queue": stats["max_queue"],
            "tx/s": round(metrics.total_throughput, 1),
            "checkout svc p99 ms": round(
                metrics.latency_of("checkout", "p99") * 1000, 2),
            "checkout queue p99 ms": round(
                metrics.queue_delay_of("checkout", "p99") * 1000, 2),
        })
    print_table("F8: open-loop scenario suite (orleans-eventual)", rows)

    for name in SCENARIO_ORDER:
        metrics, _, driver = results[name]
        stats = metrics.open_loop
        # Arrival conservation: every arrival is dispatched or shed,
        # and everything dispatched eventually completes (the drain is
        # long enough for these scales).
        assert stats["dispatched"] + stats["shed"] == stats["arrivals"]
        assert stats["completed"] > 0
        # Committed work exists and the timeline accounts for it.
        assert metrics.total_throughput > 0
        assert sum(count for _, count in metrics.timeline) == \
            sum(op.ok for op in metrics.ops.values())

    baseline, _, _ = results["baseline"]
    ramp, _, _ = results["overload-ramp"]
    # The baseline runs under capacity: queueing delay is negligible
    # next to service latency.
    assert baseline.queue_delay_of("checkout", "p95") <= \
        baseline.latency_of("checkout", "p95")
    # The ramp crosses the pool's capacity: its queue grows well past
    # the baseline's and queue wait dominates service time at p95.
    assert ramp.open_loop["max_queue"] > \
        10 * max(1, baseline.open_loop["max_queue"])
    assert ramp.queue_delay_of("checkout", "p95") > \
        5 * ramp.latency_of("checkout", "p95")

    flash, _, flash_driver = results["flash-sale"]
    # The hotspot overlay actually fired during the spike window.
    assert flash_driver.sampler.hot_draws > 0
    # The spike shows up as queueing the calm baseline never sees.
    assert flash.queue_delay_of("checkout", "p99") > \
        baseline.queue_delay_of("checkout", "p99")


@pytest.mark.benchmark(group="f8-open-loop")
def test_f8_queueing_separates_platforms(benchmark):
    """Under the same overload ramp, slower platforms queue deeper."""

    def run_pair():
        return {app: run_scenario("overload-ramp", app_name=app)[0]
                for app in ("orleans-eventual", "orleans-transactions")}

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [{
        "app": app,
        "tx/s": round(metrics.total_throughput, 1),
        "max_queue": metrics.open_loop["max_queue"],
        "checkout queue p95 ms": round(
            metrics.queue_delay_of("checkout", "p95") * 1000, 2),
    } for app, metrics in results.items()]
    print_table("F8: overload ramp across platforms", rows)

    eventual = results["orleans-eventual"]
    transactions = results["orleans-transactions"]
    # The transactional platform saturates earlier: same offered ramp,
    # deeper queue.
    assert transactions.open_loop["max_queue"] >= \
        eventual.open_loop["max_queue"]
