"""F7 — workload-mix and skew sensitivity.

Checks that the headline ranking (eventual > statefun > transactions)
is robust across checkout share and product-popularity skew, and that
contention (higher Zipf skew) hurts the lock-based transactional
implementation the most — its costs come from real lock conflicts.
"""

import pytest

from repro.core.workload.config import TransactionMix

from _harness import print_table, run_experiment

APPS = ("orleans-eventual", "orleans-transactions", "statefun")
ZIPF_SWEEP = (0.0, 0.9)
CHECKOUT_SHARES = (40, 80)


def run_grid():
    grid = {}
    for name in APPS:
        for zipf in ZIPF_SWEEP:
            for share in CHECKOUT_SHARES:
                mix = TransactionMix(
                    checkout=share, price_update=10, product_delete=1,
                    update_delivery=4, dashboard=100 - share - 15)
                metrics, _, app = run_experiment(
                    name, workers=32, duration=1.2, seed=41,
                    workload_kwargs={"zipf_s": zipf, "mix": mix})
                grid[(name, zipf, share)] = (metrics, app)
    return grid


@pytest.mark.benchmark(group="f7-sensitivity")
def test_f7_mix_and_skew_sensitivity(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for (name, zipf, share), (metrics, _) in sorted(grid.items()):
        rows.append({
            "app": name, "zipf_s": zipf, "checkout%": share,
            "tx/s": round(metrics.total_throughput, 1),
            "checkout p50 (ms)": round(
                metrics.latency_of("checkout") * 1000, 2),
        })
    print_table("F7: throughput across mix and skew", rows)

    # The ranking holds in every cell of the grid.
    for zipf in ZIPF_SWEEP:
        for share in CHECKOUT_SHARES:
            eventual = grid[("orleans-eventual", zipf,
                             share)][0].total_throughput
            statefun = grid[("statefun", zipf, share)][0].total_throughput
            txn = grid[("orleans-transactions", zipf,
                        share)][0].total_throughput
            assert eventual > statefun > txn, (zipf, share)

    # Higher skew costs the lock-based implementation relatively more
    # at a checkout-heavy mix (more wait-die retries on hot products).
    def skew_penalty(name, share=80):
        uniform = grid[(name, 0.0, share)][0].total_throughput
        skewed = grid[(name, 0.9, share)][0].total_throughput
        return skewed / uniform

    assert skew_penalty("orleans-transactions") \
        < skew_penalty("orleans-eventual")
