"""Shared harness for the experiment benchmarks.

Every benchmark regenerates one table/figure of the paper's evaluation:
it runs the four implementations under the prescribed workload on the
simulated substrate and prints the rows/series the paper reports
(throughput ranking, latency percentiles, criteria matrix, anomaly
counts, ...).  Absolute numbers are simulated-time values; the *shape*
(who wins, by what factor, where crossovers fall) is the reproduction
target.
"""

from __future__ import annotations

import os
import typing

from repro.analysis.anomalies import AnomalyReport
from repro.apps import ALL_APPS, AppConfig
from repro.core import (
    BenchmarkDriver,
    DriverConfig,
    WorkloadConfig,
    audit_app,
)
from repro.runtime import Environment

APP_ORDER = ("orleans-eventual", "orleans-transactions", "statefun",
             "customized-orleans")

DEFAULT_WORKLOAD = dict(sellers=6, customers=48, products_per_seller=6)

#: Quick mode (REPRO_BENCH_QUICK=1): shrink measured windows so the CI
#: smoke job finishes in minutes.  Numbers lose precision but every
#: bench still exercises its full code path and emits its table.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
#: Window multiplier applied by run_experiment in quick mode.
QUICK_DURATION_SCALE = 0.4


def quick_scaled(duration: float) -> float:
    """Scale a measured window for quick mode (min 0.2 sim-seconds)."""
    if not QUICK:
        return duration
    return max(0.2, duration * QUICK_DURATION_SCALE)


def run_experiment(app_name: str,
                   workers: int = 32,
                   duration: float = 1.5,
                   warmup: float = 0.3,
                   drain: float = 1.0,
                   seed: int = 1,
                   silos: int = 2,
                   cores_per_silo: int = 2,
                   workload_kwargs: dict | None = None,
                   app_kwargs: dict | None = None,
                   txn_config=None,
                   statefun_config=None):
    """Run one (app, configuration) cell; returns (metrics, report, app)."""
    env = Environment(seed=seed)
    config = AppConfig(silos=silos, cores_per_silo=cores_per_silo,
                       **(app_kwargs or {}))
    cls = ALL_APPS[app_name]
    extra: dict[str, typing.Any] = {}
    if txn_config is not None and app_name in (
            "orleans-transactions", "customized-orleans"):
        extra["txn_config"] = txn_config
    if statefun_config is not None and app_name == "statefun":
        extra["statefun_config"] = statefun_config
    app = cls(env, config, **extra)
    workload = WorkloadConfig(**{**DEFAULT_WORKLOAD,
                                 **(workload_kwargs or {})})
    driver = BenchmarkDriver(env, app, workload,
                             DriverConfig(workers=workers, warmup=warmup,
                                          duration=quick_scaled(duration),
                                          drain=drain))
    metrics = driver.run()
    report = audit_app(app, driver)
    return metrics, report, app


def print_table(title: str, rows: list[dict]) -> None:
    """Print rows as an aligned text table (the bench's 'figure')."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {col: max(len(str(col)),
                       *(len(str(row.get(col, ""))) for row in rows))
              for col in columns}
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(col, "")).ljust(widths[col])
                        for col in columns))


def anomaly_row(metrics, report) -> dict:
    return AnomalyReport.from_report(report, metrics).row()
