"""P0 — simulator hot-path performance: tx/s and events/s per wall-second.

Unlike the F/A/T benches, which reproduce the paper's *simulated*
results, P0 measures the simulator itself: how many committed
transactions and kernel events one wall-clock second buys, across run
lengths.  This is the perf trajectory for the copy-on-write state
engine — before it, ``copy.deepcopy`` consumed ~82% of wall time and
tx/s-wall degraded ~3x between the shortest and longest cell below
(the simulator was quadratic in run length).

Emits ``BENCH_P0_hotpath.json`` at the repo root; CI uploads it with
the other ``BENCH_*.json`` artifacts so the trajectory accumulates
per-commit data points.
"""

import json
import pathlib
import time

import pytest
from _harness import QUICK, print_table

from repro.apps import ALL_APPS, AppConfig
from repro.core import get_scenario
from repro.runtime import Environment

#: Run lengths (duration_scale of the baseline scenario).  Quick mode
#: drops the longest cell to keep the CI smoke job fast.
SCALES = (0.05, 0.2, 0.5) if not QUICK else (0.05, 0.2)

APP = "orleans-transactions"
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_P0_hotpath.json"
#: Committed before/after reference for the kernel optimisation
#: rounds; echoed into the artifact so a downloaded snapshot is
#: self-describing (the artifact itself is git-ignored).
BASELINE = pathlib.Path(__file__).resolve().parent / "perf_baseline.json"


def run_cell(duration_scale: float, seed: int = 7) -> dict:
    env = Environment(seed=seed)
    app = ALL_APPS[APP](env, AppConfig(silos=2, cores_per_silo=2))
    driver = get_scenario("baseline").build_driver(
        env, app, duration_scale=duration_scale, data_seed=seed)
    start = time.perf_counter()
    metrics = driver.run()
    wall = time.perf_counter() - start
    committed = sum(op.ok for op in metrics.ops.values())
    return {
        "duration_scale": duration_scale,
        "wall_s": round(wall, 4),
        "committed_tx": committed,
        "tx_per_wall_s": round(committed / wall, 1),
        "kernel_events": env.events_processed,
        "events_per_wall_s": round(env.events_processed / wall, 1),
    }


@pytest.mark.benchmark(group="p0-hotpath")
def test_p0_hotpath_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_cell(scale) for scale in SCALES],
        rounds=1, iterations=1)
    print_table(f"P0: hot-path throughput per wall-second ({APP})", rows)

    baseline = json.loads(BASELINE.read_text())
    OUTPUT.write_text(json.dumps({
        "bench": "p0_hotpath",
        "app": APP,
        "quick": QUICK,
        "rows": rows,
        "reference": {
            "recorded": baseline["recorded"],
            "p0_hotpath": baseline["p0_hotpath"],
            "floor_events_per_wall_s":
                baseline["floor"]["floor_events_per_wall_s"],
        },
    }, indent=2) + "\n")

    for row in rows:
        assert row["committed_tx"] > 0
        assert row["events_per_wall_s"] > 0
    # The whole point of the CoW engine: tx/s-wall must not collapse
    # with run length (pre-engine ~3x, now ~1.2x).  Single-shot cells
    # are noisy on shared CI, so this is only a catastrophe guard —
    # the strict best-of-N ratio lives in tests/test_perf_scaling.py.
    assert rows[0]["tx_per_wall_s"] < 3.0 * rows[-1]["tx_per_wall_s"]
