"""F3 — checkout latency percentiles per implementation.

Paper claims (§III): ACID transactions come "at a considerable
overhead" relative to the eventual baseline, while the customized
stack "introduces low overhead" over Orleans Transactions.
"""

import pytest

from _harness import APP_ORDER, print_table, run_experiment


def run_cells():
    cells = {}
    for name in APP_ORDER:
        metrics, _, _ = run_experiment(name, workers=48, duration=1.5,
                                       seed=9)
        cells[name] = metrics
    return cells


@pytest.mark.benchmark(group="f3-latency")
def test_f3_checkout_latency(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    rows = []
    for name in APP_ORDER:
        latency = cells[name].ops["checkout"].latency
        rows.append({
            "app": name,
            "p50 (ms)": round(latency["p50"] * 1000, 2),
            "p95 (ms)": round(latency["p95"] * 1000, 2),
            "p99 (ms)": round(latency["p99"] * 1000, 2),
            "mean (ms)": round(latency["mean"] * 1000, 2),
        })
    print_table("F3: checkout latency at 48 workers", rows)

    p50 = {name: cells[name].ops["checkout"].latency["p50"]
           for name in APP_ORDER}
    # Transactions add considerable latency over the eventual baseline.
    assert p50["orleans-transactions"] > 2 * p50["orleans-eventual"]
    # Statefun sits between the two.
    assert p50["orleans-eventual"] < p50["statefun"] \
        < p50["orleans-transactions"]
    # Customized adds low overhead on top of transactions.
    assert p50["customized-orleans"] < 1.6 * p50["orleans-transactions"]
    # Percentiles are internally consistent.
    for name in APP_ORDER:
        latency = cells[name].ops["checkout"].latency
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
