"""F6 — anomaly counts per implementation under message loss.

The flip side of the throughput ranking: the eventual implementation's
speed is paid for in anomalies.  Under an identical workload with 2%
message loss, this bench counts criteria violations per 10k submitted
transactions for each implementation.
"""

import pytest

from _harness import APP_ORDER, anomaly_row, print_table, run_experiment


def run_cells():
    cells = {}
    for name in APP_ORDER:
        metrics, report, _ = run_experiment(
            name, workers=24, duration=1.5, seed=31,
            app_kwargs={"drop_probability": 0.02})
        cells[name] = (metrics, report)
    return cells


@pytest.mark.benchmark(group="f6-anomalies")
def test_f6_anomalies_under_message_loss(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    rows = [anomaly_row(metrics, report)
            for metrics, report in cells.values()]
    print_table("F6: criteria violations under 2% message loss", rows)

    def violations(name, criterion):
        return cells[name][1].results[criterion].violations

    # Eventual: atomicity, replication, dashboard and ordering anomalies.
    assert violations("orleans-eventual", "C1-atomicity") > 0
    assert violations("orleans-eventual", "C5-event-ordering") > 0
    # ACID keeps atomicity and integrity even under loss.
    for name in ("orleans-transactions", "customized-orleans"):
        assert violations(name, "C1-atomicity") == 0, name
        assert violations(name, "C3-integrity") == 0, name
    # Exactly-once dataflow also keeps atomicity (guaranteed delivery).
    assert violations("statefun", "C1-atomicity") == 0
    # The customized stack is anomaly-free across the board.
    assert cells["customized-orleans"][1].all_pass
    # Anomaly ordering: eventual accumulates the most violations.
    totals = {name: sum(r.violations
                        for r in cells[name][1].results.values())
              for name in APP_ORDER}
    assert totals["orleans-eventual"] == max(totals.values())
