"""E0 — SLO-driven elasticity vs fixed provisioning.

The flash-sale burst from the fault-tolerance suite, re-run as an
elasticity experiment: the ``autoscale-flash-sale`` scenario starts on
two single-core silos and lets the SLO-driven autoscaler ride the
burst, against a fixed four-silo baseline provisioned for the peak
(the controller observes and samples but never acts, so both runs
export the same control-block shape).

Asserted shape, per implementation:

* the elastic run ends inside the SLO — every stack recovers its p95
  by the quiet tail of the run;
* the elastic run spends *strictly fewer* silo-seconds above the ideal
  capacity curve than the peak-provisioned baseline — elasticity must
  actually buy something;
* the controller reacts: on every stack that breaches, the first
  applied ``add_silo`` lands within one second of the first breach.

Emits ``BENCH_E0_elasticity.json`` at the repo root; CI uploads it
with the other ``BENCH_*.json`` artifacts and
``tools/check_perf_floor.py`` gates the elastic SLO-violation time
against the committed floor.
"""

import dataclasses
import json
import pathlib

import pytest
from _harness import APP_ORDER, QUICK, print_table

from repro.analysis.elasticity import elasticity_report
from repro.control import run_scenario
from repro.core.scenarios import get_scenario

SEED = 7
#: Quick mode compresses the experiment clock; time_scaled stretches
#: the controller cadence with it, so the shape is preserved.
DURATION_SCALE = 0.5 if QUICK else 1.0

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_E0_elasticity.json"


def _fixed_baseline_scenario():
    """autoscale-flash-sale with the controller observing only."""
    scenario = get_scenario("autoscale-flash-sale")
    config = dataclasses.replace(scenario.autoscaler(), enabled=False)
    return dataclasses.replace(
        scenario, name="autoscale-flash-sale-fixed4",
        autoscaler=lambda: config)


def run_pair(app_name: str):
    """(elastic report, fixed-4 report) for one implementation."""
    elastic_run = run_scenario(
        "autoscale-flash-sale", app=app_name, seed=SEED,
        duration_scale=DURATION_SCALE)
    fixed_run = run_scenario(
        _fixed_baseline_scenario(), app=app_name, seed=SEED,
        duration_scale=DURATION_SCALE, silos=4)
    elastic = elasticity_report(
        elastic_run.metrics.open_loop["control"], app=app_name)
    fixed = elasticity_report(
        fixed_run.metrics.open_loop["control"], app=app_name)
    return elastic, fixed


def run_all():
    return {name: run_pair(name) for name in APP_ORDER}


@pytest.mark.benchmark(group="e0-elasticity")
def test_e0_elasticity(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in APP_ORDER:
        for mode, report in zip(("elastic", "fixed-4"), results[name]):
            rows.append({"cell": f"{name}:{mode}", "mode": mode,
                         **report.summary_row()})
    print_table("E0: elastic vs peak-provisioned flash sale",
                [{key: value for key, value in row.items()
                  if key != "cell"} for row in rows])

    OUTPUT.write_text(json.dumps({
        "bench": "e0_elasticity",
        "quick": QUICK,
        "seed": SEED,
        "duration_scale": DURATION_SCALE,
        "rows": rows,
        "apps": {name: {"elastic": elastic.as_dict(),
                        "fixed": fixed.as_dict()}
                 for name, (elastic, fixed) in results.items()},
    }, indent=2, sort_keys=True) + "\n")

    interval = 0.25 * DURATION_SCALE
    for name, (elastic, fixed) in results.items():
        # The burst must end inside the SLO on every stack.
        assert elastic.recovered, f"{name}: run ended out of SLO"
        # Elasticity must beat peak provisioning on wasted capacity —
        # strictly, or the controller is not earning its keep.
        assert (elastic.over_provisioned_area
                < fixed.over_provisioned_area), \
            f"{name}: over-area {elastic.over_provisioned_area} !< " \
            f"fixed {fixed.over_provisioned_area}"
        assert elastic.silo_seconds < fixed.silo_seconds, name
        # When the SLO broke, the controller must have reacted fast:
        # hysteresis (2 ticks) + one sample of slack.
        if elastic.slo_violation_seconds > 0:
            assert elastic.scaling_lag is not None, \
                f"{name}: breached but never scaled"
            assert elastic.scaling_lag <= 4 * interval, \
                f"{name}: scaling lag {elastic.scaling_lag}"
            assert elastic.scale_ups >= 1
        # The observing baseline must never act.
        assert fixed.scale_ups == 0 and fixed.scale_downs == 0
        assert fixed.peak_silos == fixed.min_silos == 4
