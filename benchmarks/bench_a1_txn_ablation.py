"""A1 — ablation: where does the transactional overhead come from?

DESIGN.md attributes Orleans Transactions' "considerable overhead" to
two mechanisms: lock waits/wait-die retries, and 2PC rounds with
durable log forces.  This ablation toggles each off and measures the
recovered throughput, confirming the cost model is mechanical rather
than scripted.
"""

import pytest

from repro.txn import LockManager, TxnConfig

from _harness import print_table, run_experiment

VARIANTS = ("full", "no-2pc", "no-locks", "neither")


def run_variant(variant: str):
    txn_config = TxnConfig()
    if variant in ("no-2pc", "neither"):
        txn_config.enable_two_phase_commit = False
    disable_locks = variant in ("no-locks", "neither")
    LockManager.disabled = disable_locks
    try:
        metrics, _, app = run_experiment(
            "orleans-transactions", workers=32, duration=1.2, seed=43,
            txn_config=txn_config)
    finally:
        LockManager.disabled = False
    return metrics


def run_all():
    return {variant: run_variant(variant) for variant in VARIANTS}


@pytest.mark.benchmark(group="a1-txn-ablation")
def test_a1_transaction_cost_ablation(benchmark):
    cells = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for variant in VARIANTS:
        metrics = cells[variant]
        rows.append({
            "variant": variant,
            "tx/s": round(metrics.total_throughput, 1),
            "checkout p50 (ms)": round(
                metrics.latency_of("checkout") * 1000, 2),
            "retries": metrics.runtime["transactions"]["retries"],
        })
    print_table("A1: transactional overhead ablation", rows)

    full = cells["full"].total_throughput
    # Removing either cost source recovers throughput...
    assert cells["no-2pc"].total_throughput > full
    assert cells["neither"].total_throughput > full
    # ...and with both removed, latency approaches the raw actor cost.
    assert cells["neither"].latency_of("checkout") \
        < 0.7 * cells["full"].latency_of("checkout")
    # Locking is what produces wait-die retries.
    assert cells["full"].runtime["transactions"]["retries"] \
        >= cells["no-locks"].runtime["transactions"]["retries"]
