"""T1 — the criteria-compliance matrix.

Paper claim (§III/IV): "no single data platform supports all the core
data management requirements"; the customized Orleans stack is the only
configuration meeting every criterion.

Each app runs the default mix (with a pinch of message loss so the
atomicity criterion is actually exercised) and is audited against all
five criteria; the matrix printed here is the paper's core qualitative
result.
"""

import pytest

from _harness import APP_ORDER, print_table, run_experiment


def build_matrix():
    rows = []
    expectations = {}
    for name in APP_ORDER:
        metrics, report, _ = run_experiment(
            name, workers=16, duration=1.5, seed=5,
            app_kwargs={"drop_probability": 0.02})
        rows.append(report.row())
        expectations[name] = report
    return rows, expectations


@pytest.mark.benchmark(group="t1-criteria")
def test_t1_criteria_matrix(benchmark):
    rows, reports = benchmark.pedantic(build_matrix, rounds=1,
                                       iterations=1)
    print_table("T1: data management criteria compliance", rows)

    # The paper's qualitative result, enforced:
    assert reports["customized-orleans"].all_pass
    for other in ("orleans-eventual", "orleans-transactions", "statefun"):
        assert not reports[other].all_pass
    # Eventual violates atomicity under loss; transactional apps do not.
    assert not reports["orleans-eventual"].results[
        "C1-atomicity"].passed
    assert reports["orleans-transactions"].results[
        "C1-atomicity"].passed
    # Only the customized stack orders payment before shipment.
    assert reports["customized-orleans"].results[
        "C5-event-ordering"].passed
    assert not reports["orleans-eventual"].results[
        "C5-event-ordering"].passed
