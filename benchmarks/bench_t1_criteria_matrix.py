"""T1 — the criteria-compliance matrix.

Paper claim (§III/IV): "no single data platform supports all the core
data management requirements"; the customized Orleans stack is the only
configuration meeting every criterion.

Each app runs the default mix (with a pinch of message loss so the
atomicity criterion is actually exercised) and is audited against the
full criteria set; the matrix printed here is the paper's core
qualitative result.  A second matrix replays the unhappy-path
scenarios (returns, payment declines, duplicate external submits) so
the compensation and exactly-once audits run on every stack too.
"""

import pytest

from _harness import APP_ORDER, QUICK, print_table, run_experiment
from repro.apps import ALL_APPS, AppConfig
from repro.core import audit_app
from repro.core.scenarios import get_scenario
from repro.runtime import Environment

TAIL_SCENARIOS = ("return-storm", "payment-flaky", "duplicate-ingest")


def build_matrix():
    rows = []
    expectations = {}
    for name in APP_ORDER:
        metrics, report, _ = run_experiment(
            name, workers=16, duration=1.5, seed=5,
            app_kwargs={"drop_probability": 0.02})
        rows.append(report.row())
        expectations[name] = report
    return rows, expectations


@pytest.mark.benchmark(group="t1-criteria")
def test_t1_criteria_matrix(benchmark):
    rows, reports = benchmark.pedantic(build_matrix, rounds=1,
                                       iterations=1)
    print_table("T1: data management criteria compliance", rows)

    # The paper's qualitative result, enforced:
    assert reports["customized-orleans"].all_pass
    for other in ("orleans-eventual", "orleans-transactions", "statefun"):
        assert not reports[other].all_pass
    # Eventual violates atomicity under loss; transactional apps do not.
    assert not reports["orleans-eventual"].results[
        "C1-atomicity"].passed
    assert reports["orleans-transactions"].results[
        "C1-atomicity"].passed
    # Only the customized stack orders payment before shipment.
    assert reports["customized-orleans"].results[
        "C5-event-ordering"].passed
    assert not reports["orleans-eventual"].results[
        "C5-event-ordering"].passed


def build_tail_matrix():
    """Audit every app under the unhappy-path scenario suite."""
    duration_scale = 0.4 if QUICK else 1.0
    reports = {}
    rows = []
    for scenario_name in TAIL_SCENARIOS:
        for app_name in APP_ORDER:
            scenario = get_scenario(scenario_name)
            # Seed chosen so the lossy retry on the eventual stack
            # demonstrably orphans at least one registration in both
            # quick and full windows.
            env = Environment(seed=7)
            app = ALL_APPS[app_name](env, AppConfig(
                silos=2, cores_per_silo=2,
                approval_rate=scenario.approval_rate,
                drop_probability=scenario.drop_probability))
            driver = scenario.build_driver(
                env, app, rate_scale=1.0, duration_scale=duration_scale,
                data_seed=7)
            driver.run()
            report = audit_app(app, driver)
            reports[(scenario_name, app_name)] = report
            rows.append({"scenario": scenario_name, **report.row()})
    return rows, reports


@pytest.mark.benchmark(group="t1-criteria")
def test_t1_tail_path_criteria(benchmark):
    rows, reports = benchmark.pedantic(build_tail_matrix, rounds=1,
                                       iterations=1)
    print_table("T1b: criteria under returns / declines / duplicate "
                "submits", rows)

    # Exactly-once ingestion holds on every stack with a transactional
    # or replay-based front door, under every tail scenario.
    for scenario_name in TAIL_SCENARIOS:
        for app_name in ("orleans-transactions", "statefun",
                         "customized-orleans"):
            c6 = reports[(scenario_name, app_name)].results[
                "C6-exactly-once-ingest"]
            assert c6.violations == 0, (scenario_name, app_name)
    # duplicate-ingest actually exercises the audit on every app...
    for app_name in APP_ORDER:
        assert reports[("duplicate-ingest", app_name)].results[
            "C6-exactly-once-ingest"].checked > 0, app_name
    # ...and quantifies a nonzero anomaly window on the at-least-once
    # retry of the eventual stack under heavy loss.
    eventual_c6 = reports[("duplicate-ingest", "orleans-eventual")
                          ].results["C6-exactly-once-ingest"]
    assert eventual_c6.violations > 0

    # The payment-failure abort leaks no reservations or spend on the
    # transactional stacks, and the return saga never stalls there.
    for scenario_name in ("payment-flaky", "return-storm"):
        for app_name in ("orleans-transactions", "customized-orleans"):
            assert reports[(scenario_name, app_name)].results[
                "C1-atomicity"].passed, (scenario_name, app_name)
