#!/usr/bin/env python3
"""Verify that relative markdown links in README.md and docs/ resolve.

Scans every markdown link/image target in ``README.md`` and
``docs/**/*.md``; a relative target that does not exist on disk fails
the check.  Skipped: absolute URLs (``scheme://``, ``mailto:``) and
targets that resolve outside the repository root (e.g. the CI badge's
``../../actions/...`` GitHub path, which only exists server-side).

Exit status: 0 when every link resolves, 1 otherwise (the offending
``file: target`` pairs are printed).  Run from anywhere::

    python tools/check_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys

#: ``[text](target)`` / ``![alt](target)``; the target is captured up
#: to the first ``#`` (fragment), whitespace or closing parenthesis.
LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)#\s>]+)[^)]*\)")

ROOT = pathlib.Path(__file__).resolve().parent.parent


def check(root: pathlib.Path = ROOT) -> list[str]:
    """Return ``"file: target"`` for every broken relative link."""
    files = [root / "README.md",
             *sorted((root / "docs").glob("**/*.md"))]
    broken = []
    for path in files:
        if not path.exists():
            continue
        for match in LINK.finditer(path.read_text()):
            target = match.group(1)
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = (path.parent / target).resolve()
            try:
                resolved.relative_to(root)
            except ValueError:
                continue  # escapes the repo (e.g. badge URL) — skip
            if not resolved.exists():
                broken.append(
                    f"{path.relative_to(root)}: {target}")
    return broken


def main() -> int:
    broken = check()
    if broken:
        print("broken relative links:")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print("all relative links in README.md and docs/ resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
