#!/usr/bin/env python3
"""Merge ``BENCH_*.json`` artifacts into a markdown trajectory table.

Every benchmark run drops a ``BENCH_<name>.json`` file at the repo root
(git-ignored; CI uploads them as artifacts).  This tool lines up any
number of those snapshots — the current tree plus archived copies from
earlier commits or CI runs — and renders one markdown table per bench
so the performance trajectory is readable at a glance::

    python tools/bench_trends.py                    # current tree only
    python tools/bench_trends.py snapshots/pr3 .    # archived dir vs now
    python tools/bench_trends.py a/BENCH_P0_hotpath.json b/ -o TRENDS.md

Each positional argument is either a directory containing
``BENCH_*.json`` files (labelled by its directory name; the repo root /
``.`` is labelled ``current``) or a single ``BENCH_*.json`` file.
Later arguments become later columns, so list snapshots oldest-first.

Row keys per bench kind: P0 rows are keyed by ``duration_scale``, P1
rows by ``cell``, M0 rows by ``silos``; unknown benches fall back to
the first field of each row.  The headline metric is events/s where
present (M0 reports speedup and wall times instead).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: bench name -> (row key field, [(column header, row field)...])
_LAYOUTS = {
    "p0_hotpath": ("duration_scale",
                   [("events/s", "events_per_wall_s"),
                    ("tx/s", "tx_per_wall_s")]),
    "p1_kernel": ("cell",
                  [("events/s", "events_per_wall_s"),
                   ("pool hit", "pool_hit_rate")]),
    "m0_matrix": ("cell",
                  [("serial s", "serial_wall_s"),
                   ("parallel s", "parallel_wall_s")]),
    "p2_scale": ("keys",
                 [("peak MB", "peak_tracked_mb"),
                  ("tx/s wall", "tx_per_wall_s")]),
    "e0_elasticity": ("cell",
                      [("violation s", "violation_s"),
                       ("over silo-s", "over_area")]),
}


def _fmt(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:g}"
    return str(value)


def load_snapshot(path: pathlib.Path) -> dict[str, dict]:
    """Map bench name -> parsed payload for one snapshot location."""
    files = [path] if path.is_file() else sorted(path.glob("BENCH_*.json"))
    benches: dict[str, dict] = {}
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except (OSError, ValueError) as exc:
            print(f"warning: skipping {file}: {exc}", file=sys.stderr)
            continue
        name = payload.get("bench")
        if name and isinstance(payload.get("rows"), list):
            benches[name] = payload
    return benches


def _label(path: pathlib.Path) -> str:
    resolved = path.resolve()
    if resolved == REPO_ROOT or resolved.parent == REPO_ROOT:
        return "current"
    return resolved.stem if path.is_file() else resolved.name


def _row_layout(bench: str, rows: list[dict]):
    if bench in _LAYOUTS:
        return _LAYOUTS[bench]
    if not rows:
        return None, []
    first = next(iter(rows[0]), None)
    metrics = [(field, field) for field in rows[0]
               if field != first and isinstance(rows[0][field], (int, float))]
    return first, metrics[:2]


def render(snapshots: list[tuple[str, dict[str, dict]]]) -> str:
    """One markdown section per bench, one column group per snapshot."""
    bench_names: list[str] = []
    for _, benches in snapshots:
        for name in benches:
            if name not in bench_names:
                bench_names.append(name)
    if not bench_names:
        return ("No `BENCH_*.json` artifacts found — run the benchmarks "
                "first (`python -m pytest benchmarks/ -q -s`).\n")

    out: list[str] = ["# Benchmark trajectory", ""]
    for bench in bench_names:
        holders = [(label, benches[bench]) for label, benches in snapshots
                   if bench in benches]
        # Lay the table out from the newest snapshot that actually has
        # rows — an interrupted run may legitimately record none.
        layout_rows = next(
            (payload["rows"] for _, payload in reversed(holders)
             if payload["rows"]), [])
        key_field, metrics = _row_layout(bench, layout_rows)
        out += [f"## {bench}", ""]
        if not layout_rows:
            out += ["*(no rows recorded in any snapshot)*", ""]
        if bench == "m0_matrix":
            # Matrix speedup is a whole-run number, not per-row.
            summary = ", ".join(
                f"{label}: {_fmt(payload.get('speedup'))}× on "
                f"{_fmt(payload.get('cores'))} cores"
                for label, payload in holders)
            out += [f"Matrix speedup — {summary}.", ""]
        if any(payload.get("quick") for _, payload in holders):
            out += ["*(at least one snapshot ran in quick mode — "
                    "compare columns with care)*", ""]

        header = [key_field or "row"]
        for label, _ in holders:
            header += [f"{label} {col}" for col, _ in metrics]
        out.append("| " + " | ".join(header) + " |")
        out.append("|" + "---|" * len(header))

        keys: list = []
        for _, payload in holders:
            for row in payload["rows"]:
                key = row.get(key_field)
                if key not in keys:
                    keys.append(key)
        for key in keys:
            cells = [_fmt(key)]
            for _, payload in holders:
                row = next((r for r in payload["rows"]
                            if r.get(key_field) == key), None)
                for _, field in metrics:
                    cells.append(_fmt(row.get(field)) if row else "—")
            out.append("| " + " | ".join(cells) + " |")
        out.append("")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n", 1)[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "sources", nargs="*", type=pathlib.Path,
        help="BENCH_*.json files or directories holding them, "
             "oldest snapshot first (default: the repo root)")
    parser.add_argument(
        "-o", "--output", type=pathlib.Path, default=None,
        help="write the markdown here instead of stdout")
    args = parser.parse_args(argv)

    sources = args.sources or [REPO_ROOT]
    snapshots = []
    for source in sources:
        if not source.exists():
            print(f"error: {source} does not exist", file=sys.stderr)
            return 2
        snapshots.append((_label(source), load_snapshot(source)))

    text = render(snapshots)
    if args.output:
        args.output.write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
