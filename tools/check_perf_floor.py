#!/usr/bin/env python3
"""CI perf regression gate for the P0 hot-path benchmark.

Compares the freshly generated ``BENCH_P0_hotpath.json`` (the bench
smoke job runs with ``REPRO_BENCH_QUICK=1``) against the committed
floor in ``benchmarks/perf_baseline.json``:

* best events/s across rows below 90 % of the floor  -> warning
* best events/s across rows below 75 % of the floor  -> exit 1

The floor is deliberately set far under typical dev-machine numbers
(shared CI runners are slow and noisy), so tripping the hard gate
means a real, large regression — an accidental O(n) loop in the
dispatch path, not scheduler jitter.  Update the floor in
``benchmarks/perf_baseline.json`` when the kernel genuinely changes
speed class.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_P0_hotpath.json"
SCALE_ARTIFACT = REPO_ROOT / "BENCH_P2_scale.json"
ELASTICITY_ARTIFACT = REPO_ROOT / "BENCH_E0_elasticity.json"
BASELINE = REPO_ROOT / "benchmarks" / "perf_baseline.json"

WARN_FRACTION = 0.90
FAIL_FRACTION = 0.75
#: Memory axis (P2): peak tracked MB at 10^6 keys may be at most this
#: multiple of the 10^5-key cell under identical traffic — the lazy
#: dataset + working-set budget contract.  Eager scaling would be ~10x.
MEMORY_RATIO_LIMIT = 3.0


def check_memory_axis() -> int:
    """Gate the P2 world-size memory ratio; skip if the bench didn't run."""
    if not SCALE_ARTIFACT.exists():
        print(f"memory axis: {SCALE_ARTIFACT.name} not found — skipped "
              "(run bench_p2_scale.py to enable)")
        return 0
    payload = json.loads(SCALE_ARTIFACT.read_text())
    by_keys = {row["keys"]: row for row in payload.get("rows", ())}
    small = by_keys.get(100_000)
    large = by_keys.get(1_000_000)
    if not small or not large or not small.get("peak_tracked_mb"):
        print("memory axis: P2 artifact lacks the 10^5/10^6 cells — "
              "skipped")
        return 0
    ratio = large["peak_tracked_mb"] / small["peak_tracked_mb"]
    print(f"P2 memory ratio 10^6/10^5 keys: {ratio:.2f}x "
          f"({large['peak_tracked_mb']:.1f} MB / "
          f"{small['peak_tracked_mb']:.1f} MB; limit "
          f"{MEMORY_RATIO_LIMIT:.1f}x)")
    if ratio >= MEMORY_RATIO_LIMIT:
        print(f"FAIL: memory grows {ratio:.2f}x from 10^5 to 10^6 keys "
              "— lazy-dataset or working-set control has regressed",
              file=sys.stderr)
        return 1
    print("memory axis gate: OK")
    return 0


def check_elasticity_axis(baseline: dict) -> int:
    """Gate the E0 SLO-violation time; skip when bench or floor absent."""
    floor = baseline.get("elasticity", {}).get("max_violation_seconds")
    if floor is None:
        print("elasticity axis: no floor committed in "
              "perf_baseline.json — skipped")
        return 0
    if not ELASTICITY_ARTIFACT.exists():
        print(f"elasticity axis: {ELASTICITY_ARTIFACT.name} not found — "
              "skipped (run bench_e0_elasticity.py to enable)")
        return 0
    payload = json.loads(ELASTICITY_ARTIFACT.read_text())
    scale = payload.get("duration_scale") or 1.0
    status = 0
    for app, pair in sorted(payload.get("apps", {}).items()):
        elastic = pair["elastic"]
        # Quick mode compresses the experiment clock; normalise the
        # violation time back to the full-length run for the gate.
        violation = elastic["slo_violation_seconds"] / scale
        print(f"E0 {app}: violation {violation:.2f}s normalised "
              f"(limit {floor:.1f}s), "
              f"recovered={elastic['recovered']}")
        if not elastic["recovered"]:
            print(f"FAIL: {app} ended the elastic flash sale out of "
                  "SLO — the autoscaler no longer restores the p95",
                  file=sys.stderr)
            status = 1
        elif violation > floor:
            print(f"FAIL: {app} spent {violation:.2f}s out of SLO "
                  f"(limit {floor:.1f}s) — scale-out has become too "
                  "slow", file=sys.stderr)
            status = 1
    if status == 0:
        print("elasticity gate: OK")
    return status


def main() -> int:
    if not ARTIFACT.exists():
        print(f"error: {ARTIFACT.name} not found — run the P0 bench first "
              "(REPRO_BENCH_QUICK=1 python -m pytest "
              "benchmarks/bench_p0_hotpath.py -q -s)", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE.read_text())
    floor = baseline["floor"]["floor_events_per_wall_s"]

    payload = json.loads(ARTIFACT.read_text())
    rates = [row["events_per_wall_s"] for row in payload["rows"]
             if row.get("events_per_wall_s")]
    if not rates:
        print("error: no events_per_wall_s rows in the artifact",
              file=sys.stderr)
        return 2
    best = max(rates)

    print(f"P0 best events/s: {best:,.0f}  (floor {floor:,.0f}; "
          f"warn <{WARN_FRACTION:.0%}, fail <{FAIL_FRACTION:.0%})")
    if best < floor * FAIL_FRACTION:
        print(f"FAIL: {best:,.0f} events/s is below "
              f"{FAIL_FRACTION:.0%} of the committed floor — "
              "kernel hot path has regressed badly", file=sys.stderr)
        return 1
    if best < floor * WARN_FRACTION:
        print(f"WARNING: {best:,.0f} events/s is below "
              f"{WARN_FRACTION:.0%} of the committed floor — "
              "check recent kernel changes (may be runner noise)")
    else:
        print("perf floor gate: OK")
    return max(check_memory_axis(), check_elasticity_axis(baseline))


if __name__ == "__main__":
    raise SystemExit(main())
