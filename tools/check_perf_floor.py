#!/usr/bin/env python3
"""CI perf regression gate for the P0 hot-path benchmark.

Compares the freshly generated ``BENCH_P0_hotpath.json`` (the bench
smoke job runs with ``REPRO_BENCH_QUICK=1``) against the committed
floor in ``benchmarks/perf_baseline.json``:

* best events/s across rows below 90 % of the floor  -> warning
* best events/s across rows below 75 % of the floor  -> exit 1

The floor is deliberately set far under typical dev-machine numbers
(shared CI runners are slow and noisy), so tripping the hard gate
means a real, large regression — an accidental O(n) loop in the
dispatch path, not scheduler jitter.  Update the floor in
``benchmarks/perf_baseline.json`` when the kernel genuinely changes
speed class.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_P0_hotpath.json"
BASELINE = REPO_ROOT / "benchmarks" / "perf_baseline.json"

WARN_FRACTION = 0.90
FAIL_FRACTION = 0.75


def main() -> int:
    if not ARTIFACT.exists():
        print(f"error: {ARTIFACT.name} not found — run the P0 bench first "
              "(REPRO_BENCH_QUICK=1 python -m pytest "
              "benchmarks/bench_p0_hotpath.py -q -s)", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE.read_text())
    floor = baseline["floor"]["floor_events_per_wall_s"]

    payload = json.loads(ARTIFACT.read_text())
    rates = [row["events_per_wall_s"] for row in payload["rows"]
             if row.get("events_per_wall_s")]
    if not rates:
        print("error: no events_per_wall_s rows in the artifact",
              file=sys.stderr)
        return 2
    best = max(rates)

    print(f"P0 best events/s: {best:,.0f}  (floor {floor:,.0f}; "
          f"warn <{WARN_FRACTION:.0%}, fail <{FAIL_FRACTION:.0%})")
    if best < floor * FAIL_FRACTION:
        print(f"FAIL: {best:,.0f} events/s is below "
              f"{FAIL_FRACTION:.0%} of the committed floor — "
              "kernel hot path has regressed badly", file=sys.stderr)
        return 1
    if best < floor * WARN_FRACTION:
        print(f"WARNING: {best:,.0f} events/s is below "
              f"{WARN_FRACTION:.0%} of the committed floor — "
              "check recent kernel changes (may be runner noise)")
    else:
        print("perf floor gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
