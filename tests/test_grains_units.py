"""Focused unit tests on individual grain behaviours (eventual app)."""

from repro.actors import Cluster, ClusterConfig
from repro.apps import grains_eventual as grains
from repro.apps.base import AppConfig
from repro.runtime import Environment


class FakeApp:
    """Just enough app context for grains under test."""

    def __init__(self, cluster):
        self.config = AppConfig()
        self.cluster = cluster

    def shipment_partition(self, order_id):
        return "part-0"


def make_cluster(seed=1):
    env = Environment(seed=seed)
    cluster = Cluster(env, ClusterConfig(silos=1, cores_per_silo=2))
    cluster.app = FakeApp(cluster)
    return env, cluster


def call(env, ref, method, *args):
    promise = ref.call(method, *args)
    return env.run(until=promise)


def install(cluster, ref, data):
    grain = cluster.grain_instance(ref)
    grain.data = data
    return grain


class TestReplicaGrain:
    def test_last_writer_wins_under_reordered_updates(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.ReplicaGrain, "1/1")
        install(cluster, ref, {"price_cents": 100, "version": 1,
                               "active": True})
        # Updates arrive out of order: v3 then v2.
        assert call(env, ref, "apply_update", 300, 3) is True
        assert call(env, ref, "apply_update", 200, 2) is False
        price = call(env, ref, "get_price")
        assert price["price_cents"] == 300
        assert price["version"] == 3

    def test_stale_delete_ignored(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.ReplicaGrain, "1/1")
        install(cluster, ref, {"price_cents": 100, "version": 5,
                               "active": True})
        assert call(env, ref, "apply_delete", 3) is False
        assert call(env, ref, "get_price") is not None

    def test_delete_hides_price(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.ReplicaGrain, "1/1")
        install(cluster, ref, {"price_cents": 100, "version": 1,
                               "active": True})
        assert call(env, ref, "apply_delete", 2) is True
        assert call(env, ref, "get_price") is None

    def test_update_on_unknown_product_bootstraps_replica(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.ReplicaGrain, "9/9")
        assert call(env, ref, "apply_update", 700, 4) is True
        price = call(env, ref, "get_price")
        assert price == {"price_cents": 700, "version": 4,
                         "active": True}


class TestStockGrain:
    def setup_stock(self, qty=10):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.StockGrain, "1/1")
        install(cluster, ref, {"product_id": 1, "seller_id": 1,
                               "qty_available": qty, "qty_reserved": 0,
                               "version": 1, "active": True})
        return env, cluster, ref

    def test_reserve_up_to_capacity(self):
        env, cluster, ref = self.setup_stock(qty=5)
        assert call(env, ref, "reserve", 5) is True
        assert call(env, ref, "reserve", 1) is False

    def test_reserve_on_uninstalled_stock_fails(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.StockGrain, "9/9")
        assert call(env, ref, "reserve", 1) is False

    def test_confirm_and_cancel_roundtrip(self):
        env, cluster, ref = self.setup_stock(qty=10)
        call(env, ref, "reserve", 4)
        call(env, ref, "confirm", 2)
        call(env, ref, "cancel", 2)
        grain = cluster.grain_instance(ref)
        assert grain.data["qty_available"] == 8
        assert grain.data["qty_reserved"] == 0

    def test_deactivate_blocks_reservations(self):
        env, cluster, ref = self.setup_stock()
        assert call(env, ref, "deactivate", 2) is True
        assert call(env, ref, "reserve", 1) is False


class TestCartGrain:
    def test_add_item_reads_replica_price(self):
        env, cluster = make_cluster()
        replica = cluster.grain_ref(grains.ReplicaGrain, "1/1")
        install(cluster, replica, {"price_cents": 450, "version": 7,
                                   "active": True})
        cart = cluster.grain_ref(grains.CartGrain, "5")
        result = call(env, cart, "add_item", 1, 1, 2, 0)
        assert result == {"added": True, "price_version": 7}
        grain = cluster.grain_instance(cart)
        assert grain.data["items"]["1/1"]["unit_price_cents"] == 450

    def test_add_unavailable_item_rejected(self):
        env, cluster = make_cluster()
        cart = cluster.grain_ref(grains.CartGrain, "5")
        result = call(env, cart, "add_item", 9, 9, 1, 0)
        assert result == {"added": False, "reason": "unavailable"}

    def test_checkout_empty_cart_rejected_without_order_call(self):
        env, cluster = make_cluster()
        cart = cluster.grain_ref(grains.CartGrain, "5")
        result = call(env, cart, "checkout", "o1", "credit_card")
        assert result["status"] == "rejected"
        # No order grain was ever activated.
        order_key = ("OrderGrain", "5")
        assert all(order_key not in silo.activations
                   for silo in cluster.silos)


class TestPaymentGrain:
    def test_process_is_deterministic_per_order(self):
        env, cluster = make_cluster()
        order = {"order_id": "oX", "customer_id": 1,
                 "total_cents": 500}
        a = cluster.grain_ref(grains.PaymentGrain, "oX")
        first = call(env, a, "process", order, "credit_card", 0.5)
        second = call(env, a, "process", order, "credit_card", 0.5)
        assert first["status"] == second["status"]

    def test_get_returns_none_before_processing(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.PaymentGrain, "oY")
        assert call(env, ref, "get") is None


class TestSellerGrain:
    def order(self, status="invoiced"):
        return {"order_id": "o1", "customer_id": 2, "status": status,
                "updated_at": 1.0,
                "items": [{"seller_id": 3, "product_id": 1,
                           "quantity": 2, "unit_price_cents": 100}]}

    def test_event_sequence_builds_and_retires_entry(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.SellerGrain, "3")
        call(env, ref, "apply_order_event",
             {"kind": "order_created", "order": self.order()})
        assert call(env, ref, "dashboard_amount") == 200
        call(env, ref, "apply_order_event",
             {"kind": "payment_confirmed", "order_id": "o1"})
        call(env, ref, "apply_order_event",
             {"kind": "shipment_notification", "order_id": "o1"})
        assert call(env, ref, "dashboard_amount") == 200
        call(env, ref, "apply_order_event",
             {"kind": "order_completed", "order_id": "o1"})
        assert call(env, ref, "dashboard_amount") == 0
        grain = cluster.grain_instance(ref)
        assert grain.data["revenue_cents"] == 200

    def test_payment_failed_retires_without_revenue(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.SellerGrain, "3")
        call(env, ref, "apply_order_event",
             {"kind": "order_created", "order": self.order()})
        call(env, ref, "apply_order_event",
             {"kind": "payment_failed", "order_id": "o1"})
        assert call(env, ref, "dashboard_amount") == 0
        grain = cluster.grain_instance(ref)
        assert grain.data["revenue_cents"] == 0

    def test_dashboard_entries_match_amount(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.SellerGrain, "3")
        call(env, ref, "apply_order_event",
             {"kind": "order_created", "order": self.order()})
        entries = call(env, ref, "dashboard_entries")
        amount = call(env, ref, "dashboard_amount")
        assert sum(entry["amount_cents"] for entry in entries) == amount


class TestShipmentGrain:
    def order(self):
        return {"order_id": "o1", "customer_id": 2,
                "total_cents": 300,
                "items": [{"seller_id": 1, "product_id": 1,
                           "quantity": 1, "unit_price_cents": 100},
                          {"seller_id": 2, "product_id": 9,
                           "quantity": 2, "unit_price_cents": 100}]}

    def test_create_once_and_idempotent(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.ShipmentGrain, "part-0")
        assert call(env, ref, "create", self.order(), 0) is True
        assert call(env, ref, "create", self.order(), 0) is False
        grain = cluster.grain_instance(ref)
        assert len(grain.data["shipments"]["o1"]["packages"]) == 2

    def test_undelivered_tracking_and_delivery(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.ShipmentGrain, "part-0")
        call(env, ref, "create", self.order(), 0)
        sellers = call(env, ref, "undelivered_sellers", 10)
        assert sellers == [1, 2]
        package = call(env, ref, "oldest_package", 1)
        assert package is not None
        assert call(env, ref, "mark_delivered", "o1",
                    package["package_id"]) is True
        assert call(env, ref, "undelivered_sellers", 10) == [2]

    def test_mark_delivered_unknown_order(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(grains.ShipmentGrain, "part-0")
        assert call(env, ref, "mark_delivered", "nope", "pkg-1") is False
