"""Unit tests for statistics helpers, metrics and anomaly reporting."""

import pytest

from repro.analysis import AnomalyReport, describe, mean, percentile
from repro.analysis.stats import percentiles
from repro.core.driver.metrics import LatencyRecorder, RunMetrics


class TestStats:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_mean_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_percentile_empty(self):
        assert percentile([], 50) == 0.0

    def test_percentile_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_percentile_extremes(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_percentile_matches_numpy(self):
        numpy = pytest.importorskip("numpy")
        values = [0.3, 1.7, 2.2, 9.9, 4.4, 0.01, 7.5]
        for q in (10, 25, 50, 75, 90, 99):
            assert percentile(values, q) == pytest.approx(
                float(numpy.percentile(values, q)))

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_percentiles_batch(self):
        result = percentiles([1, 2, 3, 4], qs=(50, 100))
        assert result[100] == 4

    def test_describe_shape(self):
        summary = describe([2.0, 1.0, 3.0])
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0
        assert summary["p50"] == 2.0

    def test_describe_empty(self):
        summary = describe([])
        assert summary["count"] == 0
        assert summary["p99"] == 0.0


class TestLatencyRecorder:
    def test_disabled_by_default(self):
        recorder = LatencyRecorder()
        recorder.record("checkout", "ok", 0.1)
        assert recorder.total() == 0

    def test_records_when_enabled(self):
        recorder = LatencyRecorder()
        recorder.enabled = True
        recorder.record("checkout", "ok", 0.1)
        recorder.record("checkout", "failed", 0.2)
        recorder.record("dashboard", "ok", 0.05)
        assert recorder.count("checkout") == 2
        assert recorder.count("checkout", "ok") == 1
        assert recorder.total("ok") == 2
        assert recorder.operations() == ["checkout", "dashboard"]

    def test_run_metrics_from_recorder(self):
        recorder = LatencyRecorder()
        recorder.enabled = True
        for latency in (0.01, 0.02, 0.03):
            recorder.record("checkout", "ok", latency)
        recorder.record("checkout", "rejected", 0.001)
        recorder.record("checkout", "aborted", 0.5)
        metrics = RunMetrics.from_recorder("test-app", 4, 2.0, recorder)
        op = metrics.ops["checkout"]
        assert op.ok == 3
        assert op.rejected == 1
        assert op.failed == 1  # aborted folds into failed
        assert op.throughput == pytest.approx(1.5)
        assert metrics.total_throughput == pytest.approx(1.5)
        assert metrics.goodput_checkout == pytest.approx(1.5)

    def test_latency_of_missing_op(self):
        metrics = RunMetrics("app", 1, 1.0, ops={})
        assert metrics.latency_of("nope") == 0.0
        assert metrics.goodput_checkout == 0.0

    def test_summary_rows(self):
        recorder = LatencyRecorder()
        recorder.enabled = True
        recorder.record("checkout", "ok", 0.004)
        metrics = RunMetrics.from_recorder("app", 2, 1.0, recorder)
        rows = metrics.summary_rows()
        assert rows[0]["operation"] == "checkout"
        assert rows[0]["p50_ms"] == 4.0


class TestAnomalyReport:
    def test_per_10k_scaling(self):
        report = AnomalyReport("app", transactions=20_000,
                               violations={"C1": 4, "C5": 6})
        assert report.total_violations == 10
        assert report.per_10k() == pytest.approx(5.0)
        assert report.per_10k("C1") == pytest.approx(2.0)

    def test_zero_transactions(self):
        report = AnomalyReport("app", transactions=0,
                               violations={"C1": 3})
        assert report.per_10k() == 0.0

    def test_row_format(self):
        report = AnomalyReport("app", transactions=100,
                               violations={"C1": 1})
        row = report.row()
        assert row["app"] == "app"
        assert row["C1"] == 1
        assert row["total_per_10k"] == 100.0

    def test_from_report(self):
        from repro.core.criteria import CriteriaReport, CriterionResult
        recorder = LatencyRecorder()
        recorder.enabled = True
        recorder.record("checkout", "ok", 0.1)
        metrics = RunMetrics.from_recorder("app", 1, 1.0, recorder)
        criteria = CriteriaReport("app", {
            "C1-atomicity": CriterionResult("C1-atomicity", 10, 2)})
        report = AnomalyReport.from_report(criteria, metrics)
        assert report.transactions == 1
        assert report.violations["C1-atomicity"] == 2


class TestCriteriaReport:
    def test_row_marks_failures(self):
        from repro.core.criteria import CriteriaReport, CriterionResult
        report = CriteriaReport("app", {
            "C1-atomicity": CriterionResult("C1-atomicity", 5, 0),
            "C3-integrity": CriterionResult("C3-integrity", 5, 2),
        })
        row = report.row()
        assert row["C1-atomicity"] == "pass"
        assert row["C3-integrity"] == "FAIL(2)"
        assert row["C2-causal-replication"] == "pass"  # absent = pass
        assert not report.all_pass

    def test_criterion_result_as_dict(self):
        from repro.core.criteria import CriterionResult
        result = CriterionResult("C1-atomicity", 3, 0)
        assert result.as_dict() == {
            "name": "C1-atomicity", "checked": 3, "violations": 0,
            "passed": True}


class TestReportRendering:
    def make_metrics(self):
        # Raw-sample mode: the rendering assertions below expect exact
        # interpolated percentiles rather than histogram buckets.
        recorder = LatencyRecorder(raw_samples=True)
        recorder.enabled = True
        recorder.record("checkout", "ok", 0.004)
        recorder.record("checkout", "ok", 0.006)
        recorder.record("dashboard", "ok", 0.001)
        return RunMetrics.from_recorder("demo-app", 8, 2.0, recorder)

    def test_markdown_table_layout(self):
        from repro.analysis import markdown_table
        text = markdown_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = text.strip().splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | x |"
        assert len(lines) == 4

    def test_markdown_table_empty(self):
        from repro.analysis import markdown_table
        assert markdown_table([]) == "(no rows)\n"

    def test_markdown_table_column_selection(self):
        from repro.analysis import markdown_table
        text = markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert "| b |" in text
        assert "a" not in text.splitlines()[0].replace("| b |", "")

    def test_csv_table(self):
        from repro.analysis import csv_table
        text = csv_table([{"a": 1, "b": "x,y"}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == '1,"x,y"'

    def test_csv_table_empty(self):
        from repro.analysis import csv_table
        assert csv_table([]) == ""

    def test_csv_quote_escaping(self):
        from repro.analysis import csv_table
        text = csv_table([{"a": 'say "hi"'}])
        assert '"say ""hi"""' in text

    def test_metrics_rows(self):
        from repro.analysis import metrics_rows
        rows = metrics_rows(self.make_metrics())
        assert [row["operation"] for row in rows] == ["checkout",
                                                      "dashboard"]
        checkout = rows[0]
        assert checkout["ok"] == 2
        assert checkout["p50_ms"] == 5.0

    def test_metrics_rows_include_queue_columns_when_present(self):
        from repro.analysis import metrics_rows
        recorder = LatencyRecorder()
        recorder.enabled = True
        recorder.record("checkout", "ok", 0.004)
        recorder.record_queue_delay("checkout", 0.2)
        metrics = RunMetrics.from_recorder("app", 2, 1.0, recorder)
        row = metrics_rows(metrics)[0]
        assert row["queue_p50_ms"] == 200.0
        assert row["queue_p99_ms"] == 200.0

    def test_timeline_rows(self):
        from repro.analysis import timeline_rows
        recorder = LatencyRecorder()
        recorder.enabled = True
        recorder.record("checkout", "ok", 0.004, at=1.5)
        recorder.record("checkout", "ok", 0.004, at=1.7)
        recorder.record("checkout", "ok", 0.004, at=3.2)
        metrics = RunMetrics.from_recorder("app", 2, 1.0, recorder)
        rows = timeline_rows(metrics)
        assert rows == [
            {"app": "app", "second": 1, "committed": 2},
            {"app": "app", "second": 3, "committed": 1},
        ]
        assert metrics.peak_rate == 2.0

    def test_saturation_second(self):
        from repro.analysis import saturation_second
        metrics = RunMetrics("app", 1, 1.0, ops={},
                             timeline=[(0, 10), (1, 50), (2, 100),
                                       (3, 101), (4, 99)])
        assert saturation_second(metrics) == 2
        empty = RunMetrics("app", 1, 1.0, ops={})
        assert saturation_second(empty) is None

    def test_experiment_report_sections(self):
        from repro.analysis import experiment_report
        from repro.core.criteria import CriteriaReport, CriterionResult
        report = CriteriaReport("demo-app", {
            "C1-atomicity": CriterionResult("C1-atomicity", 5, 0)})
        text = experiment_report(
            "Demo", [self.make_metrics()], [report],
            notes="A note.")
        assert "# Demo" in text
        assert "A note." in text
        assert "## Throughput & latency" in text
        assert "## Per-operation detail" in text
        assert "## Criteria compliance" in text
        assert "demo-app" in text
