"""Integration tests: exactly-once recovery of the Statefun app."""

from repro.apps import AppConfig, StatefunApp
from repro.core import WorkloadConfig, generate_dataset
from repro.dataflow import StatefunConfig
from repro.marketplace.constants import PaymentMethod
from repro.runtime import Environment


def make_app(seed=5, checkpoint_interval=0.2, recovery_pause=0.05):
    env = Environment(seed=seed)
    app = StatefunApp(env, AppConfig(silos=2, cores_per_silo=4),
                      statefun_config=StatefunConfig(
                          partitions=2, cores_per_partition=4,
                          checkpoint_interval=checkpoint_interval,
                          recovery_pause=recovery_pause))
    app.ingest(generate_dataset(
        WorkloadConfig(sellers=3, customers=24, products_per_seller=5),
        seed=seed))
    return env, app


def run_shoppers(env, app, count, crash_times=()):
    completed = []

    def shopper(customer_id, index):
        product = app.dataset.products[index % len(app.dataset.products)]
        result = yield from app.add_item(
            customer_id, product.seller_id, product.product_id, 1)
        if not result.ok:
            return
        result = yield from app.checkout(
            customer_id, f"o{customer_id}-{index}",
            PaymentMethod.CREDIT_CARD)
        if result.ok:
            completed.append(result.payload["order_id"])

    def crasher():
        last = 0.0
        for when in crash_times:
            yield env.timeout(when - last)
            last = when
            yield from app.runtime.inject_failure()

    # One shopper per customer: no cart sharing.
    for index in range(count):
        env.process(shopper(app.dataset.customer_ids[index], index))
    if crash_times:
        env.process(crasher())
    env.run(until=30.0)
    return completed


def business_outcome(app):
    views = app.audit_views()
    return {
        "orders": sum(len(state.get("orders", {}))
                      for state in views["orders"].values()),
        "stock": sum(item["qty_available"]
                     for item in views["stock"].values()),
        "spend": sum(customer["spent_cents"]
                     for customer in views["customers"].values()),
        "shipments": sum(len(partition.get("shipments", {}))
                         for partition in views["shipments"].values()),
    }


def test_crash_preserves_business_outcome():
    env_a, app_a = make_app()
    clean = run_shoppers(env_a, app_a, 20)
    env_b, app_b = make_app()
    crashed = run_shoppers(env_b, app_b, 20, crash_times=(0.15, 0.4))
    assert app_b.runtime.recoveries == 2
    assert sorted(clean) == sorted(crashed)
    assert business_outcome(app_a) == business_outcome(app_b)


def test_crash_before_first_checkpoint_replays_from_scratch():
    env, app = make_app(checkpoint_interval=0.0)  # no checkpoints
    completed = run_shoppers(env, app, 10, crash_times=(0.05,))
    assert app.runtime.recoveries == 1
    assert len(completed) == 10
    outcome = business_outcome(app)
    assert outcome["orders"] == 10
    assert outcome["shipments"] == 10


def test_each_checkout_egresses_exactly_once_across_crashes():
    env, app = make_app()
    run_shoppers(env, app, 15, crash_times=(0.1, 0.2, 0.3))
    checkout_events = [payload for _, kind, payload
                       in app.runtime.egress_log if kind == "checkout"]
    order_ids = [payload["order_id"] for payload in checkout_events]
    assert len(order_ids) == len(set(order_ids))
    assert len(order_ids) == 15


def test_stock_never_double_decremented_by_replay():
    env, app = make_app()
    initial = sum(item.qty_available
                  for item in app.dataset.stock.values())
    run_shoppers(env, app, 12, crash_times=(0.12,))
    final = business_outcome(app)["stock"]
    # Each of the 12 single-quantity checkouts decrements exactly one.
    assert initial - final == 12


def test_crash_during_quiet_period_is_harmless():
    env, app = make_app()
    run_shoppers(env, app, 8)

    def late_crash():
        yield from app.runtime.inject_failure()

    process = env.process(late_crash())
    env.run(until=process)
    env.run(until=env.now + 2.0)
    assert business_outcome(app)["orders"] == 8
    assert app.runtime.recoveries == 1


def test_cross_partition_messages_marked_and_charged():
    env, app = make_app()
    run_shoppers(env, app, 6)
    # With 2 partitions and hashed routing, some function-to-function
    # messages must have crossed partitions.
    crossed = [message for message in app.runtime.ingress_log
               if message.cross_partition]
    assert crossed == []  # ingress is never marked cross-partition

    # Cross-partition marking happens on internal sends: verify via a
    # synthetic send between addresses on different workers.
    runtime = app.runtime
    worker0 = runtime.workers[0]
    address_on_other = None
    for key in ("101", "102", "103", "104", "105", "106"):
        if runtime.worker_for(("cart", key)) is not worker0:
            address_on_other = key
            break
    assert address_on_other is not None
    runtime.send_internal("cart", address_on_other,
                          {"kind": "noop"}, source_worker=worker0)
    # The pending delivery carries the flag.
    # (Inspect by draining the env one step: message enqueued after
    # delivery latency.)
    env.run(until=env.now + 0.01)
    # No assertion on state: the marking logic itself is what we check.


def test_recovery_counts_and_checkpoint_cadence():
    env, app = make_app(checkpoint_interval=0.1)
    run_shoppers(env, app, 10, crash_times=(0.25,))
    assert app.runtime.recoveries == 1
    assert app.runtime.checkpoints_taken >= 2
