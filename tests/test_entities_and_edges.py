"""Entity converters and kernel edge cases not covered elsewhere."""

import pytest

from repro.marketplace import (
    CartItem,
    Customer,
    Product,
    Seller,
    StockItem,
    product_key,
)
from repro.runtime import Environment


class TestEntities:
    def test_product_key_format(self):
        assert product_key(3, 17) == "3/17"

    def test_product_entity_roundtrip(self):
        product = Product(product_id=1, seller_id=2, name="n",
                          category="c", price_cents=100)
        data = product.as_dict()
        assert data["price_cents"] == 100
        assert product.key == "2/1"
        assert Product(**data).as_dict() == data

    def test_stock_item_key(self):
        item = StockItem(product_id=5, seller_id=9, qty_available=10)
        assert item.key == "9/5"
        assert item.as_dict()["qty_reserved"] == 0

    def test_cart_item_subtotal_floors_at_zero(self):
        item = CartItem(product_id=1, seller_id=1, quantity=1,
                        unit_price_cents=100, voucher_cents=500)
        assert item.subtotal_cents == 0

    def test_cart_item_subtotal(self):
        item = CartItem(product_id=1, seller_id=1, quantity=3,
                        unit_price_cents=100, voucher_cents=50)
        assert item.subtotal_cents == 250

    def test_cart_item_dict_roundtrip(self):
        item = CartItem(product_id=1, seller_id=2, quantity=3,
                        unit_price_cents=100)
        assert CartItem.from_dict(item.as_dict()) == item

    def test_seller_customer_as_dict(self):
        assert Seller(1, "s", "city").as_dict()["name"] == "s"
        assert Customer(2, "c").as_dict()["customer_id"] == 2


class TestKernelEdges:
    def test_run_until_past_time_rejected(self):
        env = Environment()
        env.schedule(env.event().succeed())
        env.run()
        with pytest.raises(ValueError):
            env.run(until=env.now - 1.0)

    def test_run_until_future_time_with_empty_queue_advances_clock(self):
        env = Environment()
        env.run(until=5.0)
        assert env.now == 5.0

    def test_timeout_carries_value(self):
        env = Environment()

        def proc(env):
            value = yield env.timeout(1.0, value="payload")
            return value

        process = env.process(proc(env))
        env.run()
        assert process.value == "payload"

    def test_event_value_unavailable_before_trigger(self):
        env = Environment()
        event = env.event()
        with pytest.raises(AttributeError):
            _ = event.value

    def test_step_with_empty_queue_rejected(self):
        env = Environment()
        with pytest.raises(RuntimeError):
            env.step()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_peek_empty_queue_is_infinite(self):
        env = Environment()
        assert env.peek() == float("inf")

    def test_process_waiting_on_already_processed_event(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        env.run()

        def late_waiter(env):
            value = yield done
            return value

        process = env.process(late_waiter(env))
        env.run()
        assert process.value == "early"

    def test_active_process_visible_during_execution(self):
        env = Environment()
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(0.1)

        process = env.process(proc(env))
        env.run()
        assert seen == [process]
        assert env.active_process is None

    def test_environment_seed_recorded(self):
        assert Environment(seed=123).seed == 123
