"""Scaling regression: throughput per wall-second must not collapse
with run length.

Before the copy-on-write engine, every transactional read deep-copied
the whole (growing) grain state, making the simulator quadratic in run
length: tx/s-wall degraded ~3x between ``duration_scale`` 0.05 and
0.4.  With O(1) views the degradation is bounded by genuine workload
effects (state-size-dependent scans), measured at ~1.2x.  This test
pins the ratio so an accidental O(state) copy on the hot path fails CI
instead of silently rotting the perf trajectory.
"""

import time

from repro.apps import ALL_APPS, AppConfig
from repro.core import get_scenario
from repro.runtime import Environment

#: Allowed tx/s-wall degradation between the short and long run.  The
#: engine's true ratio is ~1.2x; the slack absorbs CI timer noise while
#: still catching any reintroduced O(state) copy (which measures >2x).
MAX_DEGRADATION = 1.5


def tx_per_wall_second(duration_scale: float, repeats: int = 1) -> float:
    best = 0.0
    for _ in range(repeats):
        env = Environment(seed=7)
        app = ALL_APPS["orleans-transactions"](
            env, AppConfig(silos=2, cores_per_silo=2))
        driver = get_scenario("baseline").build_driver(
            env, app, duration_scale=duration_scale, data_seed=7)
        start = time.perf_counter()
        metrics = driver.run()
        wall = time.perf_counter() - start
        committed = sum(op.ok for op in metrics.ops.values())
        best = max(best, committed / wall)
    return best


def test_tx_per_wall_second_does_not_collapse_with_run_length():
    # Best-of-3 on BOTH cells: a one-off stall (GC, noisy CI
    # neighbour) in either cell must not skew the ratio.
    short = tx_per_wall_second(0.05, repeats=3)
    long = tx_per_wall_second(0.4, repeats=3)
    assert long > 0
    ratio = short / long
    assert ratio < MAX_DEGRADATION, (
        f"tx/s-wall degraded {ratio:.2f}x between duration_scale 0.05 "
        f"({short:.0f} tx/s) and 0.4 ({long:.0f} tx/s); an O(state) "
        f"copy is back on the hot path")
