"""Dynamic cluster membership: crash, drain, join and migration."""

import pytest

from repro.actors import (
    Cluster,
    ClusterConfig,
    Grain,
    NoLiveSilos,
    SiloState,
    SiloUnavailable,
)
from repro.runtime import Environment, FaultEvent, FaultSchedule


class DurableCounter(Grain):
    """Storage-backed counter: every bump is persisted."""

    storage_name = "default"

    def bump(self):
        self.state["n"] = self.state.get("n", 0) + 1
        yield from self.write_state()
        return self.state["n"]

    def get(self):
        return self.state.get("n", 0)
        yield  # pragma: no cover - generator marker


class VolatileCounter(Grain):
    """In-memory counter: state dies with the activation."""

    def __init__(self):
        super().__init__()
        self.value = 0

    def bump(self):
        self.value += 1
        return self.value
        yield  # pragma: no cover - generator marker

    def get(self):
        return self.value
        yield  # pragma: no cover - generator marker


def make_cluster(seed=1, detection=0.0, **config_kwargs):
    env = Environment(seed=seed)
    cluster = Cluster(env, ClusterConfig(
        failure_detection_delay=detection, **config_kwargs))
    return env, cluster


def call_sync(env, ref, method, *args, **kwargs):
    promise = ref.call(method, *args, **kwargs)
    return env.run(until=promise)


def keys_on(cluster, grain_type, silo, keys):
    return [key for key in keys
            if cluster.silo_for(cluster.grain_ref(grain_type, key))
            is silo]


KEYS = [f"k{i}" for i in range(24)]


# ---------------------------------------------------------------------------
# crash
# ---------------------------------------------------------------------------
class TestCrash:
    def test_storage_backed_state_survives_mid_run_crash(self):
        """The acceptance audit: crash a silo mid-run while traffic is
        flowing; every acknowledged write to a storage-backed grain
        must be readable afterwards, with the crashed silo's grains
        resumed on a surviving silo."""
        env, cluster = make_cluster()
        refs = {key: cluster.grain_ref(DurableCounter, key)
                for key in KEYS}
        victim = cluster.silos[1]
        victim_keys = keys_on(cluster, DurableCounter, victim, KEYS)
        assert victim_keys, "hash ring must give silo-1 some keys"
        acked = {key: 0 for key in KEYS}
        failures = []

        def traffic():
            for round_no in range(6):
                for key in KEYS:
                    try:
                        yield refs[key].call("bump")
                    except SiloUnavailable:
                        failures.append((round_no, key))
                        continue
                    acked[key] += 1
                yield env.timeout(0.05)

        def saboteur():
            yield env.timeout(0.16)  # mid-run, traffic in flight
            cluster.crash_silo(victim)

        done = env.process(traffic())
        env.process(saboteur())
        env.run(until=done)

        assert cluster.membership.crashes == 1
        assert not victim.alive
        for key in KEYS:
            owner = cluster.silo_for(refs[key])
            assert owner.alive
            if key in victim_keys:
                assert owner is not victim
            # Every acknowledged bump survived the crash (an in-flight
            # bump may have persisted before its reply was lost, so
            # the audit is >=, never <).
            assert call_sync(env, refs[key], "get") >= acked[key]

    def test_volatile_state_lost_and_counted(self):
        env, cluster = make_cluster()
        refs = {key: cluster.grain_ref(VolatileCounter, key)
                for key in KEYS}
        for key in KEYS:
            assert call_sync(env, refs[key], "bump") == 1
        victim = cluster.silos[0]
        victim_keys = keys_on(cluster, VolatileCounter, victim, KEYS)
        assert victim_keys
        cluster.crash_silo(victim)
        env.run(until=env.now + 0.1)
        assert cluster.membership.state_loss_events == len(victim_keys)
        for key in victim_keys:  # reactivated empty on a new owner
            assert call_sync(env, refs[key], "get") == 0
        survivors = [key for key in KEYS if key not in victim_keys]
        for key in survivors[:3]:  # untouched elsewhere
            assert call_sync(env, refs[key], "get") == 1

    def test_calls_fail_during_detection_window_then_recover(self):
        env, cluster = make_cluster(detection=0.5)
        ref = None
        victim = cluster.silos[2]
        for key in KEYS:  # find a key owned by the victim
            candidate = cluster.grain_ref(DurableCounter, key)
            if cluster.silo_for(candidate) is victim:
                ref = candidate
                break
        assert ref is not None
        call_sync(env, ref, "bump")
        cluster.crash_silo(victim)
        # Until detection completes the ring still points at the dead
        # silo: calls exhaust their delivery attempts and fail.
        with pytest.raises(SiloUnavailable):
            call_sync(env, ref, "bump")
        assert cluster.membership.unavailable_failures > 0
        env.run(until=env.now + 1.0)  # eviction happened
        assert cluster.silo_for(ref) is not victim
        assert call_sync(env, ref, "bump") == 2  # state from storage

    def test_queued_messages_replaced_on_eviction(self):
        class Slow(Grain):
            cpu_cost = 0.0001

            def work(self, duration):
                yield self.env.timeout(duration)
                return self.env.now

        env, cluster = make_cluster()
        victim = cluster.silos[0]
        key = keys_on(cluster, Slow, victim,
                      [f"s{i}" for i in range(40)])[0]
        ref = cluster.grain_ref(Slow, key)
        first = ref.call("work", 0.2)   # executes across the crash
        env.run(until=0.05)             # ... it is mid-execution now
        queued = ref.call("work", 0.05)  # waits in the mailbox

        def saboteur():
            yield env.timeout(0.05)  # crash at t=0.1
            cluster.crash_silo(victim)

        env.process(saboteur())
        with pytest.raises(SiloUnavailable):
            env.run(until=first)  # mid-execution: fails at crash time
        # The queued message never started: it is re-placed and
        # completes on the new owner.
        assert env.run(until=queued) > 0.1
        assert cluster.membership.reroutes >= 1

    def test_crash_twice_rejected(self):
        env, cluster = make_cluster()
        cluster.crash_silo("silo-0")
        with pytest.raises(SiloUnavailable):
            cluster.crash_silo("silo-0")

    def test_unknown_silo_name(self):
        env, cluster = make_cluster()
        with pytest.raises(KeyError):
            cluster.crash_silo("silo-99")


# ---------------------------------------------------------------------------
# drain
# ---------------------------------------------------------------------------
class TestDrain:
    def test_drain_persists_storage_backed_state(self):
        env, cluster = make_cluster()
        refs = {key: cluster.grain_ref(DurableCounter, key)
                for key in KEYS}
        for key in KEYS:
            call_sync(env, refs[key], "bump")
        victim = cluster.silos[1]
        victim_keys = keys_on(cluster, DurableCounter, victim, KEYS)
        done = cluster.drain_silo(victim)
        env.run(until=done)
        assert victim.state == SiloState.STOPPED
        assert victim.activation_count == 0
        storage = cluster.storage("default")
        for key in victim_keys:
            assert storage.peek("DurableCounter", key) == {"n": 1}
            assert call_sync(env, refs[key], "bump") == 2
            assert cluster.silo_for(refs[key]) is not victim

    def test_drain_live_migrates_volatile_state(self):
        env, cluster = make_cluster()
        refs = {key: cluster.grain_ref(VolatileCounter, key)
                for key in KEYS}
        for key in KEYS:
            call_sync(env, refs[key], "bump")
        victim = cluster.silos[2]
        victim_keys = keys_on(cluster, VolatileCounter, victim, KEYS)
        assert victim_keys
        done = cluster.drain_silo(victim)
        env.run(until=done)
        assert cluster.membership.state_loss_events == 0
        assert cluster.membership.volatile_handoffs >= len(victim_keys)
        for key in victim_keys:  # state travelled with the grain
            assert call_sync(env, refs[key], "get") == 1
            assert cluster.silo_for(refs[key]) is not victim

    def test_drain_finishes_queued_work_first(self):
        class Slow(Grain):
            def work(self):
                yield self.env.timeout(0.05)
                return "done"

        env, cluster = make_cluster()
        victim = cluster.silos[0]
        key = keys_on(cluster, Slow, victim,
                      [f"s{i}" for i in range(40)])[0]
        ref = cluster.grain_ref(Slow, key)
        promises = [ref.call("work") for _ in range(3)]
        drained = cluster.drain_silo(victim)
        for promise in promises:  # queued work completes, not fails
            assert env.run(until=promise) == "done"
        env.run(until=drained)
        assert victim.state == SiloState.STOPPED

    def test_drain_already_stopped_rejected(self):
        env, cluster = make_cluster()
        done = cluster.drain_silo("silo-0")
        env.run(until=done)
        with pytest.raises(SiloUnavailable):
            cluster.drain_silo("silo-0")


# ---------------------------------------------------------------------------
# join / scale-out
# ---------------------------------------------------------------------------
class TestJoin:
    def test_join_bumps_epoch_and_receives_placements(self):
        env, cluster = make_cluster(silos=2)
        epoch_before = cluster.placement.epoch
        new = cluster.add_silo()
        assert cluster.placement.epoch == epoch_before + 1
        assert new.name == "silo-2"
        env.run(until=env.now + 0.2)
        fresh = [f"fresh{i}" for i in range(200)]
        owners = {cluster.silo_for(cluster.grain_ref(VolatileCounter,
                                                     key)).name
                  for key in fresh}
        assert new.name in owners

    def test_join_migrates_reassigned_grains_with_state(self):
        env, cluster = make_cluster(silos=2)
        refs = {key: cluster.grain_ref(VolatileCounter, key)
                for key in KEYS}
        for key in KEYS:
            call_sync(env, refs[key], "bump")
        new = cluster.add_silo()
        moved_keys = keys_on(cluster, VolatileCounter, new, KEYS)
        assert moved_keys, "the new silo must take over some keys"
        env.run(until=env.now + 0.5)  # let the rebalance finish
        assert cluster.membership.migrations >= len(moved_keys)
        for key in moved_keys:
            assert (new.name, ) == (cluster.directory.lookup(
                "VolatileCounter", key).silo.name, )
            assert call_sync(env, refs[key], "get") == 1

    def test_crash_then_join_restores_capacity(self):
        env, cluster = make_cluster()
        cluster.crash_silo("silo-3")
        assert len(cluster.live_silos) == 3
        cluster.add_silo()
        assert len(cluster.live_silos) == 4
        ref = cluster.grain_ref(DurableCounter, "x")
        assert call_sync(env, ref, "bump") == 1


# ---------------------------------------------------------------------------
# empty ring
# ---------------------------------------------------------------------------
class TestNoLiveSilos:
    def test_dispatch_returns_failed_promise_not_exception(self):
        env, cluster = make_cluster(silos=1)
        cluster.crash_silo("silo-0")
        ref = cluster.grain_ref(DurableCounter, "x")
        promise = ref.call("bump")  # must not raise here
        with pytest.raises(NoLiveSilos):
            env.run(until=promise)
        assert cluster.membership.unavailable_failures >= 1

    def test_place_raises_no_live_silos(self):
        env, cluster = make_cluster(silos=1)
        cluster.crash_silo("silo-0")
        with pytest.raises(NoLiveSilos):
            cluster.silo_for(cluster.grain_ref(DurableCounter, "x"))

    def test_tell_into_empty_ring_is_swallowed(self):
        env, cluster = make_cluster(silos=1)
        cluster.crash_silo("silo-0")
        cluster.grain_ref(DurableCounter, "x").tell("bump")
        env.run()  # must not raise


# ---------------------------------------------------------------------------
# grain directory
# ---------------------------------------------------------------------------
class TestDirectory:
    def test_classify_lifecycle(self):
        env, cluster = make_cluster()
        directory = cluster.directory
        placement = cluster.placement
        assert directory.classify("DurableCounter", "x",
                                  placement) == "unknown"
        ref = cluster.grain_ref(DurableCounter, "x")
        call_sync(env, ref, "bump")
        assert directory.classify("DurableCounter", "x",
                                  placement) == "active"
        home = cluster.silo_for(ref)
        cluster.crash_silo(home)
        assert directory.classify("DurableCounter", "x",
                                  placement) == "lost"
        call_sync(env, ref, "bump")  # re-activates on the new owner
        assert directory.classify("DurableCounter", "x",
                                  placement) == "active"

    def test_classify_moved_after_join(self):
        env, cluster = make_cluster(silos=2)
        refs = {key: cluster.grain_ref(VolatileCounter, key)
                for key in KEYS}
        for key in KEYS:
            call_sync(env, refs[key], "bump")
        new = cluster.add_silo()
        moved = keys_on(cluster, VolatileCounter, new, KEYS)
        assert moved
        # Before the rebalance completes the old activation is stale:
        # the ring points at the new owner, the directory at the old.
        statuses = {cluster.directory.classify("VolatileCounter", key,
                                               cluster.placement)
                    for key in moved}
        assert statuses == {"moved"}
        env.run(until=env.now + 0.5)
        statuses = {cluster.directory.classify("VolatileCounter", key,
                                               cluster.placement)
                    for key in moved}
        assert statuses == {"active"}

    def test_deactivation_unregisters(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(DurableCounter, "x")
        call_sync(env, ref, "bump")
        cluster.silo_for(ref).deactivate("DurableCounter", "x")
        assert cluster.directory.lookup("DurableCounter", "x") is None
        assert cluster.directory.classify(
            "DurableCounter", "x", cluster.placement) == "unknown"


# ---------------------------------------------------------------------------
# fault schedules
# ---------------------------------------------------------------------------
class TestFaultSchedule:
    def test_events_fire_in_order_at_their_times(self):
        env = Environment(seed=1)
        hits = []

        class Target:
            def crash_silo(self, name):
                hits.append((env.now, "crash", name))
                return name

            def add_silo(self):
                hits.append((env.now, "join", None))

        schedule = FaultSchedule([
            FaultEvent(at=0.5, action="add_silo"),
            FaultEvent(at=0.2, action="crash_silo", target="s0"),
        ])
        schedule.install(env, Target())
        env.run(until=1.0)
        assert hits == [(0.2, "crash", "s0"), (0.5, "join", None)]
        assert all(entry["applied"] for entry in schedule.log)

    def test_unsupported_actions_logged_not_raised(self):
        env = Environment(seed=1)
        schedule = FaultSchedule([
            FaultEvent(at=0.1, action="crash_silo", target="s0")])
        schedule.install(env, target=None)
        env.run(until=1.0)
        assert len(schedule.log) == 1
        assert not schedule.log[0]["applied"]

    def test_action_errors_logged_not_raised(self):
        env = Environment(seed=1)

        class Exploding:
            def crash_silo(self, name):
                raise KeyError(name)

        schedule = FaultSchedule([
            FaultEvent(at=0.1, action="crash_silo", target="s9")])
        schedule.install(env, Exploding())
        env.run(until=1.0)
        assert not schedule.log[0]["applied"]
        assert "KeyError" in schedule.log[0]["detail"]

    def test_time_scaled(self):
        schedule = FaultSchedule([
            FaultEvent(at=2.0, action="add_silo")])
        assert schedule.time_scaled(0.5).events[0].at == 1.0
        with pytest.raises(ValueError):
            schedule.time_scaled(0.0)

    def test_invalid_events_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(at=-1.0, action="crash_silo")
        with pytest.raises(ValueError):
            FaultEvent(at=1.0, action="")


# ---------------------------------------------------------------------------
# end-to-end: fault schedule against a live cluster
# ---------------------------------------------------------------------------
class TestFaultScheduleOnCluster:
    def test_crash_schedule_drives_cluster(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(DurableCounter, "x")
        call_sync(env, ref, "bump")
        schedule = FaultSchedule([
            FaultEvent(at=0.3, action="crash_silo", target="silo-0"),
            FaultEvent(at=0.6, action="add_silo"),
        ])
        schedule.install(env, cluster)
        env.run(until=env.now + 1.0)
        assert cluster.membership.crashes == 1
        assert cluster.membership.joins == 1
        assert [entry["applied"] for entry in schedule.log] == \
            [True, True]
        assert len(cluster.live_silos) == 4
