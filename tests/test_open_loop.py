"""Unit tests for the open-loop driver: arrivals, dispatch, queueing."""

import pytest

from _stub_app import StubApp
from repro.apps.base import rejected
from repro.core import WorkloadConfig
from repro.core.driver.arrivals import ConstantRate, PoissonArrivals
from repro.core.driver.open_loop import (
    HotspotSpec,
    OpenLoopConfig,
    OpenLoopDriver,
)
from repro.core.workload.config import TransactionMix
from repro.runtime import Environment

CHECKOUT_ONLY = TransactionMix(checkout=100, price_update=0,
                               product_delete=0, update_delivery=0,
                               dashboard=0)


def make_driver(seed=1, rate=50.0, mix=None, op_latency=0.001,
                **config_kwargs):
    env = Environment(seed=seed)
    app = StubApp(env, op_latency=op_latency)
    workload = WorkloadConfig(sellers=2, customers=30,
                              products_per_seller=5,
                              mix=mix or TransactionMix())
    config_kwargs.setdefault("arrivals", PoissonArrivals(rate))
    config_kwargs.setdefault("warmup", 0.2)
    config_kwargs.setdefault("duration", 2.0)
    config_kwargs.setdefault("drain", 1.0)
    config_kwargs.setdefault("max_in_flight", 16)
    driver = OpenLoopDriver(env, app, workload,
                            OpenLoopConfig(**config_kwargs))
    return env, app, driver


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(warmup=-1.0),
        dict(duration=0.0),
        dict(drain=-0.1),
        dict(max_in_flight=0),
        dict(queue_capacity=0),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        base = dict(arrivals=ConstantRate(10.0))
        with pytest.raises(ValueError):
            OpenLoopConfig(**{**base, **kwargs})

    def test_driver_requires_config(self):
        env = Environment(seed=1)
        with pytest.raises(ValueError):
            OpenLoopDriver(env, StubApp(env))

    @pytest.mark.parametrize("kwargs", [
        dict(start=-1.0, end=1.0),
        dict(start=2.0, end=1.0),
        dict(start=0.0, end=1.0, top_ranks=0),
        dict(start=0.0, end=1.0, probability=0.0),
    ])
    def test_invalid_hotspots_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HotspotSpec(**kwargs)


class TestOpenLoopLifecycle:
    def test_arrival_conservation(self):
        env, app, driver = make_driver()
        metrics = driver.run()
        stats = metrics.open_loop
        assert stats["arrivals"] > 0
        assert stats["dispatched"] + stats["shed"] == stats["arrivals"]
        assert stats["shed"] == 0
        assert stats["completed"] == stats["dispatched"]
        assert driver.in_flight == 0
        assert driver.queue_length == 0

    def test_offered_rate_reached(self):
        # 50/s over warmup+duration=2.2s => ~110 arrivals.
        env, app, driver = make_driver(seed=5)
        metrics = driver.run()
        assert metrics.open_loop["arrivals"] == pytest.approx(110,
                                                              rel=0.35)

    def test_deterministic_for_seed(self):
        a = make_driver(seed=9)[2].run()
        b = make_driver(seed=9)[2].run()
        assert a.open_loop == b.open_loop
        assert a.total_throughput == b.total_throughput

    def test_warmup_arrivals_not_recorded(self):
        env, app, driver = make_driver()
        metrics = driver.run()
        executed = sum(app.calls.values())
        recorded = sum(op.count for op in metrics.ops.values())
        assert executed > recorded > 0

    def test_queueing_delay_negligible_under_capacity(self):
        env, app, driver = make_driver(rate=20.0, max_in_flight=32)
        metrics = driver.run()
        assert metrics.queue_delay_of("checkout", "p99") < 0.001

    def test_queueing_delay_grows_when_pool_saturated(self):
        # One dispatcher serves a ~4ms checkout transaction (~250/s);
        # 600/s offered is heavy overload, so queue wait must come to
        # dominate service time.
        env, app, driver = make_driver(
            mix=CHECKOUT_ONLY, max_in_flight=1, rate=600.0)
        metrics = driver.run()
        checkout = metrics.ops["checkout"]
        assert checkout.queue_delay is not None
        assert checkout.queue_delay["p50"] > 10 * checkout.latency["p50"]
        assert metrics.open_loop["max_queue"] > 10

    def test_response_time_includes_queue_wait(self):
        env, app, driver = make_driver(
            mix=CHECKOUT_ONLY, max_in_flight=1, rate=600.0)
        metrics = driver.run()
        checkout = metrics.ops["checkout"]
        # Response (arrival -> completion) must be at least the queue
        # wait and at least the service time, at every percentile.
        for q in ("p50", "p95"):
            assert checkout.response[q] >= checkout.queue_delay[q] * 0.95
            assert checkout.response[q] >= checkout.latency[q] * 0.95

    def test_queue_capacity_sheds_excess(self):
        env, app, driver = make_driver(
            mix=CHECKOUT_ONLY, max_in_flight=1, rate=600.0,
            queue_capacity=5)
        metrics = driver.run()
        stats = metrics.open_loop
        assert stats["shed"] > 0
        assert stats["max_queue"] <= 5
        assert stats["dispatched"] + stats["shed"] == stats["arrivals"]

    def test_in_flight_bounded_by_pool(self):
        env, app, driver = make_driver(rate=500.0, max_in_flight=4)
        metrics = driver.run()
        assert metrics.open_loop["max_in_flight"] <= 4

    def test_queue_stats_land_on_app_operation_names(self):
        # Mix names (price_update) differ from the operation names the
        # app reports (update_price); queueing stats must land on the
        # app-facing rows so queue wait and service latency align.
        mix = TransactionMix(checkout=0, price_update=100,
                             product_delete=0, update_delivery=0,
                             dashboard=0)
        env, app, driver = make_driver(mix=mix)
        metrics = driver.run()
        assert metrics.ops["update_price"].queue_delay is not None
        assert metrics.ops["update_price"].response is not None
        assert "price_update" not in metrics.ops

    def test_skipped_transactions_record_no_response(self):
        # 2 customers, checkout-only, deep pool: lease misses are
        # frequent; they must not inject phantom response samples.
        env = Environment(seed=21)
        app = StubApp(env, op_latency=0.01)
        workload = WorkloadConfig(sellers=2, customers=2,
                                  products_per_seller=5,
                                  mix=CHECKOUT_ONLY)
        driver = OpenLoopDriver(env, app, workload, OpenLoopConfig(
            arrivals=PoissonArrivals(300.0), warmup=0.2, duration=2.0,
            drain=5.0, max_in_flight=16))
        metrics = driver.run()
        assert driver.skipped["no_lease"] > 0
        responses = metrics.ops["checkout"].response
        # Response samples can't outnumber recorded checkout calls.
        assert responses["count"] <= metrics.ops["checkout"].count

    def test_empty_cart_checkouts_record_no_queue_samples(self):
        # When every add_item is rejected no checkout call happens;
        # the checkout row must get no queue/response samples (they
        # would disagree with its outcome counts — or be silently
        # dropped when no checkout outcome exists at all).
        class RejectingApp(StubApp):
            def add_item(self, customer_id, seller_id, product_id,
                         quantity, voucher_cents=0):
                yield from self._op("add_item")
                return rejected("add_item", reason="unavailable")

        env = Environment(seed=17)
        app = RejectingApp(env)
        workload = WorkloadConfig(sellers=2, customers=30,
                                  products_per_seller=5,
                                  mix=CHECKOUT_ONLY)
        driver = OpenLoopDriver(env, app, workload, OpenLoopConfig(
            arrivals=PoissonArrivals(50.0), warmup=0.2, duration=2.0,
            drain=1.0, max_in_flight=16))
        metrics = driver.run()
        assert driver.skipped["empty_cart"] > 0
        assert "checkout" not in metrics.ops
        assert "checkout" not in driver.recorder.queue_delays
        assert "checkout" not in driver.recorder.responses

    def test_timeline_accounts_for_all_ok(self):
        env, app, driver = make_driver()
        metrics = driver.run()
        assert sum(count for _, count in metrics.timeline) == \
            sum(op.ok for op in metrics.ops.values())

    def test_drain_completes_backlog(self):
        env, app, driver = make_driver(
            mix=CHECKOUT_ONLY, max_in_flight=2, rate=600.0, drain=60.0)
        metrics = driver.run()
        stats = metrics.open_loop
        assert stats["completed"] == stats["dispatched"]
        assert stats["final_queue"] == 0


class TestHotspot:
    def test_hotspot_concentrates_sampling(self):
        hotspot = HotspotSpec(start=0.0, end=10.0, top_ranks=2,
                              probability=0.9)
        env, app, driver = make_driver(mix=CHECKOUT_ONLY,
                                       hotspot=hotspot)
        driver.run()
        assert driver.sampler.hot_draws > 0
        hot_keys = {driver.registry.product_at(rank) for rank in (0, 1)}
        hot = sum(count for key, count in app.product_adds.items()
                  if tuple(map(int, key.split("/"))) in hot_keys)
        assert hot > 0.6 * sum(app.product_adds.values())

    def test_hotspot_window_clears(self):
        hotspot = HotspotSpec(start=0.0, end=0.5, top_ranks=2,
                              probability=0.9)
        env, app, driver = make_driver(hotspot=hotspot)
        driver.run()
        assert not driver.sampler.active
