"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main

FAST = ["--workers", "4", "--duration", "0.5", "--warmup", "0.1",
        "--silos", "1", "--cores", "2", "--sellers", "2",
        "--customers", "8", "--products", "3"]


class TestParser:
    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "orleans-eventual"
        assert args.workers == 32
        assert args.drop == 0.0

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "mystery"])

    def test_audit_accepts_drop(self):
        args = build_parser().parse_args(
            ["audit", "--app", "statefun", "--drop", "0.05"])
        assert args.drop == 0.05


class TestRunCommand:
    def test_run_prints_metrics_and_criteria(self):
        stream = io.StringIO()
        code = main(["run", "--app", "orleans-eventual"] + FAST,
                    stream=stream)
        output = stream.getvalue()
        assert code == 0
        assert "total committed throughput" in output
        assert "checkout" in output
        assert "C1-atomicity" in output

    def test_run_statefun(self):
        stream = io.StringIO()
        code = main(["run", "--app", "statefun"] + FAST, stream=stream)
        assert code == 0
        assert "statefun" in stream.getvalue()


class TestAuditCommand:
    def test_audit_clean_run_exits_zero_for_customized(self):
        stream = io.StringIO()
        code = main(["audit", "--app", "customized-orleans"] + FAST,
                    stream=stream)
        assert code == 0
        assert "per 10k tx" in stream.getvalue()

    def test_audit_eventual_under_loss_exits_nonzero(self):
        stream = io.StringIO()
        code = main(["audit", "--app", "orleans-eventual",
                     "--drop", "0.05"] + FAST, stream=stream)
        assert code == 1


class TestCompareCommand:
    def test_compare_prints_all_apps(self):
        stream = io.StringIO()
        code = main(["compare"] + FAST, stream=stream)
        output = stream.getvalue()
        assert code == 0
        for name in ("orleans-eventual", "orleans-transactions",
                     "statefun", "customized-orleans"):
            assert name in output
        assert "criteria matrix" in output


class TestScenarioCommand:
    def test_list_prints_catalogue(self):
        stream = io.StringIO()
        code = main(["scenario", "--list"], stream=stream)
        output = stream.getvalue()
        assert code == 0
        for name in ("baseline", "flash-sale", "overload-ramp"):
            assert name in output

    def test_bare_scenario_defaults_to_catalogue(self):
        stream = io.StringIO()
        assert main(["scenario"], stream=stream) == 0
        assert "available scenarios" in stream.getvalue()

    def test_unknown_scenario_rejected(self):
        stream = io.StringIO()
        code = main(["scenario", "mystery"], stream=stream)
        assert code == 2
        assert "unknown scenario" in stream.getvalue()

    def test_scenario_run_reports_queueing_separately(self):
        stream = io.StringIO()
        code = main(["scenario", "flash-sale",
                     "--app", "orleans-eventual",
                     "--rate-scale", "0.4", "--duration-scale", "0.4",
                     "--silos", "1", "--cores", "2"], stream=stream)
        output = stream.getvalue()
        assert code == 0
        assert "service latency vs queueing delay" in output
        assert "queue p99" in output
        assert "offered rate" in output
        assert "throughput timeline" in output
        assert "C1-atomicity" in output

    def test_autoscaled_scenario_prints_controller_timeline(self):
        stream = io.StringIO()
        code = main(["scenario", "autoscale-flash-sale",
                     "--app", "orleans-eventual",
                     "--rate-scale", "0.4", "--duration-scale", "0.4"],
                    stream=stream)
        output = stream.getvalue()
        assert code == 0
        assert "autoscaler timeline" in output
        assert "SLO violation time" in output
        assert "provisioning vs ideal curve" in output


class TestMatrixCommand:
    def test_dry_run_lists_cells_without_running(self):
        stream = io.StringIO()
        code = main(["matrix", "--scenario", "baseline,flash-sale",
                     "--app", "orleans-eventual", "--seeds", "1,2",
                     "--dry-run"], stream=stream)
        output = stream.getvalue()
        assert code == 0
        assert "matrix: 4 cells" in output
        assert "baseline/orleans-eventual/s1/r1" in output
        assert "flash-sale/orleans-eventual/s2/r1" in output

    def test_matrix_defaults_cover_full_catalogue(self):
        stream = io.StringIO()
        code = main(["matrix", "--dry-run"], stream=stream)
        output = stream.getvalue()
        assert code == 0
        # 15 scenarios x 4 apps x 1 seed x 1 rate scale.
        assert "matrix: 60 cells" in output

    def test_unknown_scenario_filter_rejected(self):
        stream = io.StringIO()
        code = main(["matrix", "--scenario", "mystery", "--dry-run"],
                    stream=stream)
        assert code == 2
        assert "unknown scenario" in stream.getvalue()

    def test_matrix_runs_and_prints_merged_report(self, tmp_path):
        out = tmp_path / "matrix.json"
        stream = io.StringIO()
        code = main(["matrix", "--scenario", "baseline",
                     "--app", "orleans-eventual,statefun",
                     "--seeds", "1", "--duration-scale", "0.05",
                     "--workers", "1", "--json", str(out)],
                    stream=stream)
        output = stream.getvalue()
        assert code == 0
        assert "scenario: baseline" in output
        assert "ok: 2" in output
        assert "checkout p50 ms" in output
        blob = json.loads(out.read_text())
        assert blob["ok"] == 2
        assert blob["tables"]["baseline"][0]["seeds"] == 1

    def test_matrix_parallel_progress_lines(self):
        stream = io.StringIO()
        code = main(["matrix", "--scenario", "baseline",
                     "--app", "orleans-eventual", "--seeds", "1,2",
                     "--duration-scale", "0.05", "--workers", "2"],
                    stream=stream)
        output = stream.getvalue()
        assert code == 0
        assert "start baseline/orleans-eventual/s1/r1" in output
        assert output.count("] ok") == 2
