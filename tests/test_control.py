"""Control-plane API tests: the platform_stats contract, typed
actions, plane selection, autoscaler hysteresis and the run_scenario
facade.

The autoscaler unit tests drive ``tick()`` by hand against a scripted
plane (no simulation), so each stability guard — hysteresis, cooldown,
bounds, drain exclusion, the dead band — is pinned in isolation; the
end-to-end tests then run the real catalogue scenarios.
"""

import dataclasses

import pytest

from _stub_app import StubApp
from repro.apps import ALL_APPS, AppConfig
from repro.control import (
    AddSilo,
    Autoscaler,
    AutoscalerConfig,
    CallMethod,
    ClusterControlPlane,
    CrashSilo,
    DrainSilo,
    NullControlPlane,
    RuntimeSignals,
    SignalWindow,
    SLOTarget,
    StatefunControlPlane,
    control_plane_for,
    parse_action,
    run_scenario,
)
from repro.control.actions import execute
from repro.core.scenarios import get_scenario
from repro.runtime import Environment


def _build_app(name, silos=2, cores=1):
    env = Environment(seed=5)
    return env, ALL_APPS[name](env, AppConfig(silos=silos,
                                              cores_per_silo=cores))


def _signals(**overrides):
    """A healthy-cluster snapshot; override what the test varies."""
    base = dict(time=0.0, queue_delay_p95=0.0, queue_delay_mean=0.0,
                queue_samples=10, error_rate=0.0, errors=0,
                completions=50, arrival_rate=100.0, queue_length=0,
                in_flight=4, silos_live=2, silos_draining=0,
                silos_total=2, resident=10, paged=0, messages=100)
    base.update(overrides)
    return RuntimeSignals(**base)


class ScriptedPlane:
    """Duck-typed plane: scripted signals, applied-action recording."""

    def __init__(self, signals):
        self.script = list(signals)
        self.executed = []

    def signals(self):
        return self.script.pop(0)

    def execute(self, action, source="api"):
        self.executed.append((action, source))
        return {"time": 0.0, "action": action.kind,
                "target": action.target, "applied": True,
                "detail": "", "source": source}


class TestPlatformStatsContract:
    """Every stack reports the same typed snapshot — the satellite
    contract replacing four ad-hoc runtime_stats() shapes."""

    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_schema_holds_on_every_stack(self, name):
        env, app = _build_app(name)
        schema = app.stats_schema()
        stats = app.platform_stats().as_dict()
        assert set(stats) == set(schema)
        for field, kind in schema.items():
            assert isinstance(stats[field], kind), field
        assert stats["silos_live"] == 2
        assert stats["silos_draining"] == 0
        assert stats["silos_total"] >= stats["silos_live"]

    def test_stub_app_reports_configured_shape(self):
        env = Environment(seed=1)
        app = StubApp(env)
        stats = app.platform_stats()
        assert stats.silos_live == app.config.silos
        assert stats.resident == 0

    def test_legacy_runtime_stats_untouched_by_contract(self):
        env, app = _build_app("orleans-eventual")
        legacy = app.runtime_stats()
        assert "silos_live" not in legacy  # old shape, frozen


class TestSignalWindow:
    def test_p95_and_mean(self):
        window = SignalWindow(window=10.0)
        for index in range(1, 21):
            window.observe_queue_delay(1.0, index / 1000)
        snap = window.snapshot(2.0)
        assert snap["queue_delay_p95"] == pytest.approx(0.019)
        assert snap["queue_delay_mean"] == pytest.approx(0.0105)
        assert snap["queue_samples"] == 20

    def test_old_observations_pruned(self):
        window = SignalWindow(window=1.0)
        window.observe_queue_delay(0.0, 9.9)
        window.observe_arrival(0.0)
        window.observe_outcome(0.0, "failed")
        snap = window.snapshot(5.0)
        assert snap["queue_samples"] == 0
        assert snap["completions"] == 0
        assert snap["arrival_rate"] == 0.0

    def test_rejected_is_not_an_error(self):
        window = SignalWindow(window=5.0)
        for status in ("ok", "rejected", "failed", "aborted"):
            window.observe_outcome(1.0, status)
        snap = window.snapshot(1.0)
        assert snap["errors"] == 2
        assert snap["error_rate"] == pytest.approx(0.5)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            SignalWindow(window=0.0)


class TestActions:
    def test_parse_membership_verbs(self):
        assert parse_action("add_silo") == AddSilo()
        assert parse_action("drain_silo", "silo-2") == \
            DrainSilo(target="silo-2")
        assert parse_action("crash_silo", "silo-1") == \
            CrashSilo(target="silo-1")

    def test_unknown_verb_parses_to_call_method(self):
        action = parse_action("pause", "silo-1")
        assert isinstance(action, CallMethod)
        assert action.kind == "pause"
        assert action.describe() == "pause(silo-1)"

    def test_execute_without_host_records_skip(self):
        record = execute(None, AddSilo(), 3.0, source="autoscaler")
        assert record["applied"] is False
        assert record["detail"] == "target does not support this action"
        assert record["source"] == "autoscaler"
        assert record["time"] == 3.0

    def test_execute_captures_exceptions_as_detail(self):
        class Host:
            def add_silo(self):
                raise ValueError("full")

        record = execute(Host(), AddSilo(), 1.0)
        assert record["applied"] is False
        assert record["detail"] == "ValueError: full"

    def test_execute_applies_and_records_result(self):
        class Host:
            def drain_silo(self, target):
                return f"drained {target}"

        record = execute(Host(), DrainSilo(target="silo-9"), 2.0,
                         source="fault")
        assert record["applied"] is True
        assert record["detail"] == repr("drained silo-9")


class TestPlaneSelection:
    def test_actor_stacks_get_cluster_plane(self):
        for name in ("orleans-eventual", "orleans-transactions",
                     "customized-orleans"):
            env, app = _build_app(name)
            plane = control_plane_for(env, app)
            assert isinstance(plane, ClusterControlPlane), name
            assert plane.scaling_host is app.cluster

    def test_dataflow_stack_gets_statefun_plane(self):
        env, app = _build_app("statefun")
        plane = control_plane_for(env, app)
        assert isinstance(plane, StatefunControlPlane)
        assert plane.scaling_host is app.runtime

    def test_stub_gets_null_plane_and_skipped_actions(self):
        env = Environment(seed=1)
        app = StubApp(env)
        plane = control_plane_for(env, app)
        assert isinstance(plane, NullControlPlane)
        record = plane.execute(AddSilo(), source="autoscaler")
        assert record["applied"] is False
        assert plane.action_log == [record]

    def test_cluster_drain_resolves_to_newest_running_silo(self):
        env, app = _build_app("orleans-eventual", silos=3)
        plane = control_plane_for(env, app)
        resolved = plane.resolve(DrainSilo())
        assert resolved.target == app.cluster.silos[-1].name
        # An explicit victim is passed through untouched.
        pinned = plane.resolve(DrainSilo(target="silo-0"))
        assert pinned.target == "silo-0"

    def test_signals_snapshot_merges_both_halves(self):
        env, app = _build_app("orleans-eventual")
        window = SignalWindow(window=2.0)
        window.observe_arrival(0.0)
        plane = control_plane_for(env, app, window=window)
        signals = plane.signals()
        assert signals.silos_live == 2
        assert signals.queue_length == 0  # no driver attached
        assert signals.arrival_rate > 0


def _config(**overrides):
    base = dict(slo=SLOTarget(queue_delay_p95=0.1, error_rate=0.05),
                interval=1.0, window=2.0, min_silos=1, max_silos=4,
                breach_ticks=2, clear_ticks=3, scale_down_fraction=0.3,
                cooldown_up=0.0, cooldown_down=0.0)
    base.update(overrides)
    return AutoscalerConfig(**base)


BREACH = dict(queue_delay_p95=0.5)
#: Inside the dead band: no longer breaching, not clear enough to
#: scale down either.
MID_BAND = dict(queue_delay_p95=0.06)
CLEAR = dict(queue_delay_p95=0.01)


class TestAutoscalerGuards:
    def _run(self, config, signal_overrides):
        plane = ScriptedPlane([_signals(**kw) for kw in signal_overrides])
        scaler = Autoscaler(plane, config)
        for tick in range(len(signal_overrides)):
            scaler.tick(float(tick + 1))
        return plane, scaler

    def test_hysteresis_needs_consecutive_breaches(self):
        plane, scaler = self._run(_config(), [BREACH, CLEAR, BREACH,
                                              BREACH])
        assert [a.kind for a, _ in plane.executed] == ["add_silo"]
        assert scaler.samples[1]["action"] is None
        assert scaler.samples[3]["action"] == "add_silo"
        assert plane.executed[0][1] == "autoscaler"

    def test_error_rate_breach_triggers_scale_up(self):
        plane, _ = self._run(_config(), [dict(error_rate=0.2),
                                         dict(error_rate=0.2)])
        assert [a.kind for a, _ in plane.executed] == ["add_silo"]

    def test_cooldown_up_spaces_out_adds(self):
        plane, _ = self._run(_config(cooldown_up=3.0),
                             [BREACH] * 6)
        # Add at t=2; the streak resets, rebuilds by t=4, but the
        # cooldown holds the second add until t=5.
        assert [a.kind for a, _ in plane.executed] == ["add_silo"] * 2

    def test_scale_down_needs_dead_band_and_streak(self):
        plane, _ = self._run(_config(), [MID_BAND] * 6)
        assert plane.executed == []  # inside the dead band: hold
        plane, _ = self._run(_config(), [CLEAR] * 3)
        assert [a.kind for a, _ in plane.executed] == ["drain_silo"]

    def test_scale_down_blocked_by_backlog(self):
        busy = dict(CLEAR, queue_length=5)
        plane, _ = self._run(_config(), [busy] * 6)
        assert plane.executed == []

    def test_no_decision_while_draining(self):
        draining = dict(BREACH, silos_draining=1)
        plane, _ = self._run(_config(), [draining] * 4)
        assert plane.executed == []

    def test_bounds_respected(self):
        at_max = dict(BREACH, silos_live=4)
        plane, _ = self._run(_config(), [at_max] * 4)
        assert plane.executed == []
        at_min = dict(CLEAR, silos_live=1)
        plane, _ = self._run(_config(), [at_min] * 6)
        assert plane.executed == []

    def test_disabled_controller_observes_only(self):
        plane, scaler = self._run(_config(enabled=False), [BREACH] * 4)
        assert plane.executed == []
        assert all(s["action"] is None for s in scaler.samples)
        assert sum(s["breach"] for s in scaler.samples) == 4

    def test_oscillating_signal_produces_no_actions(self):
        """A p95 flapping across the scale-up threshold every sample
        never sustains a streak: the dead band plus hysteresis turn
        oscillation into inaction, not action flapping."""
        plane, _ = self._run(_config(),
                             [BREACH, MID_BAND] * 5)
        assert plane.executed == []

    def test_decisions_are_rng_free(self):
        runs = []
        for _ in range(2):
            plane, scaler = self._run(
                _config(), [BREACH, BREACH, MID_BAND, CLEAR, CLEAR,
                            CLEAR])
            runs.append((scaler.samples,
                         [(a.kind, src) for a, src in plane.executed]))
        assert runs[0] == runs[1]


class TestAutoscalerEndToEnd:
    def test_same_seed_same_action_log(self):
        blocks = []
        for _ in range(2):
            run = run_scenario("autoscale-flash-sale", app="statefun",
                               seed=11, duration_scale=0.5)
            blocks.append(run.metrics.open_loop["control"])
        assert blocks[0]["samples"] == blocks[1]["samples"]
        assert blocks[0]["actions"] == blocks[1]["actions"]

    def test_flash_sale_scales_out_then_back_without_flapping(self):
        run = run_scenario("autoscale-flash-sale", app="statefun",
                           seed=7, duration_scale=0.5)
        control = run.metrics.open_loop["control"]
        kinds = [entry["action"] for entry in control["actions"]
                 if entry["applied"]]
        assert "add_silo" in kinds
        # One excursion: every scale-up precedes every scale-down.
        if "drain_silo" in kinds:
            assert kinds.index("drain_silo") > \
                len(kinds) - 1 - kinds[::-1].index("add_silo")
        assert len(kinds) <= 6
        # The cluster ends back inside its bounds with the SLO held.
        assert control["samples"][-1]["breach"] is False
        assert run.autoscaler is not None
        assert run.control is not None

    def test_burst_then_quiesce_holds_fixed_capacity(self):
        """Retrofit the controller onto the burst-then-quiesce
        scenario on a healthy two-silo cluster: the burst drains fast
        enough that the SLO never breaks, so a stable controller must
        do nothing at the scale-up end and at most unwind capacity it
        never added."""
        scenario = get_scenario("burst-then-quiesce")
        config = AutoscalerConfig(
            slo=SLOTarget(queue_delay_p95=0.5, error_rate=0.5),
            interval=0.25, window=1.0, min_silos=2, max_silos=4,
            breach_ticks=2, clear_ticks=4, cooldown_up=0.5,
            cooldown_down=1.0, rate_per_silo=250.0)
        autoscaled = dataclasses.replace(scenario,
                                         autoscaler=lambda: config)
        run = run_scenario(autoscaled, app="orleans-eventual", seed=3,
                           rate_scale=0.5, duration_scale=0.5)
        control = run.metrics.open_loop["control"]
        assert control["samples"]
        assert not any(s["breach"] for s in control["samples"])
        applied = [entry for entry in control["actions"]
                   if entry["applied"]]
        assert [e["action"] for e in applied if
                e["action"] == "add_silo"] == []


class TestRunScenarioFacade:
    def test_matches_hand_built_driver_exactly(self):
        scenario = get_scenario("baseline")
        env = Environment(seed=3)
        app = StubApp(env)
        driver = scenario.build_driver(env, app, rate_scale=0.5,
                                       duration_scale=0.5, data_seed=3)
        by_hand = driver.run()

        run = run_scenario("baseline", app=StubApp, seed=3,
                           rate_scale=0.5, duration_scale=0.5,
                           audit=False)
        assert run.metrics.open_loop == by_hand.open_loop
        assert run.metrics.summary_rows() == by_hand.summary_rows()
        assert run.metrics.timeline == by_hand.timeline

    def test_unknown_scenario_raises_key_error(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario("mystery", app=StubApp, audit=False)

    def test_overrides_beat_scenario_pins(self):
        run = run_scenario("silo-crash", app=StubApp, seed=3,
                           rate_scale=0.25, duration_scale=0.25,
                           silos=7, audit=False)
        assert run.app.config.silos == 7
        # Without the override the scenario's pinned shape applies.
        pinned = run_scenario("silo-crash", app=StubApp, seed=3,
                              rate_scale=0.25, duration_scale=0.25,
                              audit=False)
        assert pinned.app.config.silos == \
            get_scenario("silo-crash").effective_silos

    def test_plain_run_has_no_control_plane(self):
        run = run_scenario("baseline", app=StubApp, seed=3,
                           rate_scale=0.25, duration_scale=0.25,
                           audit=False)
        assert run.control is None
        assert run.autoscaler is None
        assert run.report is None
