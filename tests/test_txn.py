"""Unit tests for the distributed transaction layer."""

import pytest

from repro.actors import Cluster, ClusterConfig
from repro.runtime import Environment
from repro.txn import (
    LockManager,
    LockMode,
    TransactionAborted,
    TransactionContext,
    TransactionRunner,
    TransactionStatus,
    TransactionalGrain,
    TxnConfig,
)


class Account(TransactionalGrain):
    """Transactional bank account used throughout these tests."""

    def deposit(self, amount):
        state = yield from self.txn_read()
        state["balance"] = state.get("balance", 0) + amount
        yield from self.txn_write(state)
        return state["balance"]

    def withdraw(self, amount):
        state = yield from self.txn_read()
        balance = state.get("balance", 0)
        if balance < amount:
            raise TransactionAborted(
                f"insufficient funds on {self.key}", reason="application")
        state["balance"] = balance - amount
        yield from self.txn_write(state)
        return state["balance"]

    def balance(self):
        state = yield from self.txn_read()
        return state.get("balance", 0)


class Bank(TransactionalGrain):
    """Coordinator-side grain that moves money between accounts."""

    def transfer(self, source, target, amount):
        src = self.grain_ref(Account, source)
        dst = self.grain_ref(Account, target)
        yield self.call(src, "withdraw", amount)
        yield self.call(dst, "deposit", amount)
        return amount


def make_runner(seed=1, **txn_kwargs):
    env = Environment(seed=seed)
    cluster = Cluster(env, ClusterConfig())
    runner = TransactionRunner(cluster, TxnConfig(**txn_kwargs))
    return env, cluster, runner


def run_txn(env, cluster, runner, grain_type, key, method, *args):
    ref = cluster.grain_ref(grain_type, key)
    process = env.process(runner.run(
        lambda ctx: ref.call(method, *args, txn=ctx)))
    return env.run(until=process)


class TestLockManager:
    def make(self):
        env = Environment()
        return env, LockManager(env, "l")

    def ctx(self, env, at=None):
        return TransactionContext(at if at is not None else env.now)

    def grant(self, env, lock, ctx, mode):
        process = env.process(lock.acquire(ctx, mode))
        env.run()
        if not process.ok:
            raise process.value
        return process

    def test_shared_locks_compatible(self):
        env, lock = self.make()
        a, b = self.ctx(env), self.ctx(env)
        self.grant(env, lock, a, LockMode.SHARED)
        self.grant(env, lock, b, LockMode.SHARED)
        assert lock.held_by(a) is LockMode.SHARED
        assert lock.held_by(b) is LockMode.SHARED

    def test_exclusive_conflicts_with_shared(self):
        env, lock = self.make()
        older = TransactionContext(0.0)
        younger = TransactionContext(1.0)
        self.grant(env, lock, older, LockMode.SHARED)
        # Younger requester conflicting with older holder dies.
        process = env.process(lock.acquire(younger, LockMode.EXCLUSIVE))
        with pytest.raises(TransactionAborted) as excinfo:
            env.run(until=process)
        assert excinfo.value.reason == "wait-die"
        assert lock.deaths == 1

    def test_older_requester_waits_for_younger_holder(self):
        env, lock = self.make()
        older = TransactionContext(0.0)
        younger = TransactionContext(1.0)
        self.grant(env, lock, younger, LockMode.EXCLUSIVE)
        granted = []

        def acquire_then_record():
            yield from lock.acquire(older, LockMode.EXCLUSIVE)
            granted.append(env.now)

        def release_later():
            yield env.timeout(5.0)
            lock.release(younger)

        env.process(acquire_then_record())
        env.process(release_later())
        env.run()
        assert granted == [5.0]
        assert lock.waits == 1

    def test_reacquire_same_mode_is_noop(self):
        env, lock = self.make()
        ctx = self.ctx(env)
        self.grant(env, lock, ctx, LockMode.SHARED)
        self.grant(env, lock, ctx, LockMode.SHARED)
        assert len(lock.holders()) == 1

    def test_upgrade_sole_shared_holder(self):
        env, lock = self.make()
        ctx = self.ctx(env)
        self.grant(env, lock, ctx, LockMode.SHARED)
        self.grant(env, lock, ctx, LockMode.EXCLUSIVE)
        assert lock.held_by(ctx) is LockMode.EXCLUSIVE

    def test_exclusive_holder_keeps_lock_on_shared_request(self):
        env, lock = self.make()
        ctx = self.ctx(env)
        self.grant(env, lock, ctx, LockMode.EXCLUSIVE)
        self.grant(env, lock, ctx, LockMode.SHARED)
        assert lock.held_by(ctx) is LockMode.EXCLUSIVE

    def test_release_unknown_ctx_is_noop(self):
        env, lock = self.make()
        lock.release(self.ctx(env))  # must not raise

    def test_disabled_lock_always_grants(self):
        env, lock = self.make()
        LockManager.disabled = True
        try:
            older = TransactionContext(0.0)
            younger = TransactionContext(1.0)
            self.grant(env, lock, older, LockMode.EXCLUSIVE)
            self.grant(env, lock, younger, LockMode.EXCLUSIVE)
        finally:
            LockManager.disabled = False


class TestTransactionRunner:
    def test_commit_applies_state(self):
        env, cluster, runner = make_runner()
        assert run_txn(env, cluster, runner, Account, "a", "deposit",
                       100) == 100
        assert run_txn(env, cluster, runner, Account, "a", "balance") == 100
        assert runner.stats.committed == 2

    def test_transfer_moves_money_atomically(self):
        env, cluster, runner = make_runner()
        run_txn(env, cluster, runner, Account, "a", "deposit", 100)
        run_txn(env, cluster, runner, Bank, "bank", "transfer",
                "a", "b", 30)
        assert run_txn(env, cluster, runner, Account, "a", "balance") == 70
        assert run_txn(env, cluster, runner, Account, "b", "balance") == 30

    def test_application_abort_rolls_back_everything(self):
        env, cluster, runner = make_runner(max_retries=0)
        run_txn(env, cluster, runner, Account, "a", "deposit", 10)
        # Transfer more than the balance: withdraw aborts AFTER deposit
        # order within the method; ensure nothing leaked.
        with pytest.raises(TransactionAborted):
            run_txn(env, cluster, runner, Bank, "bank", "transfer",
                    "a", "b", 999)
        assert run_txn(env, cluster, runner, Account, "a", "balance") == 10
        assert run_txn(env, cluster, runner, Account, "b", "balance") == 0

    def test_aborted_txn_releases_locks(self):
        env, cluster, runner = make_runner(max_retries=0)
        run_txn(env, cluster, runner, Account, "a", "deposit", 10)
        with pytest.raises(TransactionAborted):
            run_txn(env, cluster, runner, Account, "a", "withdraw", 999)
        # Lock must be free again: next transaction proceeds.
        assert run_txn(env, cluster, runner, Account, "a", "deposit",
                       5) == 15

    def test_concurrent_increments_are_serialised(self):
        env, cluster, runner = make_runner()
        ref = cluster.grain_ref(Account, "hot")
        processes = [
            env.process(runner.run(
                lambda ctx: ref.call("deposit", 1, txn=ctx)))
            for _ in range(25)]
        env.run()
        failed = [p for p in processes if not p.ok]
        assert not failed
        assert run_txn(env, cluster, runner, Account, "hot",
                       "balance") == 25

    def test_concurrent_transfers_conserve_money(self):
        env, cluster, runner = make_runner()
        for key in ("a", "b", "c"):
            run_txn(env, cluster, runner, Account, key, "deposit", 100)
        bank = cluster.grain_ref(Bank, "bank")
        pairs = [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c"),
                 ("b", "a"), ("c", "b")] * 4
        processes = []
        for source, target in pairs:
            processes.append(env.process(runner.run(
                lambda ctx, s=source, t=target: bank.call(
                    "transfer", s, t, 1, txn=ctx))))
        env.run()
        committed = sum(1 for p in processes if p.ok)
        assert committed >= 1
        total = sum(
            run_txn(env, cluster, runner, Account, key, "balance")
            for key in ("a", "b", "c"))
        assert total == 300

    def test_retry_preserves_priority_and_eventually_commits(self):
        env, cluster, runner = make_runner(max_retries=10)
        ref = cluster.grain_ref(Account, "hot")
        processes = [
            env.process(runner.run(
                lambda ctx: ref.call("deposit", 1, txn=ctx)))
            for _ in range(10)]
        env.run()
        assert all(p.ok for p in processes)
        assert runner.stats.committed == 10

    def test_stats_track_aborts(self):
        env, cluster, runner = make_runner(max_retries=0)
        with pytest.raises(TransactionAborted):
            run_txn(env, cluster, runner, Account, "a", "withdraw", 1)
        assert runner.stats.aborted == 1
        assert runner.stats.started == 1

    def test_transaction_latency_includes_2pc_rounds(self):
        env, cluster, runner = make_runner()
        start = env.now
        run_txn(env, cluster, runner, Account, "a", "deposit", 1)
        elapsed = env.now - start
        config = runner.config
        # At minimum: grain call + prepare round-trip + participant log
        # force + coordinator log + commit hop.
        floor = (2 * config.control_latency
                 + Account.log_write_latency
                 + config.coordinator_log_latency)
        assert elapsed >= floor

    def test_ablation_without_2pc_still_commits(self):
        env, cluster, runner = make_runner(enable_two_phase_commit=False)
        assert run_txn(env, cluster, runner, Account, "a", "deposit",
                       7) == 7
        assert run_txn(env, cluster, runner, Account, "a", "balance") == 7

    def test_non_txn_read_sees_committed_state_only(self):
        env, cluster, runner = make_runner()
        run_txn(env, cluster, runner, Account, "a", "deposit", 50)
        ref = cluster.grain_ref(Account, "a")
        # Call without a transaction context: read-committed path.
        promise = ref.call("balance")
        assert env.run(until=promise) == 50

    def test_write_outside_transaction_rejected(self):
        env, cluster, runner = make_runner()
        ref = cluster.grain_ref(Account, "a")
        promise = ref.call("deposit", 1)  # no txn context
        with pytest.raises(TransactionAborted):
            env.run(until=promise)

    def test_context_status_transitions(self):
        ctx = TransactionContext(0.0)
        assert ctx.status is TransactionStatus.ACTIVE
        assert ctx.is_active
        ctx.status = TransactionStatus.COMMITTED
        assert not ctx.is_active

    def test_priority_inheritance(self):
        first = TransactionContext(5.0)
        retry = TransactionContext(9.0, inherit_priority=first.priority)
        assert retry.priority == first.priority
        assert retry.txid != first.txid
