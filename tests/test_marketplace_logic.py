"""Unit tests for the platform-independent marketplace business logic."""

import pytest

from repro.marketplace import logic
from repro.marketplace.constants import (
    OrderStatus,
    PackageStatus,
    PaymentMethod,
    PaymentStatus,
)


def item(seller=1, product=1, qty=2, price=1000, version=1, voucher=0):
    return {"seller_id": seller, "product_id": product, "quantity": qty,
            "unit_price_cents": price, "price_version": version,
            "voucher_cents": voucher}


class TestCart:
    def test_new_cart_is_open_and_empty(self):
        cart = logic.cart.new_cart(7)
        assert cart["status"] == logic.cart.OPEN
        assert logic.cart.item_count(cart) == 0

    def test_add_item(self):
        cart = logic.cart.add_item(logic.cart.new_cart(1), item())
        assert logic.cart.item_count(cart) == 1
        assert logic.cart.total_cents(cart) == 2000

    def test_add_same_product_merges_quantity(self):
        cart = logic.cart.new_cart(1)
        cart = logic.cart.add_item(cart, item(qty=1))
        cart = logic.cart.add_item(cart, item(qty=2))
        assert logic.cart.item_count(cart) == 1
        assert cart["items"]["1/1"]["quantity"] == 3

    def test_remove_item(self):
        cart = logic.cart.add_item(logic.cart.new_cart(1), item())
        cart = logic.cart.remove_item(cart, "1/1")
        assert logic.cart.item_count(cart) == 0

    def test_remove_missing_item_is_noop(self):
        cart = logic.cart.new_cart(1)
        assert logic.cart.remove_item(cart, "9/9") == cart

    def test_price_update_applies_when_newer(self):
        cart = logic.cart.add_item(logic.cart.new_cart(1),
                                   item(price=1000, version=1))
        cart, applied = logic.cart.apply_price_update(cart, "1/1", 1500, 2)
        assert applied
        assert cart["items"]["1/1"]["unit_price_cents"] == 1500

    def test_stale_price_update_ignored(self):
        cart = logic.cart.add_item(logic.cart.new_cart(1),
                                   item(price=1000, version=5))
        cart, applied = logic.cart.apply_price_update(cart, "1/1", 1500, 3)
        assert not applied
        assert cart["items"]["1/1"]["unit_price_cents"] == 1000

    def test_price_update_for_absent_product_ignored(self):
        cart = logic.cart.new_cart(1)
        cart, applied = logic.cart.apply_price_update(cart, "1/1", 1500, 2)
        assert not applied

    def test_product_delete_removes_item(self):
        cart = logic.cart.add_item(logic.cart.new_cart(1), item())
        cart, applied = logic.cart.apply_product_delete(cart, "1/1")
        assert applied
        assert logic.cart.item_count(cart) == 0

    def test_checkout_seals_and_clears(self):
        cart = logic.cart.add_item(logic.cart.new_cart(1), item())
        cart, items = logic.cart.seal_for_checkout(cart)
        assert len(items) == 1
        assert logic.cart.item_count(cart) == 0
        assert cart["checkouts"] == 1

    def test_checkout_empty_cart_rejected(self):
        with pytest.raises(ValueError):
            logic.cart.seal_for_checkout(logic.cart.new_cart(1))

    def test_voucher_reduces_total_but_not_below_zero(self):
        cart = logic.cart.add_item(
            logic.cart.new_cart(1), item(qty=1, price=100, voucher=500))
        assert logic.cart.total_cents(cart) == 0

    def test_add_item_does_not_mutate_input(self):
        original = logic.cart.new_cart(1)
        logic.cart.add_item(original, item())
        assert logic.cart.item_count(original) == 0


class TestStock:
    def test_reserve_succeeds_with_enough_stock(self):
        state = logic.stock.new_item(1, 1, 10)
        state, ok = logic.stock.reserve(state, 3)
        assert ok
        assert state["qty_reserved"] == 3

    def test_reserve_fails_without_enough_free_stock(self):
        state = logic.stock.new_item(1, 1, 5)
        state, _ = logic.stock.reserve(state, 4)
        state, ok = logic.stock.reserve(state, 2)
        assert not ok
        assert state["qty_reserved"] == 4

    def test_reserve_on_inactive_item_fails(self):
        state = logic.stock.deactivate(logic.stock.new_item(1, 1, 10), 2)
        state, ok = logic.stock.reserve(state, 1)
        assert not ok

    def test_reserve_zero_rejected(self):
        with pytest.raises(ValueError):
            logic.stock.reserve(logic.stock.new_item(1, 1, 10), 0)

    def test_confirm_decrements_available_and_reserved(self):
        state = logic.stock.new_item(1, 1, 10)
        state, _ = logic.stock.reserve(state, 3)
        state = logic.stock.confirm_reservation(state, 3)
        assert state["qty_available"] == 7
        assert state["qty_reserved"] == 0

    def test_confirm_more_than_reserved_rejected(self):
        state = logic.stock.new_item(1, 1, 10)
        with pytest.raises(ValueError):
            logic.stock.confirm_reservation(state, 1)

    def test_cancel_releases_reservation(self):
        state = logic.stock.new_item(1, 1, 10)
        state, _ = logic.stock.reserve(state, 3)
        state = logic.stock.cancel_reservation(state, 3)
        assert state["qty_reserved"] == 0
        assert state["qty_available"] == 10

    def test_restock(self):
        state = logic.stock.restock(logic.stock.new_item(1, 1, 10), 5)
        assert state["qty_available"] == 15

    def test_negative_restock_rejected(self):
        with pytest.raises(ValueError):
            logic.stock.restock(logic.stock.new_item(1, 1, 10), -1)

    def test_consistency_invariant(self):
        state = logic.stock.new_item(1, 1, 10)
        assert logic.stock.is_consistent(state)
        state, _ = logic.stock.reserve(state, 10)
        assert logic.stock.is_consistent(state)
        state = logic.stock.confirm_reservation(state, 10)
        assert logic.stock.is_consistent(state)
        assert not logic.stock.is_consistent(
            {"qty_available": -1, "qty_reserved": 0})


class TestOrder:
    def test_assemble_assigns_invoice_and_total(self):
        state = logic.order.new_customer_orders(3)
        state, order = logic.order.assemble(state, "o1", [item()], now=1.0)
        assert order["invoice"] == "3-000001"
        assert order["total_cents"] == 2000
        assert order["status"] == OrderStatus.INVOICED
        assert state["next_order"] == 2

    def test_invoice_sequence_increments(self):
        state = logic.order.new_customer_orders(3)
        state, _ = logic.order.assemble(state, "o1", [item()], now=1.0)
        state, order2 = logic.order.assemble(state, "o2", [item()], now=2.0)
        assert order2["invoice"] == "3-000002"

    def test_assemble_requires_items(self):
        state = logic.order.new_customer_orders(3)
        with pytest.raises(ValueError):
            logic.order.assemble(state, "o1", [], now=1.0)

    def test_duplicate_order_id_rejected(self):
        state = logic.order.new_customer_orders(3)
        state, _ = logic.order.assemble(state, "o1", [item()], now=1.0)
        with pytest.raises(ValueError):
            logic.order.assemble(state, "o1", [item()], now=2.0)

    def test_voucher_respected_in_total(self):
        state = logic.order.new_customer_orders(1)
        state, order = logic.order.assemble(
            state, "o1", [item(qty=1, price=100, voucher=40)], now=0.0)
        assert order["total_cents"] == 60

    def test_seller_ids_distinct_sorted(self):
        state = logic.order.new_customer_orders(1)
        items = [item(seller=5), item(seller=2, product=9), item(seller=5,
                                                                 product=3)]
        state, order = logic.order.assemble(state, "o1", items, now=0.0)
        assert logic.order.seller_ids(order) == [2, 5]

    def test_status_transitions(self):
        state = logic.order.new_customer_orders(1)
        state, _ = logic.order.assemble(state, "o1", [item()], now=0.0)
        state = logic.order.set_status(state, "o1",
                                       OrderStatus.PAYMENT_PROCESSED, 1.0)
        assert state["orders"]["o1"]["status"] == \
            OrderStatus.PAYMENT_PROCESSED

    def test_set_status_unknown_order_raises(self):
        state = logic.order.new_customer_orders(1)
        with pytest.raises(KeyError):
            logic.order.set_status(state, "nope", OrderStatus.CANCELED, 0.0)

    def test_delivery_completion(self):
        state = logic.order.new_customer_orders(1)
        state, _ = logic.order.assemble(
            state, "o1", [item(seller=1), item(seller=2, product=2)],
            now=0.0)
        state = logic.order.set_status(state, "o1",
                                       OrderStatus.PAYMENT_PROCESSED, 0.5)
        state = logic.order.record_shipment(state, "o1", 2, now=1.0)
        state, done = logic.order.record_delivery(state, "o1", now=2.0)
        assert not done
        state, done = logic.order.record_delivery(state, "o1", now=3.0)
        assert done
        assert state["orders"]["o1"]["status"] == OrderStatus.COMPLETED

    def test_in_progress_filter(self):
        state = logic.order.new_customer_orders(1)
        state, _ = logic.order.assemble(state, "o1", [item()], now=0.0)
        state, _ = logic.order.assemble(state, "o2", [item()], now=0.0)
        state = logic.order.set_status(state, "o2", OrderStatus.CANCELED,
                                       1.0)
        in_progress = logic.order.in_progress_orders(state)
        assert [order["order_id"] for order in in_progress] == ["o1"]


class TestPayment:
    def test_build_payment_validates_method(self):
        with pytest.raises(ValueError):
            logic.payment.build_payment("o1", 1, 100, "iou", now=0.0)

    def test_build_payment_validates_amount(self):
        with pytest.raises(ValueError):
            logic.payment.build_payment("o1", 1, -1,
                                        PaymentMethod.CREDIT_CARD, now=0.0)

    def test_single_line_for_card(self):
        payment = logic.payment.build_payment(
            "o1", 1, 100, PaymentMethod.CREDIT_CARD, now=0.0)
        assert len(payment["lines"]) == 1
        assert payment["lines"][0]["amount_cents"] == 100

    def test_voucher_splits_lines(self):
        payment = logic.payment.build_payment(
            "o1", 1, 101, PaymentMethod.VOUCHER, now=0.0)
        amounts = [line["amount_cents"] for line in payment["lines"]]
        assert sum(amounts) == 101
        assert len(amounts) == 2

    def test_authorize_full_rate_approves(self):
        payment = logic.payment.build_payment(
            "o1", 1, 100, PaymentMethod.CREDIT_CARD, now=0.0)
        assert logic.payment.is_approved(
            logic.payment.authorize(payment, 1.0))

    def test_authorize_zero_rate_rejects(self):
        payment = logic.payment.build_payment(
            "o1", 1, 100, PaymentMethod.CREDIT_CARD, now=0.0)
        result = logic.payment.authorize(payment, 0.0)
        assert result["status"] == PaymentStatus.FAILED

    def test_authorize_is_deterministic_per_order(self):
        payment = logic.payment.build_payment(
            "oX", 1, 100, PaymentMethod.CREDIT_CARD, now=0.0)
        first = logic.payment.authorize(payment, 0.5)
        second = logic.payment.authorize(payment, 0.5)
        assert first["status"] == second["status"]

    def test_authorize_rate_validation(self):
        payment = logic.payment.build_payment(
            "o1", 1, 100, PaymentMethod.CREDIT_CARD, now=0.0)
        with pytest.raises(ValueError):
            logic.payment.authorize(payment, 1.5)

    def test_partial_rate_approves_a_middling_fraction(self):
        approved = 0
        for i in range(500):
            payment = logic.payment.build_payment(
                f"order-{i}", 1, 100, PaymentMethod.CREDIT_CARD, now=0.0)
            if logic.payment.is_approved(
                    logic.payment.authorize(payment, 0.9)):
                approved += 1
        assert 400 <= approved <= 490


class TestShipment:
    def test_create_shipment_groups_by_seller(self):
        state = logic.shipment.new_shipments()
        items = [item(seller=1), item(seller=2, product=2),
                 item(seller=1, product=3)]
        state, shipment = logic.shipment.create_shipment(
            state, "o1", 9, items, now=1.0)
        assert len(shipment["packages"]) == 2
        sellers = {package["seller_id"]
                   for package in shipment["packages"].values()}
        assert sellers == {1, 2}

    def test_duplicate_shipment_rejected(self):
        state = logic.shipment.new_shipments()
        state, _ = logic.shipment.create_shipment(state, "o1", 9,
                                                  [item()], now=1.0)
        with pytest.raises(ValueError):
            logic.shipment.create_shipment(state, "o1", 9, [item()],
                                           now=2.0)

    def test_empty_shipment_rejected(self):
        with pytest.raises(ValueError):
            logic.shipment.create_shipment(
                logic.shipment.new_shipments(), "o1", 9, [], now=1.0)

    def test_undelivered_sellers_chronological_limit(self):
        state = logic.shipment.new_shipments()
        for index in range(15):
            state, _ = logic.shipment.create_shipment(
                state, f"o{index}", 1, [item(seller=index)],
                now=float(index))
        sellers = logic.shipment.undelivered_sellers(state, limit=10)
        assert sellers == list(range(10))

    def test_oldest_undelivered_package(self):
        state = logic.shipment.new_shipments()
        state, _ = logic.shipment.create_shipment(
            state, "o1", 1, [item(seller=7)], now=5.0)
        state, _ = logic.shipment.create_shipment(
            state, "o2", 2, [item(seller=7)], now=3.0)
        package = logic.shipment.oldest_undelivered_package(state, 7)
        assert package["order_id"] == "o2"

    def test_mark_delivered_progression(self):
        state = logic.shipment.new_shipments()
        state, shipment = logic.shipment.create_shipment(
            state, "o1", 1, [item(seller=7)], now=1.0)
        package_id = next(iter(shipment["packages"]))
        state, package = logic.shipment.mark_delivered(
            state, "o1", package_id, now=2.0)
        assert package["status"] == PackageStatus.DELIVERED
        assert logic.shipment.oldest_undelivered_package(state, 7) is None

    def test_mark_delivered_idempotent(self):
        state = logic.shipment.new_shipments()
        state, shipment = logic.shipment.create_shipment(
            state, "o1", 1, [item(seller=7)], now=1.0)
        package_id = next(iter(shipment["packages"]))
        state, _ = logic.shipment.mark_delivered(state, "o1", package_id,
                                                 now=2.0)
        state2, package = logic.shipment.mark_delivered(
            state, "o1", package_id, now=3.0)
        assert state2 is state
        assert package["delivered_at"] == 2.0

    def test_mark_delivered_unknown_raises(self):
        state = logic.shipment.new_shipments()
        with pytest.raises(KeyError):
            logic.shipment.mark_delivered(state, "o1", "pkg-1", now=1.0)

    def test_package_count(self):
        state = logic.shipment.new_shipments()
        state, _ = logic.shipment.create_shipment(
            state, "o1", 1, [item(seller=1), item(seller=2, product=2)],
            now=1.0)
        assert logic.shipment.package_count(state, "o1") == 2
        assert logic.shipment.package_count(state, "other") == 0


class TestCustomerSellerStats:
    def test_customer_stats_accumulate(self):
        state = logic.customer.new_customer(1, "alice")
        state = logic.customer.record_order_placed(state)
        state = logic.customer.record_payment(state, 500, approved=True)
        state = logic.customer.record_payment(state, 300, approved=False)
        state = logic.customer.record_delivery(state)
        assert state["orders_placed"] == 1
        assert state["spent_cents"] == 500
        assert state["payments_failed"] == 1
        assert state["deliveries"] == 1

    def make_order(self, status=OrderStatus.INVOICED):
        return {"order_id": "o1", "customer_id": 9, "status": status,
                "updated_at": 1.0,
                "items": [item(seller=5, qty=2, price=100),
                          item(seller=6, product=2, qty=1, price=999)]}

    def test_seller_share_only_counts_own_items(self):
        order = self.make_order()
        assert logic.seller.seller_share_cents(order, 5) == 200
        assert logic.seller.seller_share_cents(order, 6) == 999
        assert logic.seller.seller_share_cents(order, 7) == 0

    def test_upsert_entry_and_dashboard(self):
        state = logic.seller.new_seller(5)
        state = logic.seller.upsert_entry(state, self.make_order())
        assert logic.seller.dashboard_amount(state) == 200
        entries = logic.seller.dashboard_entries(state)
        assert len(entries) == 1
        assert entries[0]["order_id"] == "o1"

    def test_upsert_ignores_orders_without_seller_items(self):
        state = logic.seller.new_seller(42)
        state = logic.seller.upsert_entry(state, self.make_order())
        assert logic.seller.dashboard_amount(state) == 0

    def test_completed_order_retires_entry_into_revenue(self):
        state = logic.seller.new_seller(5)
        state = logic.seller.upsert_entry(state, self.make_order())
        state = logic.seller.update_entry_status(
            state, "o1", OrderStatus.COMPLETED, 2.0)
        assert logic.seller.dashboard_amount(state) == 0
        assert state["revenue_cents"] == 200
        assert state["deliveries"] == 1

    def test_canceled_order_retires_without_revenue(self):
        state = logic.seller.new_seller(5)
        state = logic.seller.upsert_entry(state, self.make_order())
        state = logic.seller.update_entry_status(
            state, "o1", OrderStatus.CANCELED, 2.0)
        assert state["revenue_cents"] == 0
        assert logic.seller.dashboard_amount(state) == 0

    def test_status_update_for_unknown_order_is_noop(self):
        state = logic.seller.new_seller(5)
        assert logic.seller.update_entry_status(
            state, "nope", OrderStatus.COMPLETED, 1.0) == state


class TestProduct:
    def test_new_product_active_versioned(self):
        product = logic.product.new_product(1, 2, "thing", "cat", 100)
        assert product["active"] and product["version"] == 1

    def test_price_update_bumps_version(self):
        product = logic.product.new_product(1, 2, "thing", "cat", 100)
        updated = logic.product.update_price(product, 250)
        assert updated["price_cents"] == 250
        assert updated["version"] == 2

    def test_negative_price_rejected(self):
        product = logic.product.new_product(1, 2, "thing", "cat", 100)
        with pytest.raises(ValueError):
            logic.product.update_price(product, -1)

    def test_delete_marks_inactive(self):
        product = logic.product.new_product(1, 2, "thing", "cat", 100)
        deleted = logic.product.delete(product)
        assert not deleted["active"]
        assert deleted["version"] == 2

    def test_operations_on_deleted_product_rejected(self):
        product = logic.product.delete(
            logic.product.new_product(1, 2, "thing", "cat", 100))
        with pytest.raises(ValueError):
            logic.product.update_price(product, 100)
        with pytest.raises(ValueError):
            logic.product.delete(product)
