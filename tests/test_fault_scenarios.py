"""Fault scenarios on the real actor platforms (acceptance audits).

The stub-app smoke lives in test_scenarios.py; here the silo-crash
scenario runs against the two Orleans platforms at half rate and the
availability report is audited for the properties that motivated the
whole membership refactor: a non-empty unavailability window, a finite
recovery time, surfaced retries on the transactional variant and
state-loss anomalies on the eventual one.
"""

import pytest

from repro.analysis.availability import (
    availability_report,
    availability_rows,
)
from repro.apps import ALL_APPS, AppConfig
from repro.core.scenarios import get_scenario
from repro.runtime import Environment

SEED = 11


def run_fault_scenario(name, app_name, rate_scale=0.5, seed=SEED,
                       **app_kwargs):
    env = Environment(seed=seed)
    scenario = get_scenario(name)
    app = ALL_APPS[app_name](env, AppConfig(
        silos=scenario.effective_silos,
        cores_per_silo=scenario.effective_cores, **app_kwargs))
    driver = scenario.build_driver(env, app, rate_scale=rate_scale,
                                   data_seed=seed)
    metrics = driver.run()
    return metrics, availability_report(metrics), app


class TestSiloCrash:
    @pytest.fixture(scope="class")
    def eventual(self):
        return run_fault_scenario("silo-crash", "orleans-eventual")

    @pytest.fixture(scope="class")
    def transactions(self):
        return run_fault_scenario("silo-crash", "orleans-transactions")

    @pytest.mark.parametrize("which", ["eventual", "transactions"])
    def test_outage_window_and_recovery(self, which, request):
        metrics, report, app = request.getfixturevalue(which)
        membership = metrics.runtime["membership"]
        assert membership["crashes"] == 1
        assert membership["live_silos"] == 3
        # The crash produces a non-empty unavailability window ...
        assert report.unavailability_window is not None
        assert report.fault_second == 2
        assert report.unavailability_window[0] >= report.fault_second
        # ... and the system recovers to pre-fault throughput.
        assert report.recovery_time is not None
        assert report.pre_fault_tps > 0
        # Failures during the detection window reached the callers.
        assert sum(count for _, count in metrics.error_timeline) > 0
        assert membership["reroutes"] > 0

    def test_eventual_loses_volatile_state(self, eventual):
        metrics, report, app = eventual
        assert report.state_loss_events > 0
        assert metrics.runtime["membership"]["state_loss_events"] == \
            report.state_loss_events

    def test_transactions_surface_retries(self, transactions):
        metrics, report, app = transactions
        txn = metrics.runtime["transactions"]
        assert txn["silo_retries"] > 0
        assert txn["retries"] >= txn["silo_retries"]

    def test_availability_rows_export(self, eventual):
        metrics, report, app = eventual
        rows = availability_rows(metrics)
        assert len(rows) == int(metrics.duration)
        assert all(row["app"] == "orleans-eventual" for row in rows)
        assert any(not row["available"] for row in rows)


class TestRollingRestart:
    def test_zero_downtime_and_zero_state_loss(self):
        metrics, report, app = run_fault_scenario(
            "rolling-restart", "orleans-eventual", rate_scale=0.4)
        membership = metrics.runtime["membership"]
        assert membership["drains"] == 4
        assert membership["joins"] == 4
        assert membership["live_silos"] == 4
        # Graceful handoff: every volatile grain migrated with state.
        assert membership["state_loss_events"] == 0
        assert membership["volatile_handoffs"] > 0
        # No call ever failed: the restart is invisible to clients.
        assert sum(count for _, count in metrics.error_timeline) == 0


class TestScaleOut:
    def test_joins_apply_and_capacity_grows(self):
        metrics, report, app = run_fault_scenario(
            "scale-out-under-load", "orleans-eventual", rate_scale=0.5)
        membership = metrics.runtime["membership"]
        assert membership["joins"] == 2
        assert membership["live_silos"] == 4
        assert membership["migrations"] > 0
        assert membership["state_loss_events"] == 0
        applied = [entry for entry
                   in metrics.open_loop["fault_events"]
                   if entry["applied"]]
        assert len(applied) == 2
