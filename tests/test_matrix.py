"""Tests for the experiment-matrix spec, runner and merged report.

Covers the three properties the matrix runner exists to provide:

* deterministic spec expansion (filters, seed sweeps, fixed order);
* worker-crash isolation — one poisoned cell (raising *or* killing
  its worker process outright) is recorded while the rest of the
  matrix completes;
* determinism — a 2-worker matrix produces per-cell canonical output
  byte-identical to the serial run.
"""

import json
import os

import pytest

from repro.analysis.matrix_report import (
    availability_pct,
    merge_cells,
    render_matrix_report,
)
from repro.core.matrix import (
    CellResult,
    MatrixCell,
    MatrixResult,
    MatrixSpec,
    run_cell,
    run_matrix,
)

#: Small enough to run in-process in well under a second per cell.
TINY = dict(scenarios=("baseline",), apps=("orleans-eventual",),
            seeds=(1,), duration_scale=0.05)


class TestSpecExpansion:
    def test_cross_product_order_and_count(self):
        spec = MatrixSpec(
            scenarios=("baseline", "heavy-writer"),
            apps=("orleans-eventual", "statefun"),
            seeds=(1, 2), rate_scales=(0.5, 1.0))
        cells = spec.cells()
        assert len(cells) == len(spec) == 2 * 2 * 2 * 2
        # Fixed order: scenarios, then apps, then seeds, then rates.
        assert cells[0] == MatrixCell("baseline", "orleans-eventual",
                                      1, 0.5)
        assert cells[1].rate_scale == 1.0
        assert cells[-1] == MatrixCell("heavy-writer", "statefun",
                                       2, 1.0)

    def test_cell_id_is_stable_and_readable(self):
        cell = MatrixCell("flash-sale", "statefun", 7, 0.5)
        assert cell.cell_id == "flash-sale/statefun/s7/r0.5"

    def test_full_covers_the_whole_catalogue(self):
        from repro.apps import ALL_APPS
        from repro.core.scenarios import scenario_names
        spec = MatrixSpec.full(seeds=(1, 2))
        assert spec.scenarios == tuple(scenario_names())
        assert spec.apps == tuple(sorted(ALL_APPS))
        assert len(spec) == len(scenario_names()) * len(ALL_APPS) * 2

    def test_unknown_scenario_rejected_eagerly(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            MatrixSpec(scenarios=("no-such",),
                       apps=("orleans-eventual",))

    def test_unknown_app_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown app"):
            MatrixSpec(scenarios=("baseline",), apps=("mystery",))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            MatrixSpec(scenarios=(), apps=("orleans-eventual",))
        with pytest.raises(ValueError):
            MatrixSpec(scenarios=("baseline",),
                       apps=("orleans-eventual",), seeds=())

    def test_bad_scales_rejected(self):
        with pytest.raises(ValueError):
            MatrixSpec(scenarios=("baseline",),
                       apps=("orleans-eventual",), rate_scales=(0.0,))
        with pytest.raises(ValueError):
            MatrixSpec(scenarios=("baseline",),
                       apps=("orleans-eventual",), duration_scale=-1.0)

    def test_sequences_normalised_to_tuples(self):
        spec = MatrixSpec(scenarios=["baseline"],
                          apps=["orleans-eventual"], seeds=[1, 2])
        assert spec.scenarios == ("baseline",)
        assert spec.seeds == (1, 2)


def _ok_stub(cell):
    return CellResult(cell=cell, status="ok", wall_s=0.0,
                      payload={"cell": cell.as_dict(), "marker": 1})


def _raise_on_statefun(cell):
    if cell.app == "statefun":
        raise ValueError("poisoned cell")
    return _ok_stub(cell)


def _exit_on_statefun(cell):
    if cell.app == "statefun":
        os._exit(13)  # hard crash: bypasses exception handling
    return _ok_stub(cell)


def _three_cells():
    return [MatrixCell("baseline", "orleans-eventual", 1),
            MatrixCell("baseline", "statefun", 1),
            MatrixCell("baseline", "customized-orleans", 1)]


class TestRunnerIsolation:
    def test_serial_records_raise_and_continues(self):
        result = run_matrix(_three_cells(), workers=1,
                            cell_fn=_raise_on_statefun)
        statuses = [cell.status for cell in result.cells]
        assert statuses == ["ok", "failed", "ok"]
        assert "poisoned cell" in result.cells[1].error
        assert len(result.failures) == 1

    def test_parallel_records_raise_and_continues(self):
        result = run_matrix(_three_cells(), workers=2,
                            cell_fn=_raise_on_statefun)
        statuses = [cell.status for cell in result.cells]
        assert statuses == ["ok", "failed", "ok"]

    def test_worker_process_crash_is_isolated(self):
        # The poisoned cell kills its whole worker process; the runner
        # must record the crash (exit code preserved) and still finish
        # every other cell.
        result = run_matrix(_three_cells(), workers=2,
                            cell_fn=_exit_on_statefun)
        statuses = [cell.status for cell in result.cells]
        assert statuses == ["ok", "crashed", "ok"]
        assert "13" in result.cells[1].error
        assert result.cells[1].payload is None

    def test_progress_streams_start_and_done_per_cell(self):
        events = []
        result = run_matrix(_three_cells(), workers=2,
                            cell_fn=_ok_stub, progress=events.append)
        assert len(result.completed) == 3
        kinds = [event.kind for event in events]
        assert kinds.count("start") == 3 and kinds.count("done") == 3
        done = [event for event in events if event.kind == "done"]
        assert all(event.result is not None for event in done)
        assert {event.index for event in events} == {0, 1, 2}

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            run_matrix(_three_cells(), workers=0)


class TestDeterminism:
    def test_two_worker_matrix_matches_serial_bit_for_bit(self):
        spec = MatrixSpec(scenarios=("baseline",),
                          apps=("orleans-eventual", "statefun"),
                          seeds=(1, 2), duration_scale=0.05)
        serial = run_matrix(spec, workers=1)
        parallel = run_matrix(spec, workers=2)
        assert all(cell.ok for cell in serial.cells)
        assert all(cell.ok for cell in parallel.cells)
        for ours, theirs in zip(serial.cells, parallel.cells):
            assert ours.cell == theirs.cell
            assert ours.canonical_json == theirs.canonical_json

    def test_payload_has_no_wall_clock_fields(self):
        result = run_cell(MatrixCell(**{
            "scenario": "baseline", "app": "orleans-eventual",
            "seed": 1, "duration_scale": 0.05}))
        assert result.ok
        assert "wall" not in result.canonical_json
        # Wall time lives on the result, outside the canonical payload.
        assert result.wall_s > 0

    def test_run_cell_converts_raise_to_failed(self):
        # An impossible cell (unknown scenario sneaks past the spec,
        # e.g. hand-built) fails gracefully instead of raising.
        result = run_cell(MatrixCell("no-such", "orleans-eventual", 1))
        assert result.status == "failed"
        assert "no-such" in result.error


def _payload(app, tps, p50, criteria_passed=5, availability=None,
             duration=5.0):
    criteria = {f"C{index}": {"passed": index <= criteria_passed,
                              "violations": 0, "checked": 1}
                for index in range(1, 6)}
    return {
        "cell": {"scenario": "baseline", "app": app, "seed": 1,
                 "rate_scale": 1.0, "duration_scale": 1.0},
        "duration": duration,
        "total_tps": tps,
        "ops": [{"operation": "checkout", "p50_ms": p50,
                 "p99_ms": p50 * 2}],
        "open_loop": {},
        "criteria": criteria,
        "availability": availability,
    }


def _result(scenario, app, seed, payload, status="ok"):
    cell = MatrixCell(scenario, app, seed)
    return CellResult(cell=cell, status=status, wall_s=0.1,
                      payload=payload if status == "ok" else None,
                      error="" if status == "ok" else "boom")


class TestMergedReport:
    def test_seed_sweep_mean_and_error_bars(self):
        cells = [
            _result("baseline", "statefun", 1,
                    _payload("statefun", 100.0, 4.0)),
            _result("baseline", "statefun", 2,
                    _payload("statefun", 200.0, 6.0)),
        ]
        tables = merge_cells(cells)
        (row,) = tables["baseline"]
        assert row["seeds"] == 2
        assert row["tps"] == 150.0
        assert row["tps_sd"] == round(70.7, 1)  # sample stdev
        assert row["checkout_p50_ms"] == 5.0
        assert row["criteria"] == "5/5"

    def test_failed_cells_counted_not_aggregated(self):
        cells = [
            _result("baseline", "statefun", 1,
                    _payload("statefun", 100.0, 4.0)),
            _result("baseline", "statefun", 2, None, status="crashed"),
        ]
        (row,) = merge_cells(cells)["baseline"]
        assert row["seeds"] == 1 and row["failed"] == 1
        assert row["tps"] == 100.0

    def test_worst_seed_criteria_reported(self):
        cells = [
            _result("baseline", "statefun", 1,
                    _payload("statefun", 100.0, 4.0,
                             criteria_passed=5)),
            _result("baseline", "statefun", 2,
                    _payload("statefun", 100.0, 4.0,
                             criteria_passed=3)),
        ]
        (row,) = merge_cells(cells)["baseline"]
        assert row["criteria"] == "3/5"

    def test_availability_pct_from_fault_summary(self):
        clean = _payload("statefun", 100.0, 4.0)
        assert availability_pct(clean) == 100.0
        faulty = _payload("statefun", 100.0, 4.0,
                          availability={"unavailable_seconds": 2},
                          duration=5.0)
        assert availability_pct(faulty) == 60.0

    def test_render_report_lists_failures(self):
        cells = [
            _result("baseline", "statefun", 1,
                    _payload("statefun", 100.0, 4.0)),
            _result("baseline", "orleans-eventual", 1, None,
                    status="crashed"),
        ]
        result = MatrixResult(cells=cells, workers=2, wall_s=1.0)
        text = render_matrix_report(result)
        assert "scenario: baseline" in text
        assert "failed cells:" in text
        assert "baseline/orleans-eventual/s1/r1" in text

    def test_report_json_round_trips(self):
        cells = [_result("baseline", "statefun", 1,
                         _payload("statefun", 100.0, 4.0))]
        result = MatrixResult(cells=cells, workers=1, wall_s=0.5)
        from repro.analysis.matrix_report import matrix_report_json
        blob = json.loads(json.dumps(matrix_report_json(result)))
        assert blob["ok"] == 1 and blob["workers"] == 1
        assert blob["tables"]["baseline"][0]["app"] == "statefun"
        assert blob["cells"][0]["payload"]["total_tps"] == 100.0
