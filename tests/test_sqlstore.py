"""Unit tests for the MVCC engine and snapshot isolation."""

import pytest

from repro.sqlstore import (
    MVCCEngine,
    SerializationError,
    UniqueViolation,
    and_,
    eq,
    ge,
    gt,
    le,
    lt,
)


@pytest.fixture
def engine():
    engine = MVCCEngine()
    engine.create_table("orders", ["id", "seller", "total", "status"],
                        primary_key="id")
    return engine


def put(engine, **data):
    txn = engine.begin()
    txn.insert("orders", data)
    txn.commit()


class TestSchema:
    def test_create_table_requires_pk_column(self):
        engine = MVCCEngine()
        with pytest.raises(ValueError):
            engine.create_table("t", ["a"], primary_key="b")

    def test_duplicate_table_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.create_table("orders", ["id"], primary_key="id")

    def test_unknown_table_rejected(self, engine):
        with pytest.raises(KeyError):
            engine.table("nope")

    def test_index_on_unknown_column_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.table("orders").create_index("nope")


class TestBasicTransactions:
    def test_insert_then_read(self, engine):
        put(engine, id=1, seller="s1", total=10.0, status="open")
        row = engine.snapshot().read("orders", 1)
        assert row["seller"] == "s1"
        assert row["total"] == 10.0

    def test_read_missing_returns_none(self, engine):
        assert engine.snapshot().read("orders", 99) is None

    def test_own_writes_visible_before_commit(self, engine):
        txn = engine.begin()
        txn.insert("orders", {"id": 1, "seller": "s", "total": 1.0,
                              "status": "open"})
        assert txn.read("orders", 1) is not None
        assert engine.snapshot().read("orders", 1) is None
        txn.commit()
        assert engine.snapshot().read("orders", 1) is not None

    def test_update_and_delete(self, engine):
        put(engine, id=1, seller="s", total=1.0, status="open")
        txn = engine.begin()
        assert txn.update("orders", 1, {"status": "paid"})
        txn.commit()
        assert engine.snapshot().read("orders", 1)["status"] == "paid"
        txn = engine.begin()
        assert txn.delete("orders", 1)
        txn.commit()
        assert engine.snapshot().read("orders", 1) is None

    def test_update_missing_returns_false(self, engine):
        txn = engine.begin()
        assert not txn.update("orders", 42, {"status": "x"})

    def test_delete_missing_returns_false(self, engine):
        txn = engine.begin()
        assert not txn.delete("orders", 42)

    def test_duplicate_insert_rejected(self, engine):
        put(engine, id=1, seller="s", total=1.0, status="open")
        txn = engine.begin()
        with pytest.raises(UniqueViolation):
            txn.insert("orders", {"id": 1, "seller": "x", "total": 0,
                                  "status": "open"})

    def test_insert_missing_pk_rejected(self, engine):
        txn = engine.begin()
        with pytest.raises(ValueError):
            txn.insert("orders", {"seller": "s"})

    def test_abort_discards_writes(self, engine):
        txn = engine.begin()
        txn.insert("orders", {"id": 1, "seller": "s", "total": 1.0,
                              "status": "open"})
        txn.abort()
        assert engine.snapshot().read("orders", 1) is None

    def test_operations_on_finished_txn_rejected(self, engine):
        txn = engine.begin()
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.insert("orders", {"id": 1})
        with pytest.raises(RuntimeError):
            txn.commit()

    def test_upsert_inserts_then_updates(self, engine):
        txn = engine.begin()
        txn.upsert("orders", {"id": 1, "seller": "s", "total": 1.0,
                              "status": "open"})
        txn.commit()
        txn = engine.begin()
        txn.upsert("orders", {"id": 1, "seller": "s", "total": 2.0,
                              "status": "open"})
        txn.commit()
        assert engine.snapshot().read("orders", 1)["total"] == 2.0


class TestSnapshotIsolation:
    def test_reader_does_not_see_later_commits(self, engine):
        put(engine, id=1, seller="s", total=1.0, status="open")
        reader = engine.begin()
        writer = engine.begin()
        writer.update("orders", 1, {"total": 99.0})
        writer.commit()
        assert reader.read("orders", 1)["total"] == 1.0
        assert engine.snapshot().read("orders", 1)["total"] == 99.0

    def test_first_committer_wins(self, engine):
        put(engine, id=1, seller="s", total=1.0, status="open")
        t1 = engine.begin()
        t2 = engine.begin()
        t1.update("orders", 1, {"total": 2.0})
        t2.update("orders", 1, {"total": 3.0})
        t1.commit()
        with pytest.raises(SerializationError):
            t2.commit()
        assert t2.status == "aborted"

    def test_disjoint_writes_both_commit(self, engine):
        put(engine, id=1, seller="s", total=1.0, status="open")
        put(engine, id=2, seller="s", total=1.0, status="open")
        t1 = engine.begin()
        t2 = engine.begin()
        t1.update("orders", 1, {"total": 2.0})
        t2.update("orders", 2, {"total": 3.0})
        t1.commit()
        t2.commit()  # must not raise

    def test_snapshot_is_stable_across_concurrent_commits(self, engine):
        """The seller-dashboard criterion: two reads from one snapshot
        must reflect the same state."""
        for i in range(5):
            put(engine, id=i, seller="s", total=10.0, status="open")
        snapshot = engine.snapshot()
        total_before = snapshot.aggregate("orders", "total",
                                          eq("seller", "s"))
        writer = engine.begin()
        writer.update("orders", 0, {"total": 1000.0})
        writer.commit()
        rows = snapshot.scan("orders", eq("seller", "s"))
        total_after = sum(row["total"] for row in rows)
        assert total_before == total_after == 50.0

    def test_write_skew_is_permitted_under_si(self, engine):
        """Classic SI behaviour (not serializable): both commit."""
        put(engine, id=1, seller="a", total=1.0, status="open")
        put(engine, id=2, seller="b", total=1.0, status="open")
        t1 = engine.begin()
        t2 = engine.begin()
        # Each reads the other's row, writes its own.
        t1.read("orders", 2)
        t2.read("orders", 1)
        t1.update("orders", 1, {"status": "closed"})
        t2.update("orders", 2, {"status": "closed"})
        t1.commit()
        t2.commit()


class TestQueries:
    def setup_rows(self, engine):
        rows = [
            dict(id=1, seller="a", total=10.0, status="open"),
            dict(id=2, seller="a", total=20.0, status="paid"),
            dict(id=3, seller="b", total=30.0, status="open"),
            dict(id=4, seller="b", total=40.0, status="paid"),
        ]
        for row in rows:
            put(engine, **row)

    def test_scan_all(self, engine):
        self.setup_rows(engine)
        assert len(engine.snapshot().scan("orders")) == 4

    def test_scan_with_eq_predicate(self, engine):
        self.setup_rows(engine)
        rows = engine.snapshot().scan("orders", eq("seller", "a"))
        assert {row.key for row in rows} == {1, 2}

    def test_scan_with_conjunction(self, engine):
        self.setup_rows(engine)
        predicate = and_(eq("seller", "b"), eq("status", "open"))
        rows = engine.snapshot().scan("orders", predicate)
        assert [row.key for row in rows] == [3]

    def test_comparison_predicates(self, engine):
        self.setup_rows(engine)
        snapshot = engine.snapshot()
        assert len(snapshot.scan("orders", gt("total", 20.0))) == 2
        assert len(snapshot.scan("orders", ge("total", 20.0))) == 3
        assert len(snapshot.scan("orders", lt("total", 20.0))) == 1
        assert len(snapshot.scan("orders", le("total", 20.0))) == 2

    def test_comparison_ignores_missing_column(self, engine):
        self.setup_rows(engine)
        assert engine.snapshot().scan("orders", gt("missing", 0)) == []

    def test_aggregates(self, engine):
        self.setup_rows(engine)
        snapshot = engine.snapshot()
        assert snapshot.aggregate("orders", "total") == 100.0
        assert snapshot.aggregate("orders", "total",
                                  eq("seller", "a")) == 30.0
        assert snapshot.aggregate("orders", "id", function="count") == 4
        assert snapshot.aggregate("orders", "total", function="avg") == 25.0
        assert snapshot.aggregate("orders", "total", function="min") == 10.0
        assert snapshot.aggregate("orders", "total", function="max") == 40.0

    def test_aggregate_empty_result(self, engine):
        snapshot = engine.snapshot()
        assert snapshot.aggregate("orders", "total") == 0
        assert snapshot.aggregate("orders", "total", function="avg") is None
        assert snapshot.aggregate("orders", "total", function="count") == 0

    def test_unknown_aggregate_rejected(self, engine):
        self.setup_rows(engine)
        with pytest.raises(ValueError):
            engine.snapshot().aggregate("orders", "total", function="median")

    def test_index_accelerated_scan_matches_full_scan(self, engine):
        self.setup_rows(engine)
        engine.table("orders").create_index("seller")
        indexed = engine.snapshot().scan("orders", eq("seller", "a"))
        assert {row.key for row in indexed} == {1, 2}

    def test_index_respects_snapshot_visibility(self, engine):
        self.setup_rows(engine)
        engine.table("orders").create_index("seller")
        snapshot = engine.snapshot()
        txn = engine.begin()
        txn.update("orders", 1, {"seller": "zzz"})
        txn.commit()
        # Old snapshot must still see row 1 under seller "a"... but the
        # current index no longer lists it; the scan falls back correctly
        # for the *new* snapshot.
        new_rows = engine.snapshot().scan("orders", eq("seller", "zzz"))
        assert [row.key for row in new_rows] == [1]
        old_rows = snapshot.scan("orders", eq("seller", "zzz"))
        assert old_rows == []
        # ... and must still FIND row 1 under its old value: the index
        # is additive (a candidate superset), so a later commit cannot
        # hide a row from an older snapshot (MVCC false negative).
        assert {row.key for row in snapshot.scan("orders",
                                                 eq("seller", "a"))} == {1, 2}

    def test_txn_scan_index_respects_begin_snapshot(self, engine):
        """A transaction's index-assisted scan sees its begin snapshot
        even after a concurrent commit moves a row out of the bucket."""
        self.setup_rows(engine)
        engine.table("orders").create_index("status")
        reader = engine.begin()
        writer = engine.begin()
        writer.update("orders", 1, {"status": "paid"})
        writer.commit()
        rows = reader.scan("orders", eq("status", "open"))
        assert {row.key for row in rows} == {1, 3}
        assert engine.table("orders").index_hits > 0

    def test_txn_scan_sees_own_writes(self, engine):
        self.setup_rows(engine)
        txn = engine.begin()
        txn.insert("orders", {"id": 9, "seller": "a", "total": 5.0,
                              "status": "open"})
        txn.delete("orders", 1)
        rows = txn.scan("orders", eq("seller", "a"))
        assert {row.key for row in rows} == {2, 9}

    def test_txn_scan_excludes_own_write_not_matching_predicate(self, engine):
        self.setup_rows(engine)
        txn = engine.begin()
        txn.update("orders", 1, {"seller": "moved"})
        rows = txn.scan("orders", eq("seller", "a"))
        assert {row.key for row in rows} == {2}


class TestVersionChains:
    def test_old_versions_remain_visible_to_old_snapshots(self, engine):
        put(engine, id=1, seller="s", total=1.0, status="open")
        s1 = engine.snapshot()
        txn = engine.begin()
        txn.update("orders", 1, {"total": 2.0})
        txn.commit()
        s2 = engine.snapshot()
        assert s1.read("orders", 1)["total"] == 1.0
        assert s2.read("orders", 1)["total"] == 2.0

    def test_len_counts_live_rows_only(self, engine):
        put(engine, id=1, seller="s", total=1.0, status="open")
        put(engine, id=2, seller="s", total=1.0, status="open")
        txn = engine.begin()
        txn.delete("orders", 1)
        txn.commit()
        assert len(engine.table("orders")) == 1

    def test_autocommit_upsert(self, engine):
        engine.autocommit("orders", {"id": 7, "seller": "s", "total": 3.0,
                                     "status": "open"})
        assert engine.snapshot().read("orders", 7)["total"] == 3.0


class TestQueryExtensions:
    def setup_rows(self, engine):
        rows = [
            dict(id=1, seller="a", total=10.0, status="open"),
            dict(id=2, seller="a", total=20.0, status="paid"),
            dict(id=3, seller="b", total=30.0, status="open"),
            dict(id=4, seller="b", total=40.0, status="paid"),
            dict(id=5, seller="c", total=50.0, status="canceled"),
        ]
        for row in rows:
            put(engine, **row)

    def test_in_predicate(self, engine):
        from repro.sqlstore import in_
        self.setup_rows(engine)
        rows = engine.snapshot().scan("orders",
                                      in_("status", ["open", "paid"]))
        assert {row.key for row in rows} == {1, 2, 3, 4}

    def test_in_predicate_single_value_index_assisted(self, engine):
        from repro.sqlstore import in_
        self.setup_rows(engine)
        engine.table("orders").create_index("seller")
        predicate = in_("seller", ["b"])
        assert predicate.equality == ("seller", "b")
        rows = engine.snapshot().scan("orders", predicate)
        assert {row.key for row in rows} == {3, 4}

    def test_not_predicate(self, engine):
        from repro.sqlstore import eq, not_
        self.setup_rows(engine)
        rows = engine.snapshot().scan("orders", not_(eq("seller", "a")))
        assert {row.key for row in rows} == {3, 4, 5}

    def test_or_predicate(self, engine):
        from repro.sqlstore import eq, or_
        self.setup_rows(engine)
        rows = engine.snapshot().scan(
            "orders", or_(eq("seller", "a"), eq("status", "canceled")))
        assert {row.key for row in rows} == {1, 2, 5}

    def test_order_by_ascending_descending(self, engine):
        self.setup_rows(engine)
        snapshot = engine.snapshot()
        ascending = snapshot.scan("orders", order_by="total")
        assert [row.key for row in ascending] == [1, 2, 3, 4, 5]
        descending = snapshot.scan("orders", order_by="total",
                                   descending=True)
        assert [row.key for row in descending] == [5, 4, 3, 2, 1]

    def test_limit(self, engine):
        self.setup_rows(engine)
        rows = engine.snapshot().scan("orders", order_by="total", limit=2)
        assert [row.key for row in rows] == [1, 2]

    def test_limit_zero(self, engine):
        self.setup_rows(engine)
        assert engine.snapshot().scan("orders", limit=0) == []

    def test_negative_limit_rejected(self, engine):
        self.setup_rows(engine)
        with pytest.raises(ValueError):
            engine.snapshot().scan("orders", limit=-1)

    def test_order_by_missing_column_sorts_first(self, engine):
        self.setup_rows(engine)
        txn = engine.begin()
        txn.insert("orders", {"id": 9, "seller": "z", "status": "open"})
        txn.commit()
        rows = engine.snapshot().scan("orders", order_by="total")
        assert rows[0].key == 9  # missing column first
