"""Property-based tests for consistent-hash placement stability.

The promises the membership layer leans on: placement is a pure
function of the silo *set* (deterministic across runs and insertion
orders), and one membership change relocates only ~1/n of the key
population — never keys that had nothing to do with the changed silo.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.actors.placement import ConsistentHashPlacement


class FakeSilo:
    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"<FakeSilo {self.name}>"


KEYS = [f"key-{i}" for i in range(400)]

silo_counts = st.integers(min_value=2, max_value=8)
name_salts = st.integers(min_value=0, max_value=10_000)


def build(names):
    placement = ConsistentHashPlacement()
    silos = {name: FakeSilo(name) for name in names}
    for silo in silos.values():
        placement.add_silo(silo)
    return placement, silos


def placements(placement):
    return {key: placement.place("T", key).name for key in KEYS}


@given(silo_counts, name_salts)
@settings(max_examples=25, deadline=None)
def test_placement_deterministic_across_runs(n, salt):
    names = [f"silo-{salt}-{i}" for i in range(n)]
    first, _ = build(names)
    second, _ = build(names)
    assert placements(first) == placements(second)


@given(silo_counts, name_salts)
@settings(max_examples=25, deadline=None)
def test_placement_independent_of_insertion_order(n, salt):
    names = [f"silo-{salt}-{i}" for i in range(n)]
    forward, _ = build(names)
    backward, _ = build(list(reversed(names)))
    assert placements(forward) == placements(backward)


@given(silo_counts, name_salts)
@settings(max_examples=25, deadline=None)
def test_adding_a_silo_relocates_about_one_nth(n, salt):
    names = [f"silo-{salt}-{i}" for i in range(n)]
    placement, silos = build(names)
    before = placements(placement)
    epoch_before = placement.epoch
    joiner = FakeSilo(f"silo-{salt}-new")
    placement.add_silo(joiner)
    assert placement.epoch == epoch_before + 1
    after = placements(placement)
    moved = [key for key in KEYS if after[key] != before[key]]
    # Consistent hashing: every relocated key lands on the joiner ...
    assert all(after[key] == joiner.name for key in moved)
    # ... and the joiner takes roughly its fair share, 1/(n+1): some
    # keys, but no more than ~2.5x the fair share (64 virtual nodes
    # keep the shares concentrated).
    expected = len(KEYS) / (n + 1)
    assert 0 < len(moved) <= 2.5 * expected


@given(silo_counts, name_salts)
@settings(max_examples=25, deadline=None)
def test_removing_a_silo_relocates_only_its_keys(n, salt):
    names = [f"silo-{salt}-{i}" for i in range(n)]
    placement, silos = build(names)
    before = placements(placement)
    victim = names[0]
    placement.remove_silo(silos[victim])
    after = placements(placement)
    for key in KEYS:
        if before[key] != victim:
            # Keys that never lived on the victim must not move.
            assert after[key] == before[key]
        else:
            assert after[key] != victim


@given(silo_counts, name_salts)
@settings(max_examples=25, deadline=None)
def test_add_then_remove_is_identity(n, salt):
    names = [f"silo-{salt}-{i}" for i in range(n)]
    placement, _ = build(names)
    before = placements(placement)
    joiner = FakeSilo(f"silo-{salt}-transient")
    placement.add_silo(joiner)
    placement.remove_silo(joiner)
    assert placements(placement) == before
    assert placement.epoch == n + 2  # every change bumped the epoch
